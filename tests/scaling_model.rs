//! Cross-input scaling models fitted on small runs must predict the misses
//! of larger, unmeasured runs — the capability the paper inherits from the
//! authors' modeling work and improves with per-pattern collection.

use reuselens::cache::{predict_level, MemoryHierarchy};
use reuselens::core::analyze_program;
use reuselens::model::ProfileModel;
use reuselens::workloads::kernels::{stencil2d, streaming};

fn l2() -> reuselens::cache::CacheConfig {
    MemoryHierarchy::itanium2().levels[0].clone()
}

fn profile_of(w: &reuselens::workloads::BuiltWorkload) -> reuselens::core::ReuseProfile {
    analyze_program(&w.program, &[128], w.index_arrays.clone())
        .unwrap()
        .profiles
        .remove(0)
}

#[test]
fn stencil_misses_predicted_within_ten_percent() {
    let sizes = [64u64, 96, 128];
    let profiles: Vec<_> = sizes.iter().map(|&n| profile_of(&stencil2d(n, 3))).collect();
    let refs: Vec<&_> = profiles.iter().collect();
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let model = ProfileModel::fit(&xs, &refs, 16);

    for target in [256u64, 512] {
        let predicted = predict_level(&model.predict(target as f64), &l2());
        let actual = predict_level(&profile_of(&stencil2d(target, 3)), &l2());
        let err = (predicted.total - actual.total).abs() / actual.total;
        assert!(
            err < 0.10,
            "n={target}: predicted {:.0} vs actual {:.0} ({:.1}% off)",
            predicted.total,
            actual.total,
            100.0 * err
        );
    }
}

#[test]
fn streaming_capacity_crossover_is_extrapolated() {
    // Train where the footprint fits in L2 (all resweeps hit); predict a
    // size where it does not (all resweeps miss). The model must carry the
    // distance growth across the capacity boundary.
    let sizes = [4096u64, 8192, 16384]; // 32..128 KB < 256 KB L2
    let profiles: Vec<_> = sizes.iter().map(|&n| profile_of(&streaming(n, 4))).collect();
    let refs: Vec<&_> = profiles.iter().collect();
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let model = ProfileModel::fit(&xs, &refs, 8);

    let target = 131072u64; // 1 MB >> L2
    let predicted = predict_level(&model.predict(target as f64), &l2());
    let actual = predict_level(&profile_of(&streaming(target, 4)), &l2());
    let err = (predicted.total - actual.total).abs() / actual.total;
    assert!(
        err < 0.15,
        "predicted {:.0} vs actual {:.0}",
        predicted.total,
        actual.total
    );
    // And the prediction really is in the "misses" regime, far above the
    // cold-only count.
    assert!(predicted.total > 2.5 * predicted.cold as f64);
}

#[test]
fn model_reports_its_fitted_shapes() {
    let sizes = [64u64, 96, 128, 192];
    let profiles: Vec<_> = sizes.iter().map(|&n| profile_of(&stencil2d(n, 2))).collect();
    let refs: Vec<&_> = profiles.iter().collect();
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let model = ProfileModel::fit(&xs, &refs, 8);
    // Total accesses of an n x n stencil scale ~ n^2: the fitted accesses
    // curve must quadruple when n doubles.
    let a1 = model.accesses.eval(128.0);
    let a2 = model.accesses.eval(256.0);
    let ratio = a2 / a1;
    assert!(
        (ratio - 4.0).abs() < 0.5,
        "accesses should scale ~n^2, got ratio {ratio:.2}"
    );
}
