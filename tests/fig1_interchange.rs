//! The paper's Figure 1 as an integration test: the analyzer attributes
//! the spatial reuse of the row-order nest to the outer loop, the advisor
//! recommends interchange, and the interchanged nest removes the misses.

use reuselens::advisor::{Advisor, Transformation};
use reuselens::cache::MemoryHierarchy;
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::kernels::{fig1_interchange, Fig1Variant};

const N: u64 = 512;
const M: u64 = 2048;

#[test]
fn outer_loop_carries_the_reuse() {
    let w = fig1_interchange(N, M, Fig1Variant::RowOrder);
    let la = run_locality_analysis(&w.program, &MemoryHierarchy::itanium2(), vec![]).unwrap();
    let l2 = la.level("L2").unwrap();
    let i = w.program.scope_by_name("i").unwrap();
    // The I loop (outermost) carries nearly all the spatial-reuse misses.
    assert_eq!(l2.top_carriers()[0].0, i);
    assert!(l2.carried[i.index()] / l2.total_misses > 0.8);
}

#[test]
fn advisor_recommends_interchange_of_the_carrier() {
    let w = fig1_interchange(N, M, Fig1Variant::RowOrder);
    let la = run_locality_analysis(&w.program, &MemoryHierarchy::itanium2(), vec![]).unwrap();
    let recs = Advisor::new(&w.program).advise(la.level("L2").unwrap());
    let i = w.program.scope_by_name("i").unwrap();
    assert!(matches!(
        recs[0].transformation,
        Transformation::LoopInterchange { carrier } if carrier == i
    ));
}

#[test]
fn interchange_removes_the_misses() {
    let h = MemoryHierarchy::itanium2();
    let before = fig1_interchange(N, M, Fig1Variant::RowOrder);
    let after = fig1_interchange(N, M, Fig1Variant::Interchanged);
    let la_b = run_locality_analysis(&before.program, &h, vec![]).unwrap();
    let la_a = run_locality_analysis(&after.program, &h, vec![]).unwrap();
    let l2_b = la_b.level("L2").unwrap().total_misses;
    let l2_a = la_a.level("L2").unwrap().total_misses;
    // After interchange only the compulsory misses remain.
    let lines = (N * M * 8).div_ceil(128) * 2; // two arrays
    assert!(l2_a < lines as f64 * 1.05);
    assert!(
        l2_b / l2_a > 5.0,
        "interchange gain {:.1}x should be large",
        l2_b / l2_a
    );
}

#[test]
fn both_variants_touch_identical_footprints() {
    let a = fig1_interchange(N, M, Fig1Variant::RowOrder);
    let b = fig1_interchange(N, M, Fig1Variant::Interchanged);
    let ra = reuselens::core::analyze_program(&a.program, &[128], vec![]).unwrap();
    let rb = reuselens::core::analyze_program(&b.program, &[128], vec![]).unwrap();
    assert_eq!(ra.exec.accesses, rb.exec.accesses);
    assert_eq!(
        ra.profiles[0].distinct_blocks,
        rb.profiles[0].distinct_blocks
    );
}
