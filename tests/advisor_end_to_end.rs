//! The advisor on the real workloads: its recommendations must point at
//! the transformations the paper actually applied.

use reuselens::advisor::{detect_time_loops, Advisor, Transformation};
use reuselens::cache::MemoryHierarchy;
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};

#[test]
fn gtc_advice_includes_split_array_for_zion() {
    let w = build_gtc(&GtcConfig::new(512, 16));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    let recs = Advisor::new(&w.program)
        .with_time_loops(detect_time_loops(&w.program))
        .advise(la.level("L3").unwrap());
    let zion = w.program.array_by_name("zion").unwrap();
    assert!(
        recs.iter()
            .any(|r| r.transformation == Transformation::SplitArray { array: zion }),
        "expected zion split-array advice; got {:#?}",
        recs.iter().map(|r| &r.transformation).collect::<Vec<_>>()
    );
}

#[test]
fn gtc_advice_flags_time_loop_reuse_as_intrinsic() {
    let w = build_gtc(&GtcConfig::new(512, 16).with_timesteps(2));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    let istep = w.program.scope_by_name("istep").unwrap();
    let irk = w.program.scope_by_name("irk").unwrap();
    let recs = Advisor::new(&w.program)
        .with_time_loops([istep, irk])
        .advise(la.level("L3").unwrap());
    // Paper: "these cache misses cannot be eliminated by time skewing or
    // pipelining of the three sub-steps" — the advisor flags them so
    // tuning effort goes elsewhere.
    assert!(recs.iter().any(|r| matches!(
        r.transformation,
        Transformation::TimeSkewingOrAccept { carrier } if carrier == istep || carrier == irk
    )));
}

#[test]
fn gtc_advice_includes_cross_routine_strip_mine_for_pushi() {
    let w = build_gtc(&GtcConfig::new(512, 16));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    let recs = Advisor::new(&w.program).advise(la.level("L3").unwrap());
    // The workp/zion reuse between pushi's loops and gcmotion spans two
    // routines: the paper strip-mines both and promotes the strip loop.
    assert!(
        recs.iter()
            .any(|r| matches!(r.transformation, Transformation::StripMineAndPromote { .. })),
        "expected strip-mine advice; got {:#?}",
        recs.iter().map(|r| &r.transformation).collect::<Vec<_>>()
    );
}

#[test]
fn sweep3d_advice_targets_the_idiag_loop() {
    let w = build_sweep(&SweepConfig::new(16));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    let recs = Advisor::new(&w.program).advise(la.level("L2").unwrap());
    let idiag = w.program.scope_by_name("idiag").unwrap();
    // The dominant recommendations must name idiag as the loop to attack
    // (the paper blocks inside it — our wavefront re-traversal classifies
    // as blocking/interchange on the idiag carrier).
    let top: Vec<_> = recs.iter().take(4).collect();
    assert!(
        top.iter().any(|r| matches!(
            r.transformation,
            Transformation::LoopBlocking { carrier } | Transformation::LoopInterchange { carrier }
                if carrier == idiag
        )),
        "expected idiag-targeted advice; got {top:#?}"
    );
}

#[test]
fn recommendations_are_ranked_by_miss_weight() {
    let w = build_gtc(&GtcConfig::new(256, 8));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    let recs = Advisor::new(&w.program).advise(la.level("L2").unwrap());
    assert!(!recs.is_empty());
    for pair in recs.windows(2) {
        assert!(pair[0].misses >= pair[1].misses);
    }
    // Every recommendation explains itself.
    for r in &recs {
        assert!(!r.rationale.is_empty());
    }
}
