//! Protocol fuzz battery for `reuselens serve`: every hostile request
//! line — truncated, bit-spliced, pure garbage, structurally invalid,
//! oversized — must come back as a **typed error response** on the same
//! channel, and the daemon must keep answering well-formed requests
//! afterwards. The daemon process never dies on input bytes.
//!
//! Mutations come from the seeded [`Corruptor`] (`trace::fault`), so a
//! failure reproduces from the seed printed in the assertion message.

use reuselens::serve::{run_stdin, Daemon, DaemonConfig};
use reuselens::trace::fault::Corruptor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reuselens-fuzz-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn recv(rx: mpsc::Receiver<String>) -> String {
    rx.recv().expect("daemon dropped a response channel")
}

/// Every response is one line of JSON with an `ok` field; errors carry
/// a machine-readable type tag. This is the whole protocol contract a
/// hostile client can observe.
fn assert_typed_error(response: &str, what: &str) {
    assert!(
        response.starts_with("{\"ok\":false,"),
        "{what}: not an error response: {response}"
    );
    assert!(
        response.contains("\"type\":\""),
        "{what}: error without a type tag: {response}"
    );
    assert!(
        !response.contains('\n'),
        "{what}: response spans multiple lines"
    );
}

/// Valid request lines the mutators start from — one per job kind, so
/// mutations explore every parser path.
fn seed_requests() -> Vec<&'static [u8]> {
    vec![
        br#"{"kind":"ping"}"#,
        br#"{"kind":"list"}"#,
        br#"{"kind":"capture","id":"t1","workload":"kernel:stream"}"#,
        br#"{"kind":"replay","id":"t1","grains":[1,64],"sample_rate":0.5}"#,
        br#"{"kind":"estimate","workload":"sweep3d","mesh":6}"#,
        br#"{"kind":"evict","id":"t1"}"#,
        br#"{"kind":"sleep","ms":1}"#,
    ]
}

#[test]
fn spliced_requests_never_kill_the_daemon() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("splice"))).expect("start");
    let mut corruptor = Corruptor::new(0xF00D);
    for (i, seed) in seed_requests().iter().enumerate() {
        for round in 0..40 {
            let hostile = corruptor.splice_bytes(seed, 1 + round % 5);
            if hostile == *seed {
                continue; // the splice happened to be an identity
            }
            let response = recv(daemon.submit_line(&hostile));
            // A mutated line either still parses (rarely — e.g. a digit
            // spliced into a number) and runs as a job, or comes back as
            // a typed error. Both are fine; a hang or a panic is not.
            if !response.starts_with("{\"ok\":true,") {
                assert_typed_error(
                    &response,
                    &format!("seed request {i}, splice round {round}"),
                );
            }
        }
    }
    // The daemon still works after ~280 hostile lines.
    let pong = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
    assert!(pong.contains("\"pong\":true"), "{pong}");
    daemon.shutdown();
}

#[test]
fn every_truncation_of_every_request_is_rejected_or_valid() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("trunc"))).expect("start");
    for (i, seed) in seed_requests().iter().enumerate() {
        for keep in 0..seed.len() {
            let hostile = &seed[..keep];
            let response = recv(daemon.submit_line(hostile));
            // No strict prefix of a valid request is itself valid JSON
            // (the closing brace is gone), so every truncation must be a
            // typed rejection.
            assert_typed_error(
                &response,
                &format!("seed request {i} truncated to {keep} bytes"),
            );
        }
    }
    let pong = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
    assert!(pong.contains("\"pong\":true"), "{pong}");
    daemon.shutdown();
}

#[test]
fn garbage_lines_are_rejected() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("garbage"))).expect("start");
    let mut corruptor = Corruptor::new(0xBEEF);
    for round in 0..60 {
        let hostile = corruptor.garbage_line(1 + (round * 7) % 256);
        let response = recv(daemon.submit_line(&hostile));
        assert_typed_error(&response, &format!("garbage line, round {round}"));
    }
    // Empty line too.
    assert_typed_error(&recv(daemon.submit_line(b"")), "empty line");
    let pong = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
    assert!(pong.contains("\"pong\":true"), "{pong}");
    daemon.shutdown();
}

#[test]
fn structurally_hostile_requests_get_the_right_error_type() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("shapes"))).expect("start");
    let cases: Vec<(&[u8], &str)> = vec![
        (br#"not json at all"#, "\"type\":\"parse\""),
        (br#"[1,2,3]"#, "\"type\":\"parse\""),
        (br#""just a string""#, "\"type\":\"parse\""),
        (br#"{"kind":"ping"} trailing"#, "\"type\":\"parse\""),
        (br#"{"kind":{"nested":true}}"#, "\"type\":\"parse\""),
        (br#"{"kind":"ping","kind":"list"}"#, "\"type\":\"parse\""),
        (br#"{}"#, "\"type\":\"missing-field\""),
        (br#"{"id":"t1"}"#, "\"type\":\"missing-field\""),
        (br#"{"kind":"warp-core-breach"}"#, "\"type\":\"unknown-kind\""),
        (br#"{"kind":"capture","id":"t1"}"#, "\"type\":\"missing-field\""),
        (br#"{"kind":"capture","workload":"kernel:stream"}"#, "\"type\":\"missing-field\""),
        (
            br#"{"kind":"capture","id":"../escape","workload":"kernel:stream"}"#,
            "\"type\":\"invalid-field\"",
        ),
        (
            br#"{"kind":"replay","id":"t1","sample_rate":-2}"#,
            "\"type\":\"invalid-field\"",
        ),
        (
            br#"{"kind":"replay","id":"t1","grains":[0]}"#,
            "\"type\":\"invalid-field\"",
        ),
        (
            br#"{"kind":"estimate","workload":"no-such-workload"}"#,
            "\"type\":\"invalid-field\"",
        ),
    ];
    for (line, want) in cases {
        let response = recv(daemon.submit_line(line));
        assert_typed_error(&response, &String::from_utf8_lossy(line));
        assert!(
            response.contains(want),
            "{}: expected {want}, got {response}",
            String::from_utf8_lossy(line)
        );
    }
    daemon.shutdown();
}

#[test]
fn oversized_requests_are_capped_not_buffered() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("oversize"))).expect("start");
    // A line over the 64 KiB cap: rejected with a parse error that names
    // the cap, not allocated into oblivion.
    let mut line = Vec::from(&br#"{"kind":"capture","id":""#[..]);
    line.extend(std::iter::repeat_n(b'a', 70 * 1024));
    line.extend(br#"","workload":"kernel:stream"}"#);
    let response = recv(daemon.submit_line(&line));
    assert_typed_error(&response, "oversized line");
    // An in-cap line with an oversized single string field.
    let mut line = Vec::from(&br#"{"kind":"evict","id":""#[..]);
    line.extend(std::iter::repeat_n(b'b', 8 * 1024));
    line.extend(br#""}"#);
    let response = recv(daemon.submit_line(&line));
    assert_typed_error(&response, "oversized string field");
    // An oversized array field.
    let mut line = Vec::from(&br#"{"kind":"replay","id":"t1","grains":["#[..]);
    line.extend("1,".repeat(3000).into_bytes());
    line.extend(br#"1]}"#);
    let response = recv(daemon.submit_line(&line));
    assert_typed_error(&response, "oversized array field");
    let pong = recv(daemon.submit_line(br#"{"kind":"ping"}"#));
    assert!(pong.contains("\"pong\":true"), "{pong}");
    daemon.shutdown();
}

/// The stdin transport faces the same hostile bytes as `submit_line`,
/// plus framing: CR-LF endings, interleaved garbage between valid
/// requests, and an unterminated final line.
#[test]
fn stdin_transport_survives_hostile_framing() {
    let daemon = Daemon::start(DaemonConfig::new(tmpdir("stdin"))).expect("start");
    let mut corruptor = Corruptor::new(0xCAFE);
    let mut input = Vec::new();
    input.extend(b"{\"kind\":\"ping\"}\r\n");
    let mut garbage = corruptor.garbage_line(64);
    garbage.retain(|b| *b != b'\n');
    input.extend(&garbage);
    input.push(b'\n');
    input.extend(b"{\"kind\":\"list\"}\n");
    input.extend(b"{\"kind\":\"ping\"}"); // EOF without a newline
    let mut output = Vec::new();
    run_stdin(&daemon, std::io::Cursor::new(input), &mut output).expect("run_stdin");
    let text = String::from_utf8(output).expect("responses are UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one response per input line: {text}");
    assert!(lines[0].contains("\"pong\":true"), "{}", lines[0]);
    assert_typed_error(lines[1], "garbage between valid requests");
    assert!(lines[2].contains("\"traces\":[]"), "{}", lines[2]);
    assert!(lines[3].contains("\"pong\":true"), "{}", lines[3]);
    daemon.shutdown();
}
