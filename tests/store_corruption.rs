//! Corruption battery for the on-disk trace store: every prefix
//! truncation and every single-bit flip of **both** the segment files
//! and the index file must produce a typed [`StoreError`] with a usable
//! byte-offset diagnosis — or, if the mutation happens to be harmless,
//! profiles bit-identical to the uncorrupted baseline. The store must
//! **never** return wrong data and never panic.
//!
//! The trace is sized so it spans multiple CRC-framed segments (512-byte
//! framing), exercising the per-chunk CRCs, the assembled-image CRC, and
//! the index's cross-checks against each segment header.

use reuselens::core::{analyze_buffer_with, write_profiles, AnalyzeOptions, SavedProfiles};
use reuselens::ir::{Program, ProgramBuilder};
use reuselens::store::{
    segment_file_name, StoreConfig, StoreError, TraceMeta, TraceStore, INDEX_FILE,
};
use reuselens::trace::TraceBuffer;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const GRAINS: [u64; 2] = [1, 64];

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reuselens-corrupt-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload() -> (Program, TraceBuffer) {
    let mut p = ProgramBuilder::new("corruption_battery");
    let a = p.array("a", 8, &[257]);
    let b = p.array("b", 8, &[257]);
    p.routine("main", |r| {
        r.for_("t", 0, 1, |r, _| {
            r.for_("i", 0, 256, |r, i| {
                r.load(a, vec![i.into()]);
                r.store(b, vec![i.into()]);
            });
        });
    });
    let prog = p.finish();
    let mut buf = TraceBuffer::new();
    reuselens::trace::Executor::new(&prog)
        .run(&mut buf)
        .expect("capture");
    (prog, buf)
}

/// Canonical profile bytes of a buffer — the "right answer" a corrupted
/// store must either reproduce exactly or refuse to produce at all.
fn baseline_profiles(prog: &Program, buf: &TraceBuffer) -> Vec<u8> {
    let analysis = analyze_buffer_with(prog, buf, &GRAINS, &AnalyzeOptions::default());
    assert!(analysis.failures.is_empty(), "baseline replay failed");
    let saved = SavedProfiles {
        name: "baseline".to_string(),
        size: 0.0,
        profiles: analysis.profiles,
    };
    let mut bytes = Vec::new();
    write_profiles(&saved, &mut bytes).expect("serialize");
    bytes
}

/// Writes the workload's trace into a fresh store dir with small
/// segments and returns (dir, program, baseline profile bytes,
/// segment file count).
fn seeded_store(tag: &str) -> (PathBuf, Program, Vec<u8>, usize) {
    let (prog, buf) = workload();
    let baseline = baseline_profiles(&prog, &buf);
    let dir = tmpdir(tag);
    let mut store =
        TraceStore::open_with(&dir, StoreConfig { segment_bytes: 512 }).expect("open");
    let entry = store
        .put(
            "t0",
            &buf,
            TraceMeta {
                workload: "corruption_battery".to_string(),
                grains: GRAINS.to_vec(),
            },
        )
        .expect("put");
    let segments = entry.segments.len();
    assert!(
        segments >= 2,
        "test needs a multi-segment trace; got {segments} segment(s)"
    );
    (dir, prog, baseline, segments)
}

/// Opens the corrupted store and tries to read `t0` end to end.
fn try_read(dir: &Path) -> Result<TraceBuffer, StoreError> {
    let store = TraceStore::open_with(dir, StoreConfig { segment_bytes: 512 })?;
    store.get("t0")
}

/// The battery's core contract: after mutating `path`, reading the trace
/// either fails with a typed error whose diagnostics are usable, or
/// still yields profiles bit-identical to `baseline`.
fn assert_detected_or_identical(
    dir: &Path,
    path: &Path,
    what: &str,
    prog: &Program,
    baseline: &[u8],
    original_len: u64,
) {
    match try_read(dir) {
        Ok(buf) => {
            let got = baseline_profiles(prog, &buf);
            assert_eq!(
                got, baseline,
                "{what} of {} slipped through with WRONG profiles",
                path.display()
            );
        }
        Err(e) => {
            // Every detection must name a real file and, where the error
            // carries an offset, point inside the file it diagnoses.
            let msg = e.to_string();
            assert!(!msg.is_empty(), "{what}: empty diagnosis");
            match &e {
                StoreError::Truncated { offset, needed, .. } => {
                    assert!(
                        *offset <= original_len,
                        "{what}: truncation offset {offset} beyond file \
                         length {original_len}"
                    );
                    assert!(*needed > 0, "{what}: zero-byte 'needed'");
                }
                StoreError::Corrupt { offset, .. } => {
                    assert!(
                        *offset <= original_len,
                        "{what}: corruption offset {offset} beyond file \
                         length {original_len}"
                    );
                }
                StoreError::CrcMismatch {
                    stored, computed, ..
                } => {
                    assert_ne!(
                        stored, computed,
                        "{what}: CRC 'mismatch' with equal checksums"
                    );
                }
                _ => {}
            }
        }
    }
}

fn corrupt_every_truncation(target: &str) {
    let (dir, prog, baseline, _) = seeded_store("trunc");
    let path = dir.join(target);
    let pristine = std::fs::read(&path).expect("read target file");
    let len = pristine.len();
    for keep in 0..len {
        std::fs::write(&path, &pristine[..keep]).expect("truncate");
        assert_detected_or_identical(
            &dir,
            &path,
            &format!("truncation to {keep}/{len} bytes"),
            &prog,
            &baseline,
            len as u64,
        );
    }
    std::fs::write(&path, &pristine).expect("restore");
    assert!(try_read(&dir).is_ok(), "restored file no longer reads");
    let _ = std::fs::remove_dir_all(&dir);
}

fn corrupt_every_bit_flip(target: &str) {
    let (dir, prog, baseline, _) = seeded_store("flip");
    let path = dir.join(target);
    let pristine = std::fs::read(&path).expect("read target file");
    let len = pristine.len();
    for byte in 0..len {
        for bit in 0..8 {
            let mut bytes = pristine.clone();
            bytes[byte] ^= 1 << bit;
            std::fs::write(&path, &bytes).expect("flip");
            assert_detected_or_identical(
                &dir,
                &path,
                &format!("bit flip at byte {byte} bit {bit}"),
                &prog,
                &baseline,
                len as u64,
            );
        }
    }
    std::fs::write(&path, &pristine).expect("restore");
    assert!(try_read(&dir).is_ok(), "restored file no longer reads");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_of_the_first_segment_is_detected() {
    corrupt_every_truncation(&segment_file_name("t0", 0));
}

#[test]
fn every_truncation_of_the_last_segment_is_detected() {
    let (_, _, _, segments) = seeded_store("probe");
    corrupt_every_truncation(&segment_file_name("t0", segments - 1));
}

#[test]
fn every_truncation_of_the_index_is_detected() {
    corrupt_every_truncation(INDEX_FILE);
}

#[test]
fn every_bit_flip_of_a_segment_is_detected() {
    corrupt_every_bit_flip(&segment_file_name("t0", 0));
}

#[test]
fn every_bit_flip_of_the_index_is_detected() {
    corrupt_every_bit_flip(INDEX_FILE);
}

/// Deleting a segment outright (as opposed to mangling it) must surface
/// as a typed error naming the missing file, not a panic or a wrong
/// answer.
#[test]
fn missing_segment_file_is_a_typed_error() {
    let (dir, _prog, _baseline, _) = seeded_store("missing");
    let path = dir.join(segment_file_name("t0", 0));
    std::fs::remove_file(&path).expect("delete segment");
    match try_read(&dir) {
        Ok(_) => panic!("read succeeded with a segment file deleted"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("seg0000"),
                "diagnosis does not name the missing segment: {msg}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Swapping two internally-valid segment files must be caught by the
/// index cross-checks (wrong segment in the wrong slot), never
/// assembled into a silently wrong trace.
#[test]
fn swapped_segment_files_are_detected() {
    let (dir, prog, baseline, segments) = seeded_store("swap");
    let a = dir.join(segment_file_name("t0", 0));
    let b = dir.join(segment_file_name("t0", segments - 1));
    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    std::fs::write(&a, &bytes_b).expect("swap a");
    std::fs::write(&b, &bytes_a).expect("swap b");
    if let Ok(buf) = try_read(&dir) {
        let got = baseline_profiles(&prog, &buf);
        assert_eq!(got, baseline, "swapped segments produced WRONG profiles");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
