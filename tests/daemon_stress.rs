//! Concurrency stress for `reuselens serve`: many clients hammering a
//! 2-worker pool over real TCP connections, with the completion record,
//! the telemetry counters, and the JSONL event stream all reconciled
//! against each other afterwards (the `obs_identity` pattern applied to
//! the daemon).
//!
//! Invariants proved here:
//! * no response is ever lost — one line back per line sent, per client;
//! * completion sequence numbers are a permutation of `1..=N` (a total
//!   order over finished jobs, no duplicates, no gaps);
//! * a full queue rejects with the typed `overloaded` error and the
//!   daemon recovers to full service afterwards;
//! * `jobs_accepted == jobs_completed + jobs_failed` after a drain, and
//!   the JSONL stream carries exactly one lifecycle event per job;
//! * a failed replay's `grain_failed` events name the daemon job that
//!   caused them (satellite: job-id attribution through the degradation
//!   path).

use reuselens::obs::{self, Counter, EventLog, Gauge, MetricsRecorder};
use reuselens::serve::{Daemon, DaemonConfig};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes tests that install into the process-global recorder slot.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reuselens-stress-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends `lines` over one TCP connection, one at a time, waiting for
/// each response before sending the next (the per-connection protocol).
fn client_exchange(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        let n = reader.read_line(&mut response).expect("read response");
        assert!(n > 0, "connection closed before responding to: {line}");
        responses.push(response.trim_end().to_string());
    }
    responses
}

fn seq_of(response: &str) -> Option<u64> {
    let at = response.find("\"seq\":")?;
    response[at + 6..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

#[test]
fn eight_clients_mixed_jobs_lose_nothing() {
    let daemon = Arc::new(
        Daemon::start(DaemonConfig::new(tmpdir("mixed"))).expect("start daemon"),
    );
    let addr = daemon.serve("127.0.0.1:0").expect("bind");

    const CLIENTS: usize = 8;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let id = format!("client{c}");
                let lines = vec![
                    r#"{"kind":"ping"}"#.to_string(),
                    format!(
                        r#"{{"kind":"capture","id":"{id}","workload":"kernel:stream"}}"#
                    ),
                    format!(r#"{{"kind":"replay","id":"{id}","grains":[64]}}"#),
                    format!(r#"{{"kind":"estimate","id":"{id}"}}"#),
                    r#"{"kind":"list"}"#.to_string(),
                    format!(r#"{{"kind":"evict","id":"{id}"}}"#),
                ];
                client_exchange(addr, &lines)
            })
        })
        .collect();

    let mut all_responses = Vec::new();
    for handle in handles {
        let responses = handle.join().expect("client thread");
        assert_eq!(responses.len(), 6, "a client lost responses");
        for response in &responses {
            assert!(
                response.starts_with("{\"ok\":true,"),
                "stress job failed: {response}"
            );
        }
        all_responses.extend(responses);
    }

    // Completion sequence numbers form a total order with no gaps and no
    // duplicates: a permutation of 1..=48.
    let seqs: Vec<u64> = all_responses
        .iter()
        .filter_map(|r| seq_of(r))
        .collect();
    assert_eq!(seqs.len(), CLIENTS * 6, "a response lacked its seq field");
    let distinct: HashSet<u64> = seqs.iter().copied().collect();
    assert_eq!(distinct.len(), seqs.len(), "duplicate completion seq");
    assert_eq!(
        (*distinct.iter().min().unwrap(), *distinct.iter().max().unwrap()),
        (1, (CLIENTS * 6) as u64),
        "completion seq has gaps"
    );

    // The completion record agrees: every job finished, none queued.
    assert_eq!(daemon.queue_depth(), 0);
    let records = daemon.job_records();
    assert_eq!(records.len(), CLIENTS * 6);
    daemon.shutdown();
}

#[test]
fn queue_full_rejects_typed_and_recovers() {
    let mut config = DaemonConfig::new(tmpdir("full"));
    config.workers = 1;
    config.queue = 1;
    let daemon = Arc::new(Daemon::start(config).expect("start daemon"));
    let addr = daemon.serve("127.0.0.1:0").expect("bind");

    // Occupy the single worker...
    let slow = daemon.submit_line(br#"{"kind":"sleep","ms":500}"#);
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.queue_depth() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...fill the one queue slot...
    let queued = daemon.submit_line(br#"{"kind":"sleep","ms":1}"#);
    // ...and overflow from a real TCP client.
    let rejected = client_exchange(addr, &[r#"{"kind":"ping"}"#.to_string()]);
    assert!(
        rejected[0].contains("\"type\":\"overloaded\""),
        "expected a 429-style typed rejection, got: {}",
        rejected[0]
    );
    assert!(rejected[0].starts_with("{\"ok\":false,"), "{}", rejected[0]);

    // Once the pipeline drains, the same client path serves again.
    assert!(slow.recv().expect("slow response").contains("\"ok\":true"));
    assert!(queued.recv().expect("queued response").contains("\"ok\":true"));
    let after = client_exchange(addr, &[r#"{"kind":"ping"}"#.to_string()]);
    assert!(after[0].contains("\"pong\":true"), "{}", after[0]);
    daemon.shutdown();
}

#[test]
fn counters_and_jsonl_reconcile_with_the_completion_record() {
    let _guard = lock();
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let log = Arc::new(EventLog::to_vec());
    obs::install_events(log.clone());

    let mut config = DaemonConfig::new(tmpdir("reconcile"));
    config.workers = 2;
    let daemon = Arc::new(Daemon::start(config).expect("start daemon"));
    let addr = daemon.serve("127.0.0.1:0").expect("bind");

    // 2 clients x (1 capture + 1 good replay + 1 failing replay
    // + 1 unknown-trace replay) + parse rejections.
    let handles: Vec<_> = (0..2)
        .map(|c| {
            std::thread::spawn(move || {
                let id = format!("r{c}");
                let lines = vec![
                    format!(
                        r#"{{"kind":"capture","id":"{id}","workload":"kernel:stream"}}"#
                    ),
                    format!(r#"{{"kind":"replay","id":"{id}","grains":[64]}}"#),
                    // Tiny event budget: the replay fails deterministically,
                    // exercising the degradation path under load.
                    format!(
                        r#"{{"kind":"replay","id":"{id}","grains":[64],"budget_events":10}}"#
                    ),
                    format!(r#"{{"kind":"replay","id":"absent{c}","grains":[64]}}"#),
                ];
                client_exchange(addr, &lines)
            })
        })
        .collect();
    let mut failed_job_ids = Vec::new();
    for handle in handles {
        let responses = handle.join().expect("client thread");
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        assert!(responses[1].contains("\"ok\":true"), "{}", responses[1]);
        assert!(
            responses[2].contains("\"type\":\"analysis\""),
            "budgeted replay should fail typed: {}",
            responses[2]
        );
        assert!(
            responses[3].contains("\"type\":\"unknown-trace\""),
            "{}",
            responses[3]
        );
        // Remember which daemon job ran the budget-starved replay.
        let r = &responses[2];
        let at = r.find("\"job\":\"").expect("failed response names its job") + 7;
        failed_job_ids.push(r[at..].chars().take_while(|c| *c != '"').collect::<String>());
    }
    // Parse-level rejections (never reach the queue).
    for _ in 0..3 {
        let r = client_exchange(addr, &["definitely not json".to_string()]);
        assert!(r[0].contains("\"type\":\"parse\""), "{}", r[0]);
    }
    daemon.shutdown();

    // --- Reconciliation: counters vs completion record vs JSONL ---
    let snap = recorder.snapshot();
    let accepted = snap.counter(Counter::JobsAccepted);
    let completed = snap.counter(Counter::JobsCompleted);
    let failed = snap.counter(Counter::JobsFailed);
    let rejected = snap.counter(Counter::JobsRejected);
    assert_eq!(accepted, 8, "2 clients x 4 queued jobs");
    assert_eq!(completed, 4, "2 captures + 2 good replays");
    assert_eq!(failed, 4, "2 budget failures + 2 unknown traces");
    assert_eq!(rejected, 3, "3 parse rejections");
    assert_eq!(accepted, completed + failed, "a job vanished");
    assert_eq!(snap.gauge(Gauge::JobQueueDepth), 0, "queue not drained");

    let jsonl = log.captured();
    let count = |needle: &str| jsonl.matches(needle).count() as u64;
    assert_eq!(count("\"event\":\"job_accepted\""), accepted);
    assert_eq!(count("\"event\":\"job_completed\""), completed);
    assert_eq!(count("\"event\":\"job_failed\""), failed);
    assert_eq!(count("\"event\":\"job_rejected\""), rejected);

    // Satellite 4: the grain_failed events from the budget-starved
    // replays must carry the job id of the replay that caused them —
    // not null, not a sibling's id.
    assert_eq!(failed_job_ids.len(), 2);
    for job in &failed_job_ids {
        assert!(
            jsonl
                .lines()
                .any(|l| l.contains("\"event\":\"grain_failed\"")
                    && l.contains(&format!("\"job\":\"{job}\""))),
            "no grain_failed event attributed to {job}:\n{jsonl}"
        );
    }
    // And no grain_failed event from a daemon replay goes unattributed.
    for line in jsonl.lines().filter(|l| l.contains("\"event\":\"grain_failed\"")) {
        assert!(
            line.contains("\"job\":\""),
            "unattributed grain_failed event: {line}"
        );
    }

    obs::uninstall_events();
    obs::uninstall();
}
