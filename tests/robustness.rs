//! Edge-case robustness: the pipeline must handle degenerate programs
//! (no accesses, empty loops, store-only traffic) without panicking and
//! with sensible zeros.

use reuselens::advisor::Advisor;
use reuselens::cache::{evaluate_program, MemoryHierarchy};
use reuselens::core::measure_spatial;
use reuselens::ir::{Expr, ProgramBuilder};
use reuselens::metrics::{format_summary, run_locality_analysis, to_xml};
use reuselens::model::ProfileModel;

fn h() -> MemoryHierarchy {
    MemoryHierarchy::itanium2()
}

#[test]
fn program_with_no_accesses() {
    let mut p = ProgramBuilder::new("empty");
    let _unused = p.array("a", 8, &[16]);
    p.routine("main", |r| {
        r.for_("i", 0, 9, |_, _| {}); // empty body
    });
    let prog = p.finish();
    let la = run_locality_analysis(&prog, &h(), vec![]).unwrap();
    for m in la.all_levels() {
        assert_eq!(m.total_misses, 0.0);
        assert_eq!(m.cold_misses, 0);
        assert!(m.patterns.is_empty());
        assert!(m.top_carriers().is_empty());
    }
    assert_eq!(la.report.timing.total(), 0.0);
    // Reports still render.
    assert!(format_summary(&la).contains("L2"));
    let xml = to_xml(&prog, &la);
    assert!(xml.contains("LoopScope"));
    // The advisor has nothing to say but does not panic.
    assert!(Advisor::new(&prog).advise(la.level("L2").unwrap()).is_empty());
}

#[test]
fn zero_iteration_loops_run_cleanly() {
    let mut p = ProgramBuilder::new("zero");
    let a = p.array("a", 8, &[16]);
    p.routine("main", |r| {
        r.for_("i", 5, 2, |r, i| {
            // never executes
            r.load(a, vec![i.into()]);
        });
        r.load(a, vec![Expr::c(0)]);
    });
    let prog = p.finish();
    let (report, analysis) = evaluate_program(&prog, &h(), vec![]).unwrap();
    assert_eq!(report.accesses, 1);
    assert_eq!(analysis.profiles[0].total_cold(), 1);
}

#[test]
fn store_only_traffic_is_analyzed() {
    let mut p = ProgramBuilder::new("stores");
    let a = p.array("a", 8, &[1 << 14]);
    p.routine("main", |r| {
        r.for_("t", 0, 1, |r, _| {
            r.for_("i", 0, (1 << 14) - 1, |r, i| {
                r.store(a, vec![i.into()]);
            });
        });
    });
    let prog = p.finish();
    let la = run_locality_analysis(&prog, &h(), vec![]).unwrap();
    let l2 = la.level("L2").unwrap();
    assert!(l2.total_misses > 0.0);
    assert!(la.report.accesses == 2 << 14);
}

#[test]
fn single_access_program() {
    let mut p = ProgramBuilder::new("one");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.load(a, vec![Expr::c(0)]);
    });
    let prog = p.finish();
    let la = run_locality_analysis(&prog, &h(), vec![]).unwrap();
    assert_eq!(la.level("L2").unwrap().total_misses, 1.0); // one cold miss
    let spatial = measure_spatial(&prog, 128, vec![]).unwrap();
    let arr = prog.array_by_name("a").unwrap();
    // One 8-byte element in a 128-byte line.
    let u = spatial.utilization_of(arr).unwrap();
    assert!((u - 8.0 / 128.0).abs() < 1e-9);
}

#[test]
fn model_fit_on_cold_dominated_profiles() {
    // A single streaming sweep: the only reuses are zero-distance spatial
    // hits within a line; every real miss is compulsory. The fitted model
    // must predict that shape, not NaNs.
    let mk = |n: u64| {
        let mut p = ProgramBuilder::new("coldonly");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        reuselens::core::analyze_program(&prog, &[128], vec![])
            .unwrap()
            .profiles
            .remove(0)
    };
    let profiles = [mk(1024), mk(2048), mk(4096)];
    let refs: Vec<&_> = profiles.iter().collect();
    let model = ProfileModel::fit(&[1024.0, 2048.0, 4096.0], &refs, 8);
    let predicted = model.predict(8192.0);
    assert!(predicted.total_cold() > 0);
    assert!(predicted.accesses_balance());
    // All reuses sit at distance zero: any cache with >= 1 block hits
    // them, so predicted misses equal the cold count at every capacity.
    let curve = reuselens::cache::miss_curve(&predicted, &[1, 64, 4096]);
    for (_, misses) in curve {
        assert!((misses - predicted.total_cold() as f64).abs() < 1e-9);
    }
}

#[test]
fn deep_loop_nesting_works() {
    let mut p = ProgramBuilder::new("deep");
    let a = p.array("a", 8, &[256]);
    p.routine("main", |r| {
        r.for_("l0", 0, 1, |r, v0| {
            r.for_("l1", 0, 1, |r, v1| {
                r.for_("l2", 0, 1, |r, v2| {
                    r.for_("l3", 0, 1, |r, v3| {
                        r.for_("l4", 0, 1, |r, v4| {
                            r.for_("l5", 0, 1, |r, v5| {
                                let idx = Expr::var(v0) * 32
                                    + Expr::var(v1) * 16
                                    + Expr::var(v2) * 8
                                    + Expr::var(v3) * 4
                                    + Expr::var(v4) * 2
                                    + Expr::var(v5);
                                r.load(a, vec![idx]);
                            });
                        });
                    });
                });
            });
        });
    });
    let prog = p.finish();
    let la = run_locality_analysis(&prog, &h(), vec![]).unwrap();
    assert_eq!(la.report.accesses, 64);
    // All 64 addresses distinct & within 8 lines => only cold misses.
    assert_eq!(la.level("L2").unwrap().cold_misses, 4);
}

#[test]
fn guard_that_never_fires_contributes_nothing() {
    let mut p = ProgramBuilder::new("deadguard");
    let a = p.array("a", 8, &[64]);
    p.routine("main", |r| {
        r.for_("i", 0, 63, |r, i| {
            r.if_(
                reuselens::ir::Pred::Gt(Expr::var(i), Expr::c(1000)),
                |r| {
                    r.load(a, vec![i.into()]);
                },
            );
        });
    });
    let prog = p.finish();
    let la = run_locality_analysis(&prog, &h(), vec![]).unwrap();
    assert_eq!(la.report.accesses, 0);
}
