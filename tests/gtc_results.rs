//! The paper's §V-B headline results for GTC, as shape assertions.

use reuselens::cache::{evaluate_program, MemoryHierarchy};
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::gtc::{build, GtcConfig, GtcTransforms};

const MGRID: u64 = 512;
const MICELL: u64 = 16;

fn h() -> MemoryHierarchy {
    MemoryHierarchy::itanium2_scaled(16)
}

fn report(t: GtcTransforms) -> reuselens::cache::HierarchyReport {
    let w = build(&GtcConfig::new(MGRID, MICELL).with_transforms(t));
    evaluate_program(&w.program, &h(), w.index_arrays.clone())
        .unwrap()
        .0
}

/// Fig. 9: the zion arrays dominate fragmentation misses.
#[test]
fn fig9_zion_dominates_fragmentation() {
    let w = build(&GtcConfig::new(MGRID, MICELL));
    let la = run_locality_analysis(&w.program, &h(), w.index_arrays.clone()).unwrap();
    let l3 = la.level("L3").unwrap();
    let zion = w.program.array_by_name("zion").unwrap();
    let zion0 = w.program.array_by_name("zion0").unwrap();
    let zion_frag = l3.frag_by_array[zion.index()] + l3.frag_by_array[zion0.index()];
    assert!(
        zion_frag / l3.total_fragmentation() > 0.9,
        "zion arrays carry {:.0}% of fragmentation misses (paper ~95%)",
        100.0 * zion_frag / l3.total_fragmentation()
    );
    // And the top-ranked fragmented array is one of them.
    let top = l3.top_fragmented_arrays()[0].0;
    assert!(top == zion || top == zion0);
}

/// Fig. 10(a): pushi and the time-step/irk loops carry large L3 shares;
/// (b): the smooth outer loop carries the majority of TLB misses.
#[test]
fn fig10_carriers() {
    let w = build(&GtcConfig::new(MGRID, MICELL).with_timesteps(2));
    let la = run_locality_analysis(&w.program, &h(), w.index_arrays.clone()).unwrap();
    let l3 = la.level("L3").unwrap();
    let tlb = la.level("TLB").unwrap();
    let scope = |n: &str| w.program.scope_by_name(n).unwrap();

    let pushi_scope = w
        .program
        .routine(w.program.routine_by_name("pushi").unwrap())
        .scope();
    let pushi_share = l3.carried[pushi_scope.index()] / l3.total_misses;
    assert!(
        pushi_share > 0.15,
        "pushi carries {:.0}% of L3 (paper ~20%)",
        100.0 * pushi_share
    );

    let time_share = (l3.carried[scope("istep").index()]
        + l3.carried[scope("irk").index()])
        / l3.total_misses;
    assert!(
        time_share > 0.25,
        "time loops carry {:.0}% of L3 (paper ~40%)",
        100.0 * time_share
    );

    let chargei_scope = w
        .program
        .routine(w.program.routine_by_name("chargei").unwrap())
        .scope();
    let chargei_share = l3.carried[chargei_scope.index()] / l3.total_misses;
    assert!(
        chargei_share > 0.05,
        "chargei carries {:.0}% of L3 (paper ~11%)",
        100.0 * chargei_share
    );

    let smooth_share = tlb.carried[scope("smooth_i").index()] / tlb.total_misses;
    assert!(
        smooth_share > 0.5,
        "smooth outer loop carries {:.0}% of TLB (paper ~64%)",
        100.0 * smooth_share
    );
}

/// "Reorganizing the arrays of structures into structures of arrays ...
/// reduced cache misses by a factor of two": the transpose is the largest
/// single improvement.
#[test]
fn zion_transpose_halves_cache_misses() {
    let orig = report(GtcTransforms::cumulative(0));
    let transposed = report(GtcTransforms::cumulative(1));
    let ratio = orig.misses_at("L3").unwrap() / transposed.misses_at("L3").unwrap();
    assert!(ratio > 1.6, "L3 reduction from transpose: {ratio:.2}x");
}

/// "We were able to apply loop interchange ... and eliminate all of these
/// TLB misses" (smooth).
#[test]
fn smooth_interchange_eliminates_tlb_misses() {
    let before = report(GtcTransforms::cumulative(4));
    let after = report(GtcTransforms::cumulative(5));
    let ratio = before.misses_at("TLB").unwrap() / after.misses_at("TLB").unwrap();
    assert!(ratio > 10.0, "TLB reduction from smooth interchange: {ratio:.1}x");
}

/// "the tiling/fusion in the pushi routine significantly reduced the
/// number of L2 and L3 cache misses".
#[test]
fn pushi_tiling_reduces_cache_misses() {
    let before = report(GtcTransforms::cumulative(5));
    let after = report(GtcTransforms::cumulative(6));
    assert!(after.misses_at("L3").unwrap() < before.misses_at("L3").unwrap());
}

/// Overall: "reduced cache misses by a factor of two ... and a 33%
/// reduction of the execution time".
#[test]
fn full_transformation_stack_headline() {
    let orig = report(GtcTransforms::cumulative(0));
    let tuned = report(GtcTransforms::cumulative(6));
    let l2_ratio = orig.misses_at("L2").unwrap() / tuned.misses_at("L2").unwrap();
    let l3_ratio = orig.misses_at("L3").unwrap() / tuned.misses_at("L3").unwrap();
    assert!(l2_ratio > 2.0, "L2 reduction {l2_ratio:.2}x (paper ~2x)");
    assert!(l3_ratio > 2.0, "L3 reduction {l3_ratio:.2}x (paper ~2x)");
    let time_cut = 1.0 - tuned.timing.total() / orig.timing.total();
    assert!(
        time_cut > 0.25,
        "time reduction {:.0}% (paper 33%)",
        100.0 * time_cut
    );
}

/// "the cost of the Poisson solver stays constant" as particles grow: the
/// grid-phase transformations matter only at small micell.
#[test]
fn grid_phase_gains_shrink_with_more_particles() {
    let gain_at = |micell: u64| {
        let before = {
            let w = build(
                &GtcConfig::new(MGRID, micell)
                    .with_transforms(GtcTransforms::cumulative(2)),
            );
            evaluate_program(&w.program, &h(), w.index_arrays.clone())
                .unwrap()
                .0
                .timing
                .total()
        };
        let after = {
            let w = build(
                &GtcConfig::new(MGRID, micell)
                    .with_transforms(GtcTransforms::cumulative(5)),
            );
            evaluate_program(&w.program, &h(), w.index_arrays.clone())
                .unwrap()
                .0
                .timing
                .total()
        };
        (before - after) / before
    };
    let small = gain_at(4);
    let large = gain_at(32);
    assert!(
        small > large,
        "relative grid-phase gain should shrink: {small:.3} vs {large:.3}"
    );
}
