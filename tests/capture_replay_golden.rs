//! Golden equivalence: the capture-once / replay-many pipeline must
//! produce **bit-identical** reuse profiles to the online single-pass
//! analyzer on the paper's real workload models, at multiple block
//! granularities.
//!
//! This pins the trace buffer's encode/decode round trip and the
//! threaded replay against the reference pipeline — any divergence in
//! event order, clock arithmetic, or scope bookkeeping shows up as a
//! profile mismatch here.

use reuselens::core::{analyze_program, analyze_program_parallel};
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens::workloads::BuiltWorkload;

/// Line + page granularity: the paper's cache and TLB studies in one run.
const GRAINS: [u64; 2] = [64, 4096];

fn assert_pipelines_identical(w: &BuiltWorkload, grains: &[u64]) {
    let online = analyze_program(&w.program, grains, w.index_arrays.clone()).unwrap();
    let (par, stats) =
        analyze_program_parallel(&w.program, grains, w.index_arrays.clone()).unwrap();
    assert_eq!(
        online.profiles, par.profiles,
        "replayed profiles diverged from the online pass"
    );
    assert_eq!(online.exec, par.exec);
    assert_eq!(stats.buffer.accesses, online.exec.accesses);
    assert_eq!(stats.replays.len(), grains.len());
    // The columnar encoding must actually compress the event stream.
    assert!(
        stats.buffer.compression_ratio() > 1.0,
        "buffer stats: {}",
        stats.buffer
    );
    for p in &par.profiles {
        assert!(p.accesses_balance());
    }
}

#[test]
fn sweep3d_capture_replay_is_bit_identical() {
    assert_pipelines_identical(&build_sweep(&SweepConfig::new(8)), &GRAINS);
}

#[test]
fn sweep3d_transformed_capture_replay_is_bit_identical() {
    // Exercise a transformed variant too: blocking changes the scope tree
    // and the reuse carriers, not just the address stream.
    let cfg = SweepConfig::new(8).with_mi_block(2).with_dim_interchange();
    assert_pipelines_identical(&build_sweep(&cfg), &GRAINS);
}

#[test]
fn gtc_capture_replay_is_bit_identical() {
    // GTC's gather/scatter goes through index arrays, covering the
    // indirect-access path of the executor during capture.
    assert_pipelines_identical(&build_gtc(&GtcConfig::new(64, 8)), &GRAINS);
}

#[test]
fn gtc_capture_replay_at_extra_grains() {
    // A third, intermediate granularity on the irregular workload.
    assert_pipelines_identical(&build_gtc(&GtcConfig::new(32, 4)), &[64, 256, 4096]);
}
