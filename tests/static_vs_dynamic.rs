//! The static estimator's accuracy contract: symbolic miss predictions
//! versus the exact dynamic engine, across the two paper workloads and a
//! ladder of synthetic affine nests, each at three problem sizes.
//!
//! The zero-trace estimator (`reuselens_static::estimate_profiles`)
//! predicts per-pattern reuse-distance histograms from loop structure
//! alone. This suite replays every workload through the exact dynamic
//! pipeline too and compares the per-level miss predictions the cache
//! model derives from each side.
//!
//! # Bands
//!
//! For every modelled cache level (L2 and L3 on the scaled hierarchies):
//!
//! * the **miss rate** must agree within [`MISS_RATE_ABS_BAND`] absolute;
//! * when the level carries material traffic (dynamic miss rate at least
//!   [`MATERIAL_MISS_RATE`]), the predicted **miss count** must also
//!   agree within [`MISS_REL_BAND`] relative error.
//!
//! The TLB is excluded from the contract: at the scaled hierarchies it
//! holds 8 entries of 16 KiB pages, so a whole working set maps to a
//! handful of pages and the estimator's footprint approximations
//! quantize in steps comparable to the capacity itself — the same
//! resolvability argument PR 5 applied to sampled histograms (see
//! `crates/cache/tests/sampled_miss_bounds.rs`). `calibrate_print_errors`
//! still prints TLB drift for auditing.
//!
//! The suite also proves the "zero trace events" claim the README makes:
//! an instrumented static run must finish with every capture/decode
//! counter at zero while `static_refs_covered` is positive.

use reuselens::cache::{report_from_analysis, CacheConfig, HierarchyReport, MemoryHierarchy};
use reuselens::core::{analyze_buffer_with, capture_program, AnalysisResult, AnalyzeOptions};
use reuselens::metrics::run_locality_estimate;
use reuselens::obs::{self, Counter, MetricsRecorder, Stage};
use reuselens::statics::estimate_profiles;
use reuselens::workloads::kernels::{
    fig1_interchange, matmul, stencil2d, streaming, transpose, Fig1Variant,
};
use reuselens::workloads::{gtc, sweep3d, BuiltWorkload};
use std::sync::{Arc, Mutex, MutexGuard};

/// Absolute miss-rate drift allowed at every checked level.
const MISS_RATE_ABS_BAND: f64 = 0.08;
/// Relative miss-count drift allowed at levels with material traffic.
const MISS_REL_BAND: f64 = 0.75;
/// A level is material when the dynamic model predicts at least this
/// miss rate; below it only the absolute band applies.
const MATERIAL_MISS_RATE: f64 = 0.01;

/// Serializes the tests that install the process-global recorder.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Every workload family at (at least) three problem sizes.
fn workloads() -> Vec<(String, BuiltWorkload)> {
    let mut out: Vec<(String, BuiltWorkload)> = Vec::new();
    for mesh in [6, 8, 10] {
        out.push((
            format!("sweep3d-{mesh}"),
            sweep3d::build(&sweep3d::SweepConfig::new(mesh).with_timesteps(1)),
        ));
    }
    for (mgrid, micell) in [(128, 4), (256, 8), (384, 8)] {
        out.push((
            format!("gtc-{mgrid}x{micell}"),
            gtc::build(&gtc::GtcConfig::new(mgrid, micell).with_timesteps(1)),
        ));
    }
    for elems in [1u64 << 14, 1 << 15, 1 << 16] {
        out.push((format!("streaming-{elems}"), streaming(elems, 3)));
    }
    for n in [32, 48, 64] {
        out.push((format!("stencil2d-{n}"), stencil2d(n, 2)));
    }
    for n in [24, 32, 40] {
        out.push((format!("matmul-{n}"), matmul(n, None)));
    }
    for n in [64, 96, 128] {
        out.push((format!("transpose-{n}"), transpose(n)));
    }
    for (n, m) in [(128, 64), (256, 128), (384, 192)] {
        out.push((
            format!("fig1-{n}x{m}"),
            fig1_interchange(n, m, Fig1Variant::RowOrder),
        ));
    }
    out
}

fn hierarchies() -> Vec<MemoryHierarchy> {
    vec![
        MemoryHierarchy::itanium2_scaled(16),
        MemoryHierarchy::itanium2_scaled(32),
    ]
}

/// The exact dynamic pipeline's report.
fn dynamic_report(w: &BuiltWorkload, hierarchy: &MemoryHierarchy) -> HierarchyReport {
    let (buffer, exec) = capture_program(&w.program, w.index_arrays.clone()).expect("capture");
    let grains = hierarchy.required_granularities();
    let (profiles, _timings) =
        analyze_buffer_with(&w.program, &buffer, &grains, &AnalyzeOptions::default())
            .into_strict()
            .expect("replay");
    report_from_analysis(&AnalysisResult { profiles, exec }, hierarchy)
}

/// The symbolic estimator's report — no capture, no replay.
fn static_report(w: &BuiltWorkload, hierarchy: &MemoryHierarchy) -> HierarchyReport {
    let grains = hierarchy.required_granularities();
    let est = estimate_profiles(&w.program, &w.index_arrays, &grains);
    report_from_analysis(
        &AnalysisResult {
            profiles: est.profiles,
            exec: est.exec,
        },
        hierarchy,
    )
}

/// Cache-level predictions zipped with their configs (TLB excluded —
/// see the module doc).
fn cache_levels<'a>(
    report: &'a HierarchyReport,
    hierarchy: &'a MemoryHierarchy,
) -> Vec<(&'a reuselens::cache::LevelPrediction, &'a CacheConfig)> {
    report.levels.iter().zip(hierarchy.levels.iter()).collect()
}

#[test]
fn static_miss_predictions_stay_within_bands() {
    let mut checked = 0u32;
    for (name, w) in workloads() {
        for hierarchy in hierarchies() {
            let dy = dynamic_report(&w, &hierarchy);
            let st = static_report(&w, &hierarchy);
            for ((ld, _config), (ls, _)) in
                cache_levels(&dy, &hierarchy).iter().zip(cache_levels(&st, &hierarchy))
            {
                assert_eq!(ld.level, ls.level);
                checked += 1;
                let rate_err = (ls.miss_rate() - ld.miss_rate()).abs();
                assert!(
                    rate_err <= MISS_RATE_ABS_BAND,
                    "{name}/{}/{}: static miss rate {:.4} vs dynamic {:.4} \
                     (abs err {rate_err:.4} > band {MISS_RATE_ABS_BAND})",
                    hierarchy.name,
                    ld.level,
                    ls.miss_rate(),
                    ld.miss_rate()
                );
                if ld.miss_rate() >= MATERIAL_MISS_RATE {
                    let rel = (ls.total - ld.total).abs() / ld.total;
                    assert!(
                        rel <= MISS_REL_BAND,
                        "{name}/{}/{}: {:.0} static misses vs dynamic {:.0} \
                         (rel err {rel:.3} > band {MISS_REL_BAND})",
                        hierarchy.name,
                        ld.level,
                        ls.total,
                        ld.total
                    );
                }
            }
        }
    }
    // 21 workloads x 2 hierarchies x 2 cache levels (L2 + L3; the scaled
    // Itanium2 hierarchies model no L1).
    assert_eq!(checked, 84, "checked level set changed");
}

/// The static path must execute zero trace events: every capture/decode
/// counter stays at zero while the estimator reports coverage, and only
/// Estimate/Report stages run (never Capture/Decode/Replay).
#[test]
fn static_path_executes_zero_trace_events() {
    let _guard = lock();
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let w = sweep3d::build(&sweep3d::SweepConfig::new(8).with_timesteps(1));
    let hierarchy = MemoryHierarchy::itanium2_scaled(16);
    let run = run_locality_estimate(&w.program, &hierarchy, &w.index_arrays);
    obs::uninstall();
    let snap = recorder.snapshot();

    for counter in [
        Counter::EventsCaptured,
        Counter::AccessesCaptured,
        Counter::BytesEncoded,
        Counter::EventsDecoded,
        Counter::AccessesDecoded,
    ] {
        assert_eq!(
            snap.counter(counter),
            0,
            "static path touched the trace pipeline via {counter:?}"
        );
    }
    for stage in [Stage::Capture, Stage::Decode, Stage::Replay] {
        assert_eq!(
            snap.stage(stage).count,
            0,
            "static path ran a {stage:?} span"
        );
    }
    assert!(snap.stage(Stage::Estimate).count >= 1, "no Estimate span");
    assert!(
        snap.counter(Counter::StaticRefsCovered) > 0,
        "estimator covered no references on an affine workload"
    );
    assert!(!run.covered.is_empty());
    // Sweep3D is fully affine: nothing may fall back.
    assert!(
        run.fallback.is_empty(),
        "unexpected fallback refs: {:?}",
        run.fallback
    );
    assert_eq!(
        snap.counter(Counter::StaticRefsCovered),
        run.covered.len() as u64
    );
    // The synthetic analysis feeds the same attribution back half.
    assert!(run.analysis.report.accesses > 0);
}

/// GTC's charge-deposition subscripts are indirect: the estimator must
/// classify them as fallback (and count them on the fallback counter)
/// rather than silently pretending they are affine.
#[test]
fn indirect_references_are_reported_as_fallback() {
    let _guard = lock();
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let w = gtc::build(&gtc::GtcConfig::new(256, 8).with_timesteps(1));
    let hierarchy = MemoryHierarchy::itanium2_scaled(16);
    let run = run_locality_estimate(&w.program, &hierarchy, &w.index_arrays);
    obs::uninstall();
    let snap = recorder.snapshot();

    assert!(
        !run.fallback.is_empty(),
        "GTC has indirect references; none fell back"
    );
    assert_eq!(
        snap.counter(Counter::StaticRefsFallback),
        run.fallback.len() as u64
    );
    for r in &run.fallback {
        assert!(
            w.program.reference(*r).is_indirect(),
            "affine reference {r:?} fell back"
        );
    }
}

/// Prints the actual per-level drift (TLB included) so the bands above
/// can be audited; run with `cargo test --test static_vs_dynamic \
/// calibrate -- --ignored --nocapture`.
#[test]
#[ignore]
fn calibrate_print_errors() {
    for (name, w) in workloads() {
        for hierarchy in hierarchies() {
            let dy = dynamic_report(&w, &hierarchy);
            let st = static_report(&w, &hierarchy);
            let all_dy: Vec<_> = dy.levels.iter().chain(std::iter::once(&dy.tlb)).collect();
            let all_st: Vec<_> = st.levels.iter().chain(std::iter::once(&st.tlb)).collect();
            for (ld, ls) in all_dy.iter().zip(all_st) {
                let rel = if ld.total > 0.0 {
                    (ls.total - ld.total).abs() / ld.total
                } else {
                    0.0
                };
                println!(
                    "{name}/{}/{}: dyn rate {:.4} static rate {:.4} abs {:.4} rel {:.3} \
                     (dyn misses {:.0}, static {:.0})",
                    hierarchy.name,
                    ld.level,
                    ld.miss_rate(),
                    ls.miss_rate(),
                    (ls.miss_rate() - ld.miss_rate()).abs(),
                    rel,
                    ld.total,
                    ls.total
                );
            }
        }
    }
}
