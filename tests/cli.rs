//! Smoke tests for the `reuselens` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_reuselens"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("sweep3d"));
    assert!(stdout.contains("gtc"));
}

#[test]
fn missing_workload_fails_with_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing workload"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_report_fails() {
    let (_, stderr, ok) = run(&["kernel", "fig2", "--report", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown report"));
}

#[test]
fn sweep3d_summary_reports_levels() {
    let (stdout, _, ok) = run(&["sweep3d", "--mesh", "8", "--report", "summary"]);
    assert!(ok);
    assert!(stdout.contains("L2"));
    assert!(stdout.contains("TLB"));
    assert!(stdout.contains("cycles"));
    assert!(stdout.contains("carried misses by scope"));
}

#[test]
fn sweep3d_advice_names_idiag() {
    let (stdout, _, ok) = run(&["sweep3d", "--mesh", "10", "--report", "advice"]);
    assert!(ok);
    assert!(stdout.contains("idiag"), "advice should target idiag:\n{stdout}");
}

#[test]
fn gtc_frag_report_ranks_zion() {
    let (stdout, _, ok) = run(&[
        "gtc", "--mgrid", "256", "--micell", "8", "--report", "frag",
    ]);
    assert!(ok);
    assert!(stdout.contains("zion"));
}

#[test]
fn gtc_breakdown_report_for_named_array() {
    let (stdout, _, ok) = run(&[
        "gtc",
        "--mgrid",
        "128",
        "--micell",
        "4",
        "--report",
        "breakdown=zion",
    ]);
    assert!(ok);
    assert!(stdout.contains("carrying scope"));
}

#[test]
fn kernel_xml_report_is_wellformed_prefix() {
    let (stdout, _, ok) = run(&["kernel", "stream", "--report", "xml"]);
    assert!(ok);
    assert!(stdout.starts_with("<?xml version=\"1.0\"?>"));
    assert!(stdout.trim_end().ends_with("</LocalityDatabase>"));
}

#[test]
fn kernel_spatial_report_shows_utilization() {
    let (stdout, _, ok) = run(&["kernel", "fig2", "--report", "spatial"]);
    assert!(ok);
    assert!(stdout.contains("utilization"));
}

#[test]
fn gtc_variant_flag_changes_results() {
    let (orig, _, ok1) = run(&[
        "gtc", "--mgrid", "128", "--micell", "8", "--report", "summary",
    ]);
    let (tuned, _, ok2) = run(&[
        "gtc", "--mgrid", "128", "--micell", "8", "--variant", "6", "--report", "summary",
    ]);
    assert!(ok1 && ok2);
    assert_ne!(orig, tuned);
}

#[test]
fn bad_variant_is_rejected() {
    let (_, stderr, ok) = run(&["gtc", "--variant", "7"]);
    assert!(!ok);
    assert!(stderr.contains("--variant must be 0..=6"));
}

#[test]
fn save_and_predict_workflow() {
    let dir = std::env::temp_dir().join("reuselens-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    for mesh in [8, 10, 12] {
        let path = dir.join(format!("m{mesh}.rlp"));
        let (_, _, ok) = run(&[
            "sweep3d",
            "--mesh",
            &mesh.to_string(),
            "--save-profile",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "saving mesh {mesh} profile failed");
        assert!(path.exists());
    }
    let files: Vec<String> = [8, 10, 12]
        .iter()
        .map(|m| dir.join(format!("m{m}.rlp")).to_str().unwrap().to_string())
        .collect();
    let mut args = vec!["predict", "--at", "16"];
    args.extend(files.iter().map(String::as_str));
    let (stdout, _, ok) = run(&args);
    assert!(ok, "predict failed");
    assert!(stdout.contains("predicted L2 misses at size 16"));
    // The prediction must be in the right ballpark of a real mesh-16 run
    // (loose: the training range 8-12 is deliberately small).
    let predicted: f64 = stdout
        .lines()
        .find(|l| l.contains("predicted"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|t| t.parse().ok())
        .unwrap();
    assert!(
        predicted > 10_000.0 && predicted < 60_000.0,
        "prediction {predicted} out of band"
    );
}

#[test]
fn predict_rejects_too_few_profiles() {
    let (_, stderr, ok) = run(&["predict", "--at", "16"]);
    assert!(!ok);
    assert!(stderr.contains("at least two saved profiles"));
}

#[test]
fn curve_report_is_monotone_csv() {
    let (stdout, _, ok) = run(&["kernel", "stream", "--report", "curve"]);
    assert!(ok);
    let mut last = f64::INFINITY;
    let mut rows = 0;
    for line in stdout.lines().skip(1) {
        let misses: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
        assert!(misses <= last);
        last = misses;
        rows += 1;
    }
    assert!(rows > 10);
}

#[test]
fn program_report_prints_source_like_text() {
    let (stdout, _, ok) = run(&["kernel", "fig2", "--report", "program"]);
    assert!(ok);
    assert!(stdout.contains("program fig2"));
    assert!(stdout.contains("do j ="));
    assert!(stdout.contains("store"));
}

#[test]
fn contexts_report_names_call_paths() {
    let (stdout, _, ok) = run(&[
        "gtc", "--mgrid", "128", "--micell", "4", "--report", "contexts",
    ]);
    assert!(ok);
    assert!(stdout.contains("main -> "));
    assert!(stdout.contains("calling context"));
}

#[test]
fn patterns_csv_report_is_csv() {
    let (stdout, _, ok) = run(&["kernel", "fig2", "--report", "patterns-csv"]);
    assert!(ok);
    assert!(stdout.starts_with("sink,array,"));
    assert!(stdout.lines().count() > 2);
}
