//! The paper's §V-A headline results for Sweep3D, as shape assertions
//! (meshes scaled to CI size; the hierarchy is scaled by the same factor).

use reuselens::cache::{evaluate_program, MemoryHierarchy};
use reuselens::metrics::run_locality_analysis;
use reuselens::workloads::sweep3d::{build, SweepConfig};

const MESH: u64 = 12;

fn h() -> MemoryHierarchy {
    MemoryHierarchy::itanium2_scaled(16)
}

fn misses(cfg: &SweepConfig, level: &str) -> f64 {
    let w = build(cfg);
    let (report, _) = evaluate_program(&w.program, &h(), w.index_arrays.clone()).unwrap();
    report.misses_at(level).unwrap()
}

/// "The figures show that the original code and the code with a blocking
/// factor of one have identical memory behavior."
#[test]
fn original_equals_block_one() {
    let orig = misses(&SweepConfig::new(MESH), "L2");
    let b1 = misses(&SweepConfig::new(MESH).with_mi_block(1), "L2");
    assert_eq!(orig, b1);
}

/// "As the blocking factor increases, fewer accesses miss in the cache"
/// — monotone decrease over 1, 2, 3, 6.
#[test]
fn blocking_monotonically_reduces_l2_misses() {
    let series: Vec<f64> = [1u64, 2, 3, 6]
        .iter()
        .map(|&b| misses(&SweepConfig::new(MESH).with_mi_block(b), "L2"))
        .collect();
    for w in series.windows(2) {
        assert!(
            w[1] < w[0],
            "blocking must reduce L2 misses: {series:?}"
        );
    }
}

/// "The transformed code incurs less than 25% of the cache misses observed
/// with the original code" (block 6 + dimension interchange).
#[test]
fn tuned_code_quarters_the_misses() {
    let orig = misses(&SweepConfig::new(MESH), "L2");
    let tuned = misses(
        &SweepConfig::new(MESH).with_mi_block(6).with_dim_interchange(),
        "L2",
    );
    assert!(
        tuned < 0.25 * orig,
        "tuned {tuned:.0} vs original {orig:.0}"
    );
}

/// "...reducing their misses at various levels of the memory hierarchy by
/// integer factors": TLB improves too.
#[test]
fn tuned_code_reduces_tlb_misses() {
    // TLB pressure needs a mesh whose diagonal working set spans more
    // pages than the (scaled) TLB holds; mesh 12 only touches cold pages.
    let orig = misses(&SweepConfig::new(20), "TLB");
    let tuned = misses(
        &SweepConfig::new(20).with_mi_block(6).with_dim_interchange(),
        "TLB",
    );
    assert!(
        tuned <= orig / 1.5,
        "tuned {tuned:.0} vs original {orig:.0}"
    );
}

/// "the overall execution is 2.5x faster" — the cycle model must show a
/// clear speedup (exact factor depends on the penalty constants).
#[test]
fn tuned_code_is_substantially_faster() {
    let time = |cfg: &SweepConfig| {
        let w = build(cfg);
        let (report, _) =
            evaluate_program(&w.program, &h(), w.index_arrays.clone()).unwrap();
        report.timing.total()
    };
    let orig = time(&SweepConfig::new(MESH));
    let tuned = time(&SweepConfig::new(MESH).with_mi_block(6).with_dim_interchange());
    let speedup = orig / tuned;
    assert!(speedup > 1.1, "speedup {speedup:.2}x");
}

/// Fig. 5: the idiag loop carries the dominant share of L2 misses; the
/// jkm plane loop carries the dominant share of TLB misses.
#[test]
fn fig5_carrier_shares() {
    let w = build(&SweepConfig::new(16).with_timesteps(2));
    let la = run_locality_analysis(&w.program, &h(), w.index_arrays.clone()).unwrap();
    let idiag = w.program.scope_by_name("idiag").unwrap();
    let jkm = w.program.scope_by_name("jkm").unwrap();

    let l2 = la.level("L2").unwrap();
    let idiag_share = l2.carried[idiag.index()] / l2.total_misses;
    assert!(
        idiag_share > 0.5,
        "idiag carries {:.0}% of L2 misses (paper ~75%)",
        100.0 * idiag_share
    );
    assert_eq!(l2.top_carriers()[0].0, idiag);

    let tlb = la.level("TLB").unwrap();
    let jkm_share = tlb.carried[jkm.index()] / tlb.total_misses;
    assert!(
        jkm_share > 0.5,
        "jkm carries {:.0}% of TLB misses (paper ~79%)",
        100.0 * jkm_share
    );
}

/// Table II: src, flux, face and the sigt/buffer group account for the
/// bulk of L2 misses, with idiag the top carrier for each of src/flux/face.
#[test]
fn table2_array_breakdown() {
    let w = build(&SweepConfig::new(16).with_timesteps(2));
    let la = run_locality_analysis(&w.program, &h(), w.index_arrays.clone()).unwrap();
    let l2 = la.level("L2").unwrap();
    let idiag = w.program.scope_by_name("idiag").unwrap();

    let share = |name: &str| {
        let a = w.program.array_by_name(name).unwrap();
        l2.by_array[a.index()] / l2.total_misses
    };
    let main4 = share("src") + share("flux") + share("face") + share("sigt");
    assert!(
        main4 > 0.7,
        "src+flux+face+sigt carry {:.0}% of L2 misses (paper ~91% incl. buffers)",
        100.0 * main4
    );
    for name in ["src", "flux", "face"] {
        let a = w.program.array_by_name(name).unwrap();
        let rows = l2.array_breakdown(a);
        assert_eq!(
            rows[0].1, idiag,
            "{name}: top carrier should be idiag"
        );
    }
}
