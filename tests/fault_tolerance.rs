//! Workspace-level fault-tolerance suite: the error taxonomy, validated
//! decode, resource budgets, and degraded sweeps, exercised through the
//! `reuselens` facade on real workload models.

use reuselens::cache::{
    evaluate_sweep, evaluate_sweep_degraded, try_report_from_analysis, Assoc, CacheConfig,
    ConfigError, MemoryHierarchy,
};
use reuselens::core::{
    analyze_program_degraded, analyze_program_parallel, capture_program, AnalysisBudget,
    AnalyzeOptions, CheckpointOptions, GrainError, SnapshotError,
};
use reuselens::metrics::{run_locality_analysis_checkpointed, run_locality_analysis_opts};
use reuselens::trace::fault::Corruptor;
use reuselens::trace::VecSink;
use reuselens::workloads::kernels::random_gather;
use reuselens::ReuseLensError;

fn measured_analysis() -> (reuselens::core::AnalysisResult, reuselens::ir::Program) {
    let w = random_gather(1 << 10, 1 << 12, 2, 7);
    let (analysis, _) =
        analyze_program_parallel(&w.program, &[128, 16 * 1024], w.index_arrays.clone()).unwrap();
    (analysis, w.program)
}

/// An invalid candidate hierarchy fails a sweep with a `Config` error
/// instead of panicking somewhere inside the model.
#[test]
fn invalid_hierarchy_is_a_config_error() {
    let (analysis, _) = measured_analysis();
    let mut bad = MemoryHierarchy::itanium2();
    bad.miss_penalty.pop();
    let err = evaluate_sweep(&analysis, &[bad]).unwrap_err();
    assert!(
        matches!(
            err,
            ReuseLensError::Config(ConfigError::PenaltyMismatch { .. })
        ),
        "unexpected: {err}"
    );
}

/// A hierarchy needing an unmeasured granularity reports which profile is
/// missing and for which candidate.
#[test]
fn missing_granularity_is_reported() {
    let (analysis, _) = measured_analysis(); // measured at 128 and 16 K only
    let mut odd = MemoryHierarchy::itanium2();
    odd.levels[0] = CacheConfig::new("L2", 256 * 1024, 64, Assoc::Ways(8));
    let err = evaluate_sweep(&analysis, &[odd]).unwrap_err();
    match &err {
        ReuseLensError::MissingProfile {
            hierarchy,
            granularity,
        } => {
            assert_eq!(hierarchy, "Itanium2");
            assert_eq!(*granularity, 64);
        }
        other => panic!("expected MissingProfile, got {other}"),
    }
    assert!(err.to_string().contains("no profile at granularity"));
}

/// A degraded sweep keeps every healthy candidate's report when some
/// candidates are malformed.
#[test]
fn degraded_sweep_keeps_healthy_candidates() {
    let (analysis, _) = measured_analysis();
    let good_a = MemoryHierarchy::itanium2();
    let mut bad = MemoryHierarchy::itanium2();
    bad.name = "broken".to_string();
    bad.levels.clear();
    let good_b = MemoryHierarchy::itanium2_scaled(4);

    let strict = evaluate_sweep(&analysis, &[good_a.clone(), bad.clone(), good_b.clone()]);
    assert!(strict.is_err());

    let outcome = evaluate_sweep_degraded(&analysis, &[good_a.clone(), bad, good_b.clone()]);
    assert!(!outcome.is_complete());
    assert_eq!(outcome.reports.len(), 2);
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].hierarchy, "broken");
    assert!(matches!(
        outcome.failures[0].error,
        ReuseLensError::Config(ConfigError::NoLevels { .. })
    ));
    // Reports keep request order and match direct scoring.
    assert_eq!(outcome.reports[0].hierarchy, good_a.name);
    assert_eq!(outcome.reports[1].hierarchy, good_b.name);
    let direct = try_report_from_analysis(&analysis, &good_b).unwrap();
    assert_eq!(outcome.reports[1], direct);
}

/// A budgeted degraded analysis of a real irregular workload: the tiny
/// budget trips with progress counters, the generous one completes.
#[test]
fn budgeted_analysis_on_real_workload() {
    let w = random_gather(1 << 10, 1 << 12, 2, 7);
    let tight = AnalyzeOptions {
        budget: AnalysisBudget::unlimited().with_max_distinct_blocks(8),
        ..AnalyzeOptions::default()
    };
    let (partial, _, _) =
        analyze_program_degraded(&w.program, &[128], w.index_arrays.clone(), &tight).unwrap();
    let failure = partial.failure_at(128).expect("tight budget must trip");
    match &failure.error {
        GrainError::Budget(e) => {
            assert!(e.progress.distinct_blocks > 8);
            assert!(e.progress.events > 0);
        }
        other => panic!("expected budget failure, got {other}"),
    }

    let generous = AnalyzeOptions {
        budget: AnalysisBudget::unlimited().with_max_events(u64::MAX),
        ..AnalyzeOptions::default()
    };
    let (partial, report, _) =
        analyze_program_degraded(&w.program, &[128], w.index_arrays.clone(), &generous).unwrap();
    assert!(partial.is_complete());
    assert_eq!(partial.profiles[0].total_accesses, report.accesses);
}

/// A captured real workload validates and replays identically through the
/// checked decoder; a corrupted copy of the same capture is rejected
/// without panicking.
#[test]
fn captured_workload_validates_and_corruption_is_rejected() {
    let w = random_gather(1 << 10, 1 << 12, 2, 7);
    let (buffer, report) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
    buffer.validate().unwrap();
    let mut fast = VecSink::new();
    buffer.replay(&mut fast);
    let mut checked = VecSink::new();
    buffer.try_replay(&mut checked).unwrap();
    assert_eq!(fast, checked);
    assert_eq!(report.accesses, buffer.accesses());

    let mut corruptor = Corruptor::new(0x5eed);
    for _ in 0..10 {
        let cut = corruptor.truncate(&buffer);
        assert!(cut.validate().is_err());
        // Bit flips may or may not decode; they must simply never panic.
        let flipped = corruptor.bit_flip(&buffer);
        let _ = flipped.try_replay(&mut VecSink::new());
    }
}

/// The crash-safe pipeline through the facade: a checkpointed analysis
/// of a real workload equals the plain pipeline, and after every
/// snapshot file in the directory is mutated (bit flips, truncation,
/// trailing garbage) a resume still equals it — corrupted snapshots are
/// fallback material, never fatal and never silently wrong.
#[test]
fn checkpointed_pipeline_survives_snapshot_corruption() {
    let w = random_gather(1 << 10, 1 << 12, 2, 7);
    let h = MemoryHierarchy::itanium2_scaled(16);
    let opts = AnalyzeOptions::default();
    let plain = run_locality_analysis_opts(&w.program, &h, w.index_arrays.clone(), &opts).unwrap();
    let dir = std::env::temp_dir().join(format!(
        "reuselens-fault-tolerance-ckpt-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let ckpt = CheckpointOptions {
        dir: dir.clone(),
        every: 1500,
        resume: false,
    };
    let first =
        run_locality_analysis_checkpointed(&w.program, &h, w.index_arrays.clone(), &opts, &ckpt)
            .unwrap();
    assert_eq!(plain.analysis.profiles, first.analysis.profiles);

    // Mutate every snapshot on disk, a different way each time.
    let mut corruptor = Corruptor::new(0x0bad_c0de);
    let mut mutated = 0usize;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().flatten().enumerate() {
        let bytes = std::fs::read(entry.path()).unwrap();
        let bad = match i % 3 {
            0 => corruptor.flip_bytes(&bytes, 2),
            1 => corruptor.truncate_bytes(&bytes),
            _ => corruptor.trailing_garbage(&bytes, 9),
        };
        std::fs::write(entry.path(), bad).unwrap();
        mutated += 1;
    }
    assert!(mutated > 0, "checkpointed run wrote no snapshots to corrupt");
    let ckpt = CheckpointOptions {
        dir: dir.clone(),
        every: 1500,
        resume: true,
    };
    let resumed =
        run_locality_analysis_checkpointed(&w.program, &h, w.index_arrays.clone(), &opts, &ckpt)
            .unwrap();
    assert_eq!(plain.analysis.profiles, resumed.analysis.profiles);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint *infrastructure* failure — a checkpoint directory path
/// occupied by a regular file — surfaces as a typed
/// `ReuseLensError::Snapshot`, not a panic or a silent fallback.
#[test]
fn unwritable_checkpoint_dir_is_a_snapshot_error() {
    let w = random_gather(1 << 8, 1 << 10, 2, 7);
    let h = MemoryHierarchy::itanium2_scaled(16);
    let path = std::env::temp_dir().join(format!(
        "reuselens-fault-tolerance-notadir-{}",
        std::process::id()
    ));
    std::fs::write(&path, b"occupied").unwrap();
    let ckpt = CheckpointOptions {
        dir: path.clone(),
        every: 100,
        resume: false,
    };
    let err = run_locality_analysis_checkpointed(
        &w.program,
        &h,
        w.index_arrays.clone(),
        &AnalyzeOptions::default(),
        &ckpt,
    )
    .unwrap_err();
    match &err {
        ReuseLensError::Snapshot(SnapshotError::Io { op, .. }) => {
            assert_eq!(*op, "create checkpoint directory");
        }
        other => panic!("expected Snapshot(Io), got {other}"),
    }
    assert!(err.to_string().contains("checkpoint failed"));
    std::fs::remove_file(&path).ok();
}

/// Every error in the taxonomy converts into `ReuseLensError` via `?`.
#[test]
fn error_taxonomy_composes_with_question_mark() {
    fn pipeline() -> Result<usize, ReuseLensError> {
        let w = random_gather(1 << 8, 1 << 10, 2, 7);
        let (analysis, _) =
            analyze_program_parallel(&w.program, &[128, 16 * 1024], w.index_arrays.clone())?;
        let (reports, _) = evaluate_sweep(&analysis, &[MemoryHierarchy::itanium2()])?;
        Ok(reports.len())
    }
    assert_eq!(pipeline().unwrap(), 1);
}
