//! The observability layer's central promise, proved end to end: turning
//! it on changes *nothing* about the analysis.
//!
//! The same Sweep3D and GTC pipelines run three ways — obs disabled, obs
//! enabled from the start, and obs installed mid-run between capture and
//! replay — and every profile and hierarchy report must come back
//! bit-identical. The recorder's counters must also reconcile against
//! ground truth the pipeline reports independently (buffer statistics,
//! grain counts, hierarchy counts), so the numbers the exporters print
//! are provably the numbers the pipeline produced.
//!
//! The recorder slot is process-global, so every test serializes on one
//! mutex (poison-tolerant: one failed test must not wedge the rest).

use reuselens::cache::{report_from_analysis, HierarchyReport, MemoryHierarchy};
use reuselens::core::{
    analyze_buffer, analyze_buffer_checkpointed, analyze_buffer_with, capture_program,
    AnalysisResult, AnalyzeOptions, CheckpointOptions, ReplayThreads, ReuseProfile,
    SamplingConfig,
};
use reuselens::metrics::run_locality_analysis;
use reuselens::obs::{
    self, http_get, Counter, EventLog, Gauge, GrainStatus, MetricsRecorder, MetricsSnapshot,
    ServiceConfig, Stage, TelemetryService, Timeline,
};
use reuselens::trace::BufferStats;
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens::workloads::BuiltWorkload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that touch the process-global recorder slot.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn workloads() -> Vec<BuiltWorkload> {
    vec![
        build_sweep(&SweepConfig::new(8)),
        build_gtc(&GtcConfig::new(256, 8)),
    ]
}

fn hierarchies() -> Vec<MemoryHierarchy> {
    vec![
        MemoryHierarchy::itanium2_scaled(16),
        MemoryHierarchy::itanium2_scaled(32),
    ]
}

/// Union of granularities the candidate hierarchies need.
fn grains(hierarchies: &[MemoryHierarchy]) -> Vec<u64> {
    let mut g: Vec<u64> = hierarchies
        .iter()
        .flat_map(MemoryHierarchy::required_granularities)
        .collect();
    g.sort_unstable();
    g.dedup();
    g
}

struct PipelineRun {
    profiles: Vec<ReuseProfile>,
    reports: Vec<HierarchyReport>,
    stats: BufferStats,
    exec_accesses: u64,
}

/// The capture-once / replay-many / sweep pipeline, as the CLI runs it.
fn run_pipeline(w: &BuiltWorkload, hs: &[MemoryHierarchy]) -> PipelineRun {
    let (buffer, exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
    buffer.validate().unwrap();
    let g = grains(hs);
    let (profiles, _timings) = analyze_buffer(&w.program, &buffer, &g).unwrap();
    let analysis = AnalysisResult {
        profiles,
        exec: exec.clone(),
    };
    let reports = hs
        .iter()
        .map(|h| report_from_analysis(&analysis, h))
        .collect();
    PipelineRun {
        profiles: analysis.profiles,
        reports,
        stats: buffer.stats(),
        exec_accesses: exec.accesses,
    }
}

/// Counter reconciliation for one instrumented full-pipeline run.
fn assert_reconciles(snap: &MetricsSnapshot, run: &PipelineRun, hs: usize, ngrains: u64) {
    assert_eq!(snap.counter(Counter::EventsCaptured), run.stats.events);
    assert_eq!(snap.counter(Counter::AccessesCaptured), run.stats.accesses);
    assert_eq!(snap.counter(Counter::AccessesCaptured), run.exec_accesses);
    assert_eq!(snap.counter(Counter::BytesEncoded), run.stats.encoded_bytes);
    // `validate` decodes for checking but does not count; the per-grain
    // replays each decode the full stream once.
    assert_eq!(
        snap.counter(Counter::EventsDecoded),
        ngrains * run.stats.events
    );
    assert_eq!(
        snap.counter(Counter::AccessesDecoded),
        ngrains * run.stats.accesses
    );
    assert_eq!(snap.counter(Counter::GrainsRequested), ngrains);
    assert_eq!(
        snap.counter(Counter::GrainsCompleted) + snap.counter(Counter::GrainsFailed),
        snap.counter(Counter::GrainsRequested)
    );
    assert_eq!(snap.counter(Counter::GrainsFailed), 0);
    assert_eq!(snap.counter(Counter::SweepConfigsScored), hs as u64);
    assert_eq!(snap.counter(Counter::SweepConfigsFailed), 0);
    let tracked: u64 = run.profiles.iter().map(|p| p.distinct_blocks).sum();
    assert_eq!(snap.counter(Counter::BlocksTracked), tracked);
    let reinserts: u64 = run
        .profiles
        .iter()
        .map(|p| p.total_accesses - p.total_cold())
        .sum();
    assert_eq!(snap.counter(Counter::TreeReinserts), reinserts);
    // Span structure: one capture, one validating decode, one replay span
    // per grain, one sweep span per hierarchy.
    assert_eq!(snap.stage(Stage::Capture).count, 1);
    assert_eq!(snap.stage(Stage::Decode).count, 1);
    assert_eq!(snap.stage(Stage::Replay).count, ngrains);
    assert_eq!(snap.stage(Stage::Sweep).count, hs as u64);
}

#[test]
fn enabling_obs_changes_nothing() {
    let _guard = lock();
    let hs = hierarchies();
    for w in workloads() {
        // Phase A: observability fully disabled (the default).
        obs::uninstall();
        let baseline = run_pipeline(&w, &hs);

        // Phase B: recorder installed before the pipeline starts.
        let recorder = Arc::new(MetricsRecorder::new());
        obs::install(recorder.clone());
        let observed = run_pipeline(&w, &hs);
        obs::uninstall();

        assert_eq!(
            baseline.profiles, observed.profiles,
            "{}: profiles must be bit-identical with obs enabled",
            w.program.name()
        );
        assert_eq!(
            baseline.reports, observed.reports,
            "{}: hierarchy reports must be bit-identical with obs enabled",
            w.program.name()
        );
        let ngrains = grains(&hs).len() as u64;
        assert_reconciles(&recorder.snapshot(), &observed, hs.len(), ngrains);
    }
}

#[test]
fn enabling_timeline_changes_nothing_and_reconciles_with_grain_profiles() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    let ngrains = g.len() as u64;
    for w in workloads() {
        // Phase A: neither recorder nor timeline installed.
        obs::uninstall();
        obs::uninstall_timeline();
        let baseline = run_pipeline(&w, &hs);

        // Phase B: recorder + timeline, the CLI's
        // `--metrics` + `--trace-timeline` shape.
        let recorder = Arc::new(MetricsRecorder::new());
        let timeline = Arc::new(Timeline::new());
        obs::install(recorder.clone());
        obs::install_timeline(timeline.clone());
        let observed = run_pipeline(&w, &hs);
        obs::uninstall_timeline();
        obs::uninstall();

        assert_eq!(
            baseline.profiles, observed.profiles,
            "{}: profiles must be bit-identical with the timeline enabled",
            w.program.name()
        );
        assert_eq!(
            baseline.reports, observed.reports,
            "{}: hierarchy reports must be bit-identical with the timeline enabled",
            w.program.name()
        );
        let snap = recorder.snapshot();
        assert_reconciles(&snap, &observed, hs.len(), ngrains);

        // The timeline must tell the same story as the recorder: one
        // replay event per grain, each carrying exactly the numbers the
        // matching `GrainProfile` row and the lifecycle counters report.
        let tsnap = timeline.snapshot();
        assert_eq!(tsnap.dropped, 0, "default geometry never drops here");
        let replays: Vec<_> = tsnap.stage_events(Stage::Replay).collect();
        assert_eq!(replays.len() as u64, ngrains);
        assert_eq!(replays.len() as u64, snap.counter(Counter::GrainsCompleted));
        assert_eq!(snap.grains.len() as u64, ngrains);

        let mut timeline_grains: Vec<u64> =
            replays.iter().map(|e| e.args.grain.expect("replay spans carry their grain")).collect();
        timeline_grains.sort_unstable();
        assert_eq!(timeline_grains, g, "one replay event per requested grain");

        for event in &replays {
            let grain = event.args.grain.unwrap();
            let profile = snap
                .grains
                .iter()
                .find(|p| p.block_size == grain)
                .expect("every timeline replay has a GrainProfile row");
            assert_eq!(profile.status, GrainStatus::Completed);
            assert_eq!(event.args.events, Some(profile.events));
            assert_eq!(event.args.distinct_blocks, Some(profile.distinct_blocks));
            assert_eq!(event.args.tree_nodes, Some(profile.tree_nodes));
            // Both agree with the pipeline's own ground truth.
            assert_eq!(profile.events, observed.stats.events);
            let reuse = observed
                .profiles
                .iter()
                .find(|p| p.block_size == grain)
                .expect("analysis produced this grain");
            assert_eq!(profile.distinct_blocks, reuse.distinct_blocks);
        }
        // Per-grain event counts sum to the decode lifecycle counter:
        // every grain replays the full captured stream exactly once.
        let replayed: u64 = replays.iter().filter_map(|e| e.args.events).sum();
        assert_eq!(replayed, snap.counter(Counter::EventsDecoded));
        assert_eq!(replayed, ngrains * observed.stats.events);
    }
}

#[test]
fn installing_obs_mid_run_changes_nothing() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    for w in workloads() {
        obs::uninstall();
        let baseline = run_pipeline(&w, &hs);

        // Capture runs dark; the recorder arrives between capture and
        // replay — the supported "attach to a long-running job" path.
        let (buffer, exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
        let recorder = Arc::new(MetricsRecorder::new());
        obs::install(recorder.clone());
        let (profiles, _timings) = analyze_buffer(&w.program, &buffer, &g).unwrap();
        obs::uninstall();

        let analysis = AnalysisResult { profiles, exec };
        let reports: Vec<HierarchyReport> = hs
            .iter()
            .map(|h| report_from_analysis(&analysis, h))
            .collect();
        assert_eq!(
            baseline.profiles, analysis.profiles,
            "{}: profiles must be bit-identical after a mid-run install",
            w.program.name()
        );
        assert_eq!(baseline.reports, reports);

        // Nothing before the install is counted; everything after is.
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::EventsCaptured), 0);
        assert_eq!(snap.stage(Stage::Capture).count, 0);
        assert_eq!(
            snap.counter(Counter::EventsDecoded),
            g.len() as u64 * buffer.stats().events
        );
        assert_eq!(snap.counter(Counter::GrainsCompleted), g.len() as u64);
    }
}

/// Sampled replays must tell the same reconciled story the exact ones
/// do, just through the sampling counters: the recorder's totals, the
/// gauge, and the per-grain rows all match the books the profiles
/// themselves carry.
#[test]
fn sampled_run_reconciles_counters_and_grain_profiles() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    for w in workloads() {
        obs::uninstall();
        let (buffer, _exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();

        let recorder = Arc::new(MetricsRecorder::new());
        obs::install(recorder.clone());
        let opts = AnalyzeOptions {
            sampling: SamplingConfig::fixed(0.1),
            ..AnalyzeOptions::default()
        };
        let (profiles, _timings) = analyze_buffer_with(&w.program, &buffer, &g, &opts)
            .into_strict()
            .unwrap();
        obs::uninstall();
        let snap = recorder.snapshot();

        // Every profile is annotated, and the recorder's sampling
        // counters are exactly the sums of the profiles' own books.
        let infos: Vec<_> = profiles
            .iter()
            .map(|p| p.sampling.expect("fixed-rate run annotates every grain"))
            .collect();
        assert_eq!(
            snap.counter(Counter::BlocksSampled),
            infos.iter().map(|i| i.blocks_sampled).sum::<u64>()
        );
        assert_eq!(
            snap.counter(Counter::BlocksEvicted),
            infos.iter().map(|i| i.blocks_evicted).sum::<u64>()
        );
        assert_eq!(
            snap.counter(Counter::SampleRateDrops),
            infos.iter().map(|i| i.rate_drops).sum::<u64>()
        );
        // Sampled grains never touch the exact-mode counters.
        assert_eq!(snap.counter(Counter::BlocksTracked), 0);
        assert_eq!(snap.counter(Counter::TreeReinserts), 0);
        // Fixed rate 1/10 never drops, so whichever grain finished last
        // set the gauge to the same value.
        assert_eq!(snap.gauge(Gauge::SamplingInvRate), 10);
        assert_eq!(snap.counter(Counter::GrainsCompleted), g.len() as u64);

        // Each GrainProfile row repeats its profile's sampling books.
        assert_eq!(snap.grains.len(), g.len());
        for profile in &profiles {
            let info = profile.sampling.unwrap();
            let row = snap
                .grains
                .iter()
                .find(|r| r.block_size == profile.block_size)
                .expect("every grain has a row");
            assert_eq!(row.status, GrainStatus::Completed);
            assert_eq!(row.sample_inv, info.inv);
            assert_eq!(row.blocks_sampled, info.blocks_sampled);
            assert_eq!(row.blocks_evicted, info.blocks_evicted);
            assert_eq!(row.distinct_blocks, profile.distinct_blocks);
        }
    }
}

/// `SamplingConfig::exact()` through the sampled entry point is the
/// pre-sampling pipeline: identical profiles (with no sampling
/// annotation) and identical hierarchy reports on both workloads.
#[test]
fn exact_sampling_config_is_bit_identical_to_default_path() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    for w in workloads() {
        obs::uninstall();
        let baseline = run_pipeline(&w, &hs);

        let (buffer, exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
        let opts = AnalyzeOptions {
            sampling: SamplingConfig::exact(),
            ..AnalyzeOptions::default()
        };
        let (profiles, _timings) = analyze_buffer_with(&w.program, &buffer, &g, &opts)
            .into_strict()
            .unwrap();
        assert!(
            profiles.iter().all(|p| p.sampling.is_none()),
            "exact config must leave profiles unannotated"
        );
        let analysis = AnalysisResult { profiles, exec };
        let reports: Vec<HierarchyReport> = hs
            .iter()
            .map(|h| report_from_analysis(&analysis, h))
            .collect();
        assert_eq!(
            baseline.profiles, analysis.profiles,
            "{}: exact sampling config must be bit-identical to the default path",
            w.program.name()
        );
        assert_eq!(baseline.reports, reports);
    }
}

/// Time-partitioned single-grain replay is the same analysis three ways:
/// bit-identical to the serial pipeline with obs dark, still
/// bit-identical with the recorder and timeline lit, and the new
/// partition spans and counters reconcile against ground truth — one
/// worker span per (grain, partition), per-partition decode totals
/// summing to exactly the serial decode totals.
#[test]
fn partitioned_replay_is_bit_identical_and_reconciles() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    let ngrains = g.len() as u64;
    let parts = 3u64;
    for w in workloads() {
        obs::uninstall();
        obs::uninstall_timeline();
        let baseline = run_pipeline(&w, &hs);

        let (buffer, _exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
        let opts = AnalyzeOptions {
            replay_threads: ReplayThreads::Fixed(parts as usize),
            ..AnalyzeOptions::default()
        };

        // Phase A: partitioned replay with observability dark.
        let (dark, _timings) = analyze_buffer_with(&w.program, &buffer, &g, &opts)
            .into_strict()
            .unwrap();
        assert_eq!(
            baseline.profiles, dark,
            "{}: partitioned replay must be bit-identical to serial with obs off",
            w.program.name()
        );

        // Phase B: same partitioned replay, recorder + timeline lit.
        let recorder = Arc::new(MetricsRecorder::new());
        let timeline = Arc::new(Timeline::new());
        obs::install(recorder.clone());
        obs::install_timeline(timeline.clone());
        let (lit, _timings) = analyze_buffer_with(&w.program, &buffer, &g, &opts)
            .into_strict()
            .unwrap();
        obs::uninstall_timeline();
        obs::uninstall();
        assert_eq!(
            baseline.profiles, lit,
            "{}: partitioned replay must be bit-identical to serial with obs on",
            w.program.name()
        );

        let snap = recorder.snapshot();
        // Still one replay span per grain; each nests `parts` worker
        // spans, and the spawn counter agrees with the span count.
        assert_eq!(snap.stage(Stage::Replay).count, ngrains);
        assert_eq!(snap.stage(Stage::Partition).count, ngrains * parts);
        assert_eq!(snap.counter(Counter::PartitionsSpawned), ngrains * parts);
        // Partitions decode disjoint segments whose event counts sum to
        // exactly what a serial replay of each grain decodes.
        let stats = buffer.stats();
        assert_eq!(snap.counter(Counter::EventsDecoded), ngrains * stats.events);
        assert_eq!(
            snap.counter(Counter::AccessesDecoded),
            ngrains * stats.accesses
        );
        assert_eq!(snap.counter(Counter::GrainsCompleted), ngrains);
        assert_eq!(snap.counter(Counter::GrainsFailed), 0);
        // These workloads revisit blocks across partition boundaries, so
        // the stitch pass must have resolved cross-partition reuses.
        assert!(
            snap.counter(Counter::PartitionStitch) > 0,
            "{}: expected cross-partition reuses to stitch",
            w.program.name()
        );

        // The timeline tells the same story: one event per worker span,
        // each carrying its segment's event count, summing per grain to
        // the full captured stream.
        let tsnap = timeline.snapshot();
        let workers: Vec<_> = tsnap.stage_events(Stage::Partition).collect();
        assert_eq!(workers.len() as u64, ngrains * parts);
        let decoded: u64 = workers.iter().filter_map(|e| e.args.events).sum();
        assert_eq!(decoded, ngrains * stats.events);
        for event in &workers {
            assert!(
                event.args.grain.is_some(),
                "partition spans must carry their grain"
            );
        }
    }
}

/// Parses one counter value out of a Prometheus text page (0 when the
/// series is absent — scrapes early in a run may predate first use).
fn prom_value(body: &str, series: &str) -> u64 {
    body.lines()
        .find(|l| {
            l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' ')
        })
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The live telemetry service's identity contract, proved the way the
/// tentpole demands: the full pipeline runs with the aggregator ticking
/// and a scraper hammering `/metrics` + `/healthz` over real sockets the
/// whole time, and (a) every profile and report is bit-identical to the
/// dark run, (b) every mid-run scrape is monotone and bounded by the
/// final totals, and (c) once the pipeline quiesces, a scrape equals the
/// exit exporter's page byte for byte.
#[test]
fn service_enabled_run_is_bit_identical_and_scrapes_reconcile() {
    let _guard = lock();
    let hs = hierarchies();
    let ngrains = grains(&hs).len() as u64;
    for w in workloads() {
        obs::uninstall();
        let baseline = run_pipeline(&w, &hs);

        let recorder = Arc::new(MetricsRecorder::new());
        obs::install(recorder.clone());
        let mut service = TelemetryService::start(
            recorder.clone(),
            None,
            ServiceConfig {
                tick: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
        );
        let addr = service.serve("127.0.0.1:0").expect("bind ephemeral port");

        let stop = Arc::new(AtomicBool::new(false));
        let (observed, scraped) = std::thread::scope(|s| {
            let scrape_stop = stop.clone();
            let scraper = s.spawn(move || {
                let mut pages = Vec::new();
                while !scrape_stop.load(Ordering::Relaxed) {
                    let (status, page) = http_get(addr, "/metrics").expect("mid-run scrape");
                    assert_eq!(status, 200);
                    pages.push(page);
                    let (status, health) = http_get(addr, "/healthz").expect("mid-run health");
                    assert_eq!(status, 200);
                    assert!(health.starts_with("{\"status\":\"ok\""), "health: {health}");
                }
                pages
            });
            let observed = run_pipeline(&w, &hs);
            stop.store(true, Ordering::Relaxed);
            (observed, scraper.join().expect("scraper thread"))
        });
        obs::uninstall();

        assert_eq!(
            baseline.profiles, observed.profiles,
            "{}: profiles must be bit-identical with the live service scraping",
            w.program.name()
        );
        assert_eq!(
            baseline.reports, observed.reports,
            "{}: reports must be bit-identical with the live service scraping",
            w.program.name()
        );
        assert_reconciles(&recorder.snapshot(), &observed, hs.len(), ngrains);

        // Mid-run scrapes never tear: each counter observation is
        // monotone across scrapes and bounded by the final total.
        let final_page = recorder.snapshot().to_prometheus();
        assert!(!scraped.is_empty(), "scraper never got a page in");
        for series in [
            "reuselens_events_decoded_total",
            "reuselens_grains_completed_total",
            "reuselens_events_captured_total",
        ] {
            let final_value = prom_value(&final_page, series);
            let mut last = 0u64;
            for page in &scraped {
                let seen = prom_value(page, series);
                assert!(seen >= last, "{series} regressed mid-run: {seen} < {last}");
                assert!(seen <= final_value, "{series} overshot: {seen} > {final_value}");
                last = seen;
            }
        }

        // Quiesced, the live endpoint and the exit exporter are the same
        // bytes: what a dashboard saw last is what the run wrote down.
        let (status, page) = http_get(addr, "/metrics").expect("post-quiescence scrape");
        assert_eq!(status, 200);
        assert_eq!(
            page, final_page,
            "{}: a post-run scrape must equal the exporter page byte for byte",
            w.program.name()
        );
        service.shutdown();
    }
}

/// The JSONL event log tells the same story the counters do: one
/// `grain_started` and one `grain_completed` per grain on the plain
/// path, checkpoint write events matching the checkpoint counter on the
/// checkpointed path, and results bit-identical throughout.
#[test]
fn jsonl_event_log_reconciles_with_counters() {
    let _guard = lock();
    let hs = hierarchies();
    let g = grains(&hs);
    let ngrains = g.len() as u64;
    for w in workloads() {
        obs::uninstall();
        obs::uninstall_events();
        let baseline = run_pipeline(&w, &hs);

        let recorder = Arc::new(MetricsRecorder::new());
        let log = Arc::new(EventLog::to_vec());
        obs::install(recorder.clone());
        obs::install_events(log.clone());
        let observed = run_pipeline(&w, &hs);
        obs::uninstall_events();
        obs::uninstall();

        assert_eq!(
            baseline.profiles, observed.profiles,
            "{}: profiles must be bit-identical with the event log installed",
            w.program.name()
        );
        let captured = log.captured();
        let count = |event: &str| {
            captured
                .lines()
                .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
                .count() as u64
        };
        let snap = recorder.snapshot();
        assert_eq!(count("grain_started"), ngrains);
        assert_eq!(count("grain_completed"), snap.counter(Counter::GrainsCompleted));
        assert_eq!(count("grain_failed"), 0);
        assert_eq!(log.emitted(), captured.lines().count() as u64);
        for line in captured.lines() {
            assert!(line.starts_with("{\"t_mono_ns\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }

        // Checkpointed path: every snapshot write is logged, and the
        // profiles still match the plain run bit for bit.
        let dir = std::env::temp_dir().join(format!(
            "reuselens-obs-identity-{}-{}",
            std::process::id(),
            w.program.name().replace(|c: char| !c.is_alphanumeric(), "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (buffer, _exec) = capture_program(&w.program, w.index_arrays.clone()).unwrap();
        let every = (buffer.stats().events / 4).max(1);
        let recorder = Arc::new(MetricsRecorder::new());
        let log = Arc::new(EventLog::to_vec());
        obs::install(recorder.clone());
        obs::install_events(log.clone());
        let ckpt = CheckpointOptions {
            dir: dir.clone(),
            every,
            resume: false,
        };
        let (profiles, _timings) = analyze_buffer_checkpointed(
            &w.program,
            &buffer,
            &g,
            &AnalyzeOptions::default(),
            &ckpt,
        )
        .unwrap()
        .into_strict()
        .unwrap();
        obs::uninstall_events();
        obs::uninstall();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(
            baseline.profiles, profiles,
            "{}: checkpointed profiles must stay bit-identical with events on",
            w.program.name()
        );
        let captured = log.captured();
        let count = |event: &str| {
            captured
                .lines()
                .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
                .count() as u64
        };
        let snap = recorder.snapshot();
        assert!(
            snap.counter(Counter::CheckpointsWritten) > 0,
            "{}: interval {every} must force interior checkpoints",
            w.program.name()
        );
        assert_eq!(
            count("checkpoint_written"),
            snap.counter(Counter::CheckpointsWritten)
        );
        assert_eq!(count("grain_started"), ngrains);
        assert_eq!(count("grain_completed"), ngrains);
    }
}

#[test]
fn locality_analysis_counts_reports() {
    let _guard = lock();
    let w = build_sweep(&SweepConfig::new(8));
    let h = MemoryHierarchy::itanium2_scaled(16);

    obs::uninstall();
    let baseline = run_locality_analysis(&w.program, &h, w.index_arrays.clone()).unwrap();

    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let observed = run_locality_analysis(&w.program, &h, w.index_arrays.clone()).unwrap();
    obs::uninstall();

    assert_eq!(baseline.report, observed.report);
    assert_eq!(
        baseline.analysis.profiles, observed.analysis.profiles,
        "locality analysis must be bit-identical with obs enabled"
    );
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(Counter::ReportsGenerated), 1);
    assert_eq!(snap.stage(Stage::Report).count, 1);
    assert_eq!(snap.stage(Stage::Capture).count, 1);
    assert_eq!(snap.counter(Counter::SweepConfigsScored), 1);
}
