//! Report-writer integration: the XML database and the text tables must
//! survive a real multi-routine workload.

use reuselens::cache::MemoryHierarchy;
use reuselens::metrics::{
    format_array_breakdown, format_carried_misses, format_fragmentation, format_pattern_db,
    format_summary, run_locality_analysis, to_xml,
};
use reuselens::workloads::gtc::{build, GtcConfig};

fn analysis() -> (reuselens::ir::Program, reuselens::metrics::LocalityAnalysis) {
    let w = build(&GtcConfig::new(256, 8));
    let la = run_locality_analysis(
        &w.program,
        &MemoryHierarchy::itanium2_scaled(16),
        w.index_arrays.clone(),
    )
    .unwrap();
    (w.program, la)
}

#[test]
fn xml_database_is_balanced_and_complete() {
    let (prog, la) = analysis();
    let xml = to_xml(&prog, &la);
    assert!(xml.starts_with("<?xml version=\"1.0\"?>"));
    assert!(xml.ends_with("</LocalityDatabase>\n"));
    // Every routine appears.
    for rtn in prog.routines() {
        assert!(
            xml.contains(&format!("name=\"{}\"", rtn.name())),
            "routine {} missing from XML",
            rtn.name()
        );
    }
    // Every array appears in the array table.
    for a in prog.arrays() {
        assert!(xml.contains(&format!("<Array name=\"{}\"", a.name())));
    }
    // Scope tags balance.
    for tag in ["ProgramScope", "RoutineScope", "LoopScope"] {
        let opens = xml.matches(&format!("<{tag}")).count();
        let self_closed = xml
            .lines()
            .filter(|l| {
                l.trim_start().starts_with(&format!("<{tag}")) && l.trim_end().ends_with("/>")
            })
            .count();
        let closes = xml.matches(&format!("</{tag}>")).count();
        assert_eq!(opens, self_closed + closes, "unbalanced {tag}");
    }
    // Metric table lists 3 metrics per level (L2, L3, TLB).
    assert_eq!(xml.matches("<Metric id=").count(), 9);
}

#[test]
fn text_tables_mention_the_principal_entities() {
    let (prog, la) = analysis();
    let levels = la.all_levels();
    let carried = format_carried_misses(&prog, &levels, 0.02);
    assert!(carried.contains("pushi"));
    let frag = format_fragmentation(&prog, la.level("L3").unwrap(), 5);
    assert!(frag.contains("zion"));
    let db = format_pattern_db(&prog, la.level("L2").unwrap(), 20);
    assert!(db.contains("zion") || db.contains("workp"));
    let breakdown = format_array_breakdown(
        &prog,
        la.level("L2").unwrap(),
        prog.array_by_name("zion").unwrap(),
    );
    assert!(breakdown.contains("zion"));
    let summary = format_summary(&la);
    assert!(summary.contains("L2") && summary.contains("L3") && summary.contains("TLB"));
    assert!(summary.contains("cycles"));
}

#[test]
fn totals_are_consistent_across_views() {
    let (_prog, la) = analysis();
    for m in la.all_levels() {
        // by-array totals == total misses
        let sum: f64 = m.by_array.iter().sum();
        assert!(
            (sum - m.total_misses).abs() < 1e-6 * m.total_misses.max(1.0),
            "{}: per-array sum {sum} != total {}",
            m.level,
            m.total_misses
        );
        // carried misses never exceed non-cold misses
        let carried: f64 = m.carried.iter().sum();
        assert!(carried <= m.total_misses - m.cold_misses as f64 + 1e-6);
        // root-inclusive == total
        let root_inclusive = m.inclusive[0];
        assert!((root_inclusive - m.total_misses).abs() < 1e-6 * m.total_misses.max(1.0));
    }
}
