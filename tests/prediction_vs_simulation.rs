//! End-to-end validation: reuse-distance *predictions* must agree with a
//! true LRU cache *simulation* of the same execution — the reproduction's
//! stand-in for the paper's hardware-counter validation.
//!
//! Two levels of strictness:
//!
//! * **Fully associative** caches: the threshold rule (`miss iff distance >=
//!   blocks`) is exact up to histogram binning, so prediction and
//!   simulation must agree within a few percent on every workload.
//! * **Set-associative** caches: the paper's probabilistic (binomial)
//!   model assumes random set placement. Regular sweeps place lines
//!   uniformly, so near capacity the model can over-predict; we assert a
//!   2x band, plus exact agreement on the fully associative TLB.

use reuselens::cache::{
    evaluate_program, Assoc, CacheConfig, HierarchySim, MemoryHierarchy,
};
use reuselens::trace::Executor;
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::kernels::{random_gather, stencil2d, streaming};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens::workloads::BuiltWorkload;

/// The same hierarchy with every cache level made fully associative.
fn fully_associative(h: &MemoryHierarchy) -> MemoryHierarchy {
    let mut fa = h.clone();
    fa.levels = h
        .levels
        .iter()
        .map(|l| CacheConfig::new(&l.name, l.capacity, l.line_size, Assoc::Full))
        .collect();
    fa
}

fn simulate(w: &BuiltWorkload, h: &MemoryHierarchy) -> HierarchySim {
    let mut sim = HierarchySim::new(h, w.program.references().len());
    let mut exec = Executor::new(&w.program);
    for (a, d) in &w.index_arrays {
        exec.set_index_array(*a, d.clone());
    }
    exec.run(&mut sim).expect("simulation runs");
    sim
}

fn check(w: &BuiltWorkload, h: &MemoryHierarchy, name: &str) {
    // Exact check: fully associative levels.
    let fa = fully_associative(h);
    let (report, _) =
        evaluate_program(&w.program, &fa, w.index_arrays.clone()).expect("prediction runs");
    let sim = simulate(w, &fa);
    for level in &fa.levels {
        let predicted = report.misses_at(&level.name).unwrap();
        let simulated = sim.misses_at(&level.name).unwrap() as f64;
        let err = (predicted - simulated).abs() / simulated.max(1.0);
        assert!(
            err <= 0.05,
            "{name} FA-{}: predicted {predicted:.0} vs simulated {simulated:.0} ({:.1}% off)",
            level.name,
            100.0 * err
        );
    }
    let predicted = report.misses_at("TLB").unwrap();
    let simulated = sim.misses_at("TLB").unwrap() as f64;
    assert!(
        (predicted - simulated).abs() / simulated.max(1.0) <= 0.05,
        "{name} TLB: predicted {predicted:.0} vs simulated {simulated:.0}"
    );

    // Banded check: the probabilistic set-associative model.
    let (report, _) =
        evaluate_program(&w.program, h, w.index_arrays.clone()).expect("prediction runs");
    let sim = simulate(w, h);
    for level in &h.levels {
        let predicted = report.misses_at(&level.name).unwrap();
        let simulated = sim.misses_at(&level.name).unwrap() as f64;
        assert!(
            predicted <= simulated * 2.0 + 16.0 && predicted >= simulated * 0.5 - 16.0,
            "{name} {}: predicted {predicted:.0} outside 2x band of simulated {simulated:.0}",
            level.name
        );
    }
}

#[test]
fn streaming_prediction_matches_simulation() {
    // Footprint 4x the L2 so no level sits on a capacity knife edge.
    check(&streaming(1 << 17, 4), &MemoryHierarchy::itanium2(), "streaming");
}

#[test]
fn stencil_prediction_matches_simulation() {
    check(
        &stencil2d(96, 3),
        &MemoryHierarchy::itanium2_scaled(8),
        "stencil2d",
    );
}

#[test]
fn gather_prediction_matches_simulation() {
    // Random footprints below capacity: the binomial model samples set
    // placement with replacement, so it over-predicts somewhat. Use a
    // footprint well past capacity, where both agree that reuses miss.
    check(
        &random_gather(1 << 16, 1 << 14, 3, 11),
        &MemoryHierarchy::itanium2_scaled(8),
        "random_gather",
    );
}

#[test]
fn sweep3d_prediction_matches_simulation() {
    check(
        &build_sweep(&SweepConfig::new(10)),
        &MemoryHierarchy::itanium2_scaled(16),
        "sweep3d",
    );
}

#[test]
fn gtc_prediction_matches_simulation() {
    // The original smooth nest strides by a power of two (16 KB), mapping
    // whole walks into a single set — a deterministic conflict pathology
    // that no distance-based set-associative model (the paper's included)
    // can see. The smooth-interchanged variant removes the pathological
    // stride; the remaining phases exercise every other access pattern.
    let cfg = GtcConfig::new(256, 8).with_transforms(
        reuselens::workloads::gtc::GtcTransforms {
            smooth_interchange: true,
            ..Default::default()
        },
    );
    check(
        &build_gtc(&cfg),
        &MemoryHierarchy::itanium2_scaled(16),
        "gtc",
    );
}

/// The pathology itself, demonstrated: with the original power-of-two
/// smooth stride, true LRU simulation shows *more* misses than the
/// probabilistic model predicts (deterministic set conflicts).
#[test]
fn gtc_smooth_conflicts_exceed_probabilistic_model() {
    let w = build_gtc(&GtcConfig::new(256, 8));
    let h = MemoryHierarchy::itanium2_scaled(16);
    let (report, _) =
        evaluate_program(&w.program, &h, w.index_arrays.clone()).expect("runs");
    let sim = simulate(&w, &h);
    let predicted = report.misses_at("L2").unwrap();
    let simulated = sim.misses_at("L2").unwrap() as f64;
    assert!(
        simulated > predicted,
        "expected conflict misses beyond the model: sim {simulated} vs pred {predicted}"
    );
}
