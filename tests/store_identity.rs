//! Stored-trace replay must be **bit-identical** to direct in-memory
//! replay — the acceptance contract for the trace store (DESIGN §4.15).
//!
//! For Sweep3D and GTC the suite captures once, round-trips the buffer
//! through an on-disk [`TraceStore`] (including a fresh re-open so the
//! bytes really come from disk), and replays both copies across the
//! grain set {1, 64, 4096}, every sampling mode, and serial /
//! fixed / auto replay-thread settings. Identity is checked at two
//! levels: the exported trace image byte-for-byte, and the canonical
//! serialized profile bytes (the same bytes `reuselens serve` CRCs into
//! every replay response).

use reuselens::core::{
    analyze_buffer_with, capture_program, write_profiles, AnalyzeOptions, ReplayThreads,
    SamplingConfig, SavedProfiles,
};
use reuselens::store::TraceStore;
use reuselens::trace::TraceBuffer;
use reuselens::workloads::gtc::{build as build_gtc, GtcConfig};
use reuselens::workloads::sweep3d::{build as build_sweep, SweepConfig};
use reuselens::workloads::BuiltWorkload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const GRAINS: [u64; 3] = [1, 64, 4096];

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reuselens-identity-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical profile serialization — what `--save-profile` writes
/// and what the daemon's `profiles_crc` is computed over.
fn profile_bytes(name: &str, profiles: &[reuselens::core::ReuseProfile]) -> Vec<u8> {
    let saved = SavedProfiles {
        name: name.to_string(),
        size: 0.0,
        profiles: profiles.to_vec(),
    };
    let mut bytes = Vec::new();
    write_profiles(&saved, &mut bytes).expect("serialize profiles");
    bytes
}

/// Captures `w`, stores the trace, re-opens the store, and returns both
/// the in-memory buffer and the from-disk restoration.
fn capture_and_roundtrip(w: &BuiltWorkload, tag: &str) -> (TraceBuffer, TraceBuffer) {
    let (buffer, _report) =
        capture_program(&w.program, w.index_arrays.clone()).expect("capture");
    let dir = tmpdir(tag);
    {
        let mut store = TraceStore::open(&dir).expect("open store");
        store
            .put(
                "t0",
                &buffer,
                reuselens::store::TraceMeta {
                    workload: w.program.name().to_string(),
                    grains: GRAINS.to_vec(),
                },
            )
            .expect("put trace");
    }
    // Fresh open: everything below must come from the on-disk bytes.
    let store = TraceStore::open(&dir).expect("re-open store");
    let restored = store.get("t0").expect("read trace back");
    let _ = std::fs::remove_dir_all(&dir);
    (buffer, restored)
}

fn assert_identical_everywhere(w: &BuiltWorkload, tag: &str) {
    let (direct, stored) = capture_and_roundtrip(w, tag);
    assert_eq!(
        direct.export(),
        stored.export(),
        "{tag}: restored trace image differs from the captured one"
    );
    let modes = [
        SamplingConfig::exact(),
        SamplingConfig::fixed(0.25),
        SamplingConfig::adaptive(4096),
    ];
    let threads = [
        ReplayThreads::Serial,
        ReplayThreads::Fixed(2),
        ReplayThreads::Fixed(3),
        ReplayThreads::Auto,
    ];
    for sampling in modes {
        for replay_threads in threads {
            let opts = AnalyzeOptions {
                sampling,
                replay_threads,
                ..AnalyzeOptions::default()
            };
            let a = analyze_buffer_with(&w.program, &direct, &GRAINS, &opts);
            let b = analyze_buffer_with(&w.program, &stored, &GRAINS, &opts);
            assert!(
                a.failures.is_empty() && b.failures.is_empty(),
                "{tag}: unexpected grain failures under {sampling:?}/{replay_threads:?}"
            );
            assert_eq!(
                profile_bytes(tag, &a.profiles),
                profile_bytes(tag, &b.profiles),
                "{tag}: stored-trace profiles diverge from in-memory replay \
                 under {sampling:?}/{replay_threads:?}"
            );
        }
    }
}

#[test]
fn sweep3d_stored_replay_is_bit_identical() {
    let w = build_sweep(&SweepConfig::new(6));
    assert_identical_everywhere(&w, "sweep3d");
}

#[test]
fn gtc_stored_replay_is_bit_identical() {
    let w = build_gtc(&GtcConfig::new(128, 4));
    assert_identical_everywhere(&w, "gtc");
}

/// The daemon's `replay` job must report the same profile CRC whether
/// the store was freshly written or re-opened by a second daemon —
/// the end-to-end version of the library-level identity above.
#[test]
fn daemon_replay_crc_is_stable_across_reopen() {
    use reuselens::serve::{Daemon, DaemonConfig};

    let dir = tmpdir("daemon");
    let capture = br#"{"kind":"capture","id":"s1","workload":"sweep3d","mesh":6}"#;
    let replay = br#"{"kind":"replay","id":"s1","grains":[1,64,4096]}"#;

    let mut config = DaemonConfig::new(&dir);
    config.workers = 1;
    let daemon = Daemon::start(config).expect("start daemon");
    let r1 = daemon.submit_line(capture).recv().expect("capture response");
    assert!(r1.contains("\"ok\":true"), "{r1}");
    let r2 = daemon.submit_line(replay).recv().expect("replay response");
    daemon.shutdown();

    // A second daemon over the same directory reads the index and
    // segments cold from disk.
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("restart daemon");
    let r3 = daemon.submit_line(replay).recv().expect("replay response");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let crc = |resp: &str| -> String {
        let at = resp
            .find("\"profiles_crc\":")
            .unwrap_or_else(|| panic!("no profiles_crc in {resp}"));
        resp[at..].chars().take_while(|c| *c != ',').collect()
    };
    assert_eq!(crc(&r2), crc(&r3), "replay CRC changed across daemon restart");
}
