//! hpcviewer-style XML export of the scope tree with metrics.
//!
//! The paper exports all metrics "in XML format" for exploration in
//! hpcviewer. This writer produces a self-contained document: a metric
//! table, the static scope tree with exclusive/inclusive/carried values per
//! level, and the per-array section (total, fragmentation, irregular
//! misses).

use crate::report::LocalityAnalysis;
use reuselens_ir::{Program, ScopeId, ScopeKind};
use std::fmt::Write as _;

/// Serializes a complete analysis to XML.
pub fn to_xml(program: &Program, la: &LocalityAnalysis) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\"?>\n");
    let _ = writeln!(
        out,
        "<LocalityDatabase program={} hierarchy={}>",
        attr(program.name()),
        attr(&la.report.hierarchy)
    );

    // Metric table: 3 metrics per level.
    out.push_str("  <MetricTable>\n");
    let mut id = 0;
    for m in la.all_levels() {
        for kind in ["exclusive", "inclusive", "carried"] {
            let _ = writeln!(
                out,
                "    <Metric id=\"{id}\" name={} />",
                attr(&format!("{} {kind} misses", m.level))
            );
            id += 1;
        }
    }
    out.push_str("  </MetricTable>\n");

    // Scope tree.
    write_scope(program, la, ScopeId::ROOT, 1, &mut out);

    // Arrays.
    out.push_str("  <ArrayTable>\n");
    for (i, arr) in program.arrays().iter().enumerate() {
        let _ = write!(out, "    <Array name={}", attr(arr.name()));
        for m in la.all_levels() {
            let _ = write!(
                out,
                " {}=\"{:.0}\" {}Frag=\"{:.0}\" {}Irregular=\"{:.0}\"",
                m.level.to_lowercase(),
                m.by_array[i],
                m.level.to_lowercase(),
                m.frag_by_array[i],
                m.level.to_lowercase(),
                m.irregular_by_array[i],
            );
        }
        out.push_str(" />\n");
    }
    out.push_str("  </ArrayTable>\n");
    out.push_str("</LocalityDatabase>\n");
    out
}

fn write_scope(
    program: &Program,
    la: &LocalityAnalysis,
    scope: ScopeId,
    depth: usize,
    out: &mut String,
) {
    let info = program.scope(scope);
    let tag = match info.kind() {
        ScopeKind::Program => "ProgramScope",
        ScopeKind::Routine(_) => "RoutineScope",
        ScopeKind::Loop(_) => "LoopScope",
    };
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<{tag} name={}", attr(info.name()));
    let mut mid = 0;
    for m in la.all_levels() {
        let s = scope.index();
        let _ = write!(
            out,
            " m{mid}=\"{:.0}\" m{}=\"{:.0}\" m{}=\"{:.0}\"",
            m.exclusive[s],
            mid + 1,
            m.inclusive[s],
            mid + 2,
            m.carried[s],
        );
        mid += 3;
    }
    let children: Vec<ScopeId> = program
        .scopes()
        .iter()
        .filter(|s| s.parent() == Some(scope))
        .map(|s| s.id())
        .collect();
    if children.is_empty() {
        out.push_str(" />\n");
    } else {
        out.push_str(">\n");
        for c in children {
            write_scope(program, la, c, depth + 1, out);
        }
        let _ = writeln!(out, "{pad}</{tag}>");
    }
}

/// Quotes and escapes an XML attribute value.
fn attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::run_locality_analysis;
    use reuselens_cache::MemoryHierarchy;
    use reuselens_ir::ProgramBuilder;

    #[test]
    fn xml_is_balanced_and_contains_scopes() {
        let mut p = ProgramBuilder::new("demo<&>");
        let a = p.array("a", 8, &[2048]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("i", 0, 2047, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let la =
            run_locality_analysis(&prog, &MemoryHierarchy::itanium2_scaled(64), vec![]).unwrap();
        let xml = to_xml(&prog, &la);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("&lt;&amp;&gt;")); // name escaped
        assert!(xml.contains("<LoopScope name=\"i\""));
        assert!(xml.contains("<ArrayTable>"));
        // Tag balance: every <X ...> has a matching </X> or is self-closed.
        let opens = xml.matches("<LoopScope").count();
        let self_closed = xml
            .lines()
            .filter(|l| l.trim_start().starts_with("<LoopScope") && l.trim_end().ends_with("/>"))
            .count();
        let closes = xml.matches("</LoopScope>").count();
        assert_eq!(opens, self_closed + closes);
    }

    #[test]
    fn attr_escapes_quotes() {
        assert_eq!(attr(r#"a"b"#), r#""a&quot;b""#);
        assert_eq!(attr("x'y"), "\"x&apos;y\"");
    }
}
