//! Attribution of predicted misses to scopes, arrays, and reuse patterns.
//!
//! For every memory level the paper computes, per scope: traditional
//! (exclusive/inclusive) miss counts, the number of misses *carried* by the
//! scope, and breakdowns by the reuse source scope; per array: total misses,
//! fragmentation misses, and irregular misses.

use reuselens_cache::LevelPrediction;
use reuselens_core::{PatternKey, ReuseProfile};
use reuselens_ir::{ArrayId, Program, RefId, ScopeId};
use reuselens_static::StaticAnalysis;

/// One row of the flat reuse-pattern database: a pattern with its predicted
/// misses and static classification.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRow {
    /// The pattern identity (sink, source scope, carrier).
    pub key: PatternKey,
    /// Number of reuse arcs measured.
    pub count: u64,
    /// Predicted misses at this level.
    pub misses: f64,
    /// Misses attributed to cache-line fragmentation (`misses ×
    /// fragmentation factor` of the sink's related group).
    pub frag_misses: f64,
    /// True when the carrying scope drives the sink with an irregular or
    /// indirect stride.
    pub irregular: bool,
    /// Constant byte stride of the sink with respect to the carrying loop
    /// (`Some(0)` = the sink re-touches identical locations each carrier
    /// iteration; `None` = the carrier is not an enclosing loop or the
    /// stride is not constant).
    pub carrier_stride: Option<i64>,
    /// The array the sink accesses.
    pub array: ArrayId,
}

/// All attribution metrics for one memory level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelMetrics {
    /// Level name (`"L2"`, `"L3"`, `"TLB"`).
    pub level: String,
    /// Total predicted misses (cold included).
    pub total_misses: f64,
    /// Compulsory misses.
    pub cold_misses: u64,
    /// Exclusive misses per scope (sink-scope attribution), indexed by
    /// [`ScopeId`]. Cold misses count toward their reference's scope.
    pub exclusive: Vec<f64>,
    /// Inclusive misses per scope (exclusive summed over the static
    /// subtree).
    pub inclusive: Vec<f64>,
    /// Misses *carried* per scope (patterns whose carrying scope is this
    /// scope; cold misses are not carried by anything).
    pub carried: Vec<f64>,
    /// Misses per array (cold included).
    pub by_array: Vec<f64>,
    /// Fragmentation misses per array.
    pub frag_by_array: Vec<f64>,
    /// Irregular-pattern misses per array.
    pub irregular_by_array: Vec<f64>,
    /// The flat pattern database, sorted by misses, descending.
    pub patterns: Vec<PatternRow>,
}

impl LevelMetrics {
    /// Computes every metric for one level from the profile it was
    /// predicted on plus the static analysis.
    ///
    /// # Panics
    ///
    /// Panics if `prediction` and `profile` disagree on pattern count
    /// (they must come from the same analysis).
    pub fn compute(
        program: &Program,
        prediction: &LevelPrediction,
        profile: &ReuseProfile,
        sa: &StaticAnalysis,
    ) -> LevelMetrics {
        assert_eq!(
            prediction.per_pattern.len(),
            profile.patterns.len(),
            "prediction and profile must come from the same analysis"
        );
        let nscopes = program.scopes().len();
        let narrays = program.arrays().len();
        let mut exclusive = vec![0.0; nscopes];
        let mut carried = vec![0.0; nscopes];
        let mut by_array = vec![0.0; narrays];
        let mut frag_by_array = vec![0.0; narrays];
        let mut irregular_by_array = vec![0.0; narrays];
        let mut patterns = Vec::with_capacity(profile.patterns.len());

        // Cold misses: attributed to the sink's scope and array. A cold
        // miss on a fragmented line still fetched mostly-unused bytes, so
        // it contributes to the array's fragmentation misses too.
        for (idx, &cold) in profile.cold.iter().enumerate() {
            if cold == 0 {
                continue;
            }
            let rid = RefId(idx as u32);
            let r = program.reference(rid);
            exclusive[r.scope().index()] += cold as f64;
            by_array[r.array().index()] += cold as f64;
            if let Some(f) = sa.fragmentation_of(rid) {
                frag_by_array[r.array().index()] += cold as f64 * f;
            }
        }

        for ((key, misses), pat) in prediction.per_pattern.iter().zip(&profile.patterns) {
            debug_assert_eq!(*key, pat.key);
            let sink = program.reference(key.sink);
            let array = sink.array();
            exclusive[sink.scope().index()] += misses;
            carried[key.carrier.index()] += misses;
            by_array[array.index()] += misses;
            let frag = sa
                .fragmentation_of(key.sink)
                .map(|f| misses * f)
                .unwrap_or(0.0);
            frag_by_array[array.index()] += frag;
            let irregular = sa.is_irregular_pattern(key.sink, key.carrier);
            if irregular {
                irregular_by_array[array.index()] += misses;
            }
            let carrier_stride = sa.formulas[key.sink.index()]
                .stride_at(key.carrier)
                .and_then(reuselens_ir::Stride::constant);
            patterns.push(PatternRow {
                key: *key,
                count: pat.count(),
                misses: *misses,
                frag_misses: frag,
                irregular,
                carrier_stride,
                array,
            });
        }

        patterns.sort_by(|a, b| b.misses.total_cmp(&a.misses));

        // Inclusive = exclusive summed over the static subtree.
        let mut inclusive = vec![0.0; nscopes];
        for scope in program.scopes() {
            let x = exclusive[scope.id().index()];
            if x == 0.0 {
                continue;
            }
            for anc in program.ancestors(scope.id()) {
                inclusive[anc.index()] += x;
            }
        }

        LevelMetrics {
            level: prediction.level.clone(),
            total_misses: prediction.total,
            cold_misses: prediction.cold,
            exclusive,
            inclusive,
            carried,
            by_array,
            frag_by_array,
            irregular_by_array,
            patterns,
        }
    }

    /// Scopes sorted by carried misses, descending, with their share of all
    /// misses (the paper's Fig. 5 / Fig. 10 view).
    pub fn top_carriers(&self) -> Vec<(ScopeId, f64, f64)> {
        let mut rows: Vec<(ScopeId, f64, f64)> = self
            .carried
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.0)
            .map(|(i, &m)| {
                (
                    ScopeId(i as u32),
                    m,
                    if self.total_misses > 0.0 {
                        m / self.total_misses
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }

    /// Arrays sorted by fragmentation misses, descending (Fig. 9 view):
    /// `(array, fragmentation misses, total misses on that array)`.
    pub fn top_fragmented_arrays(&self) -> Vec<(ArrayId, f64, f64)> {
        let mut rows: Vec<(ArrayId, f64, f64)> = self
            .frag_by_array
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.0)
            .map(|(i, &m)| (ArrayId(i as u32), m, self.by_array[i]))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }

    /// Breakdown of one array's misses by `(source scope, carrier)`
    /// (Table II view), sorted by misses descending. Cold misses are
    /// reported separately by [`Self::cold_misses`].
    pub fn array_breakdown(&self, array: ArrayId) -> Vec<(ScopeId, ScopeId, f64)> {
        let mut rows: Vec<(ScopeId, ScopeId, f64)> = self
            .patterns
            .iter()
            .filter(|p| p.array == array)
            .map(|p| (p.key.source_scope, p.key.carrier, p.misses))
            .collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        rows
    }

    /// Total misses attributed to irregular patterns.
    pub fn total_irregular(&self) -> f64 {
        self.irregular_by_array.iter().sum()
    }

    /// Total fragmentation misses.
    pub fn total_fragmentation(&self) -> f64 {
        self.frag_by_array.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_cache::{predict_level, Assoc, CacheConfig};
    use reuselens_core::analyze_program;
    use reuselens_ir::ProgramBuilder;
    use reuselens_trace::{Executor, NullSink};

    /// Two sweeps over an array bigger than a tiny cache: the repeat loop
    /// carries all capacity misses.
    fn setup() -> (reuselens_ir::Program, LevelMetrics) {
        let n = 4096u64;
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let analysis = analyze_program(&prog, &[64], vec![]).unwrap();
        let cfg = CacheConfig::new("L2", 64 * 64, 64, Assoc::Full);
        let pred = predict_level(analysis.profile_at(64).unwrap(), &cfg);
        let exec = Executor::new(&prog).run(&mut NullSink).unwrap();
        let sa = StaticAnalysis::analyze(&prog, &exec);
        let metrics = LevelMetrics::compute(&prog, &pred, analysis.profile_at(64).unwrap(), &sa);
        (prog, metrics)
    }

    #[test]
    fn carried_misses_attribute_to_the_repeat_loop() {
        let (prog, m) = setup();
        let t = prog.scope_by_name("t").unwrap();
        let lines = 4096 * 8 / 64;
        // Sweep 2 misses every line; those reuses are carried by t.
        assert!((m.carried[t.index()] - lines as f64).abs() < 1.0);
        let top = m.top_carriers();
        assert_eq!(top[0].0, t);
        assert!(top[0].2 > 0.4 && top[0].2 < 0.6); // ~half of all misses
    }

    #[test]
    fn exclusive_and_inclusive_nest() {
        let (prog, m) = setup();
        let i = prog.scope_by_name("i").unwrap();
        let t = prog.scope_by_name("t").unwrap();
        let main_scope = prog.routine(prog.entry()).scope();
        // All sinks are in the i loop.
        assert!(m.exclusive[i.index()] > 0.0);
        assert_eq!(m.exclusive[t.index()], 0.0);
        // Inclusive propagates upward.
        assert!((m.inclusive[t.index()] - m.exclusive[i.index()]).abs() < 1e-9);
        assert!((m.inclusive[main_scope.index()] - m.inclusive[t.index()]).abs() < 1e-9);
        assert!(
            (m.inclusive[ScopeId::ROOT.index()] - m.total_misses).abs() < 1e-9,
            "root inclusive {} != total {}",
            m.inclusive[ScopeId::ROOT.index()],
            m.total_misses
        );
    }

    #[test]
    fn unit_stride_sweep_has_no_fragmentation_or_irregular_misses() {
        let (_, m) = setup();
        assert_eq!(m.total_fragmentation(), 0.0);
        assert_eq!(m.total_irregular(), 0.0);
        assert!(m.top_fragmented_arrays().is_empty());
    }

    #[test]
    fn by_array_accounts_for_every_miss() {
        let (_, m) = setup();
        let sum: f64 = m.by_array.iter().sum();
        assert!((sum - m.total_misses).abs() < 1e-9);
        let rows = m.array_breakdown(ArrayId(0));
        let pattern_sum: f64 = rows.iter().map(|r| r.2).sum();
        assert!((pattern_sum + m.cold_misses as f64 - m.total_misses).abs() < 1e-9);
    }
}
