//! # reuselens-metrics — attribution and reporting
//!
//! Joins the reuse-distance measurements, the cache-model predictions, and
//! the static analysis into the metrics the paper's viewer presents:
//!
//! * exclusive / inclusive miss counts over the **program scope tree**;
//! * misses **carried** by each scope (the tuning signal: the loop to
//!   interchange, block, or fuse around);
//! * per-array totals, **fragmentation misses**, and **irregular misses**;
//! * the flat **reuse-pattern database** sorted by miss contribution;
//! * text tables mirroring the paper's Figures 5, 9, 10 and Table II, and
//!   an hpcviewer-style **XML export**.
//!
//! Entry point: [`run_locality_analysis`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod report;
mod text;
mod xml;

pub use attribution::{LevelMetrics, PatternRow};
pub use report::{
    attribute_analysis, run_locality_analysis, run_locality_analysis_checkpointed,
    run_locality_analysis_opts, run_locality_analysis_sampled, run_locality_estimate, EstimateRun,
    LocalityAnalysis,
};
pub use text::{
    format_array_breakdown, format_carried_misses, format_fragmentation, format_pattern_db,
    format_pattern_csv, format_spatial, format_summary,
};
pub use xml::to_xml;
