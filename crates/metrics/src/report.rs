//! The one-call locality analysis: execute, measure, predict, attribute.

use crate::attribution::LevelMetrics;
use reuselens_cache::{report_from_analysis, HierarchyReport, MemoryHierarchy, ReuseLensError};
use reuselens_core::{
    analyze_buffer_checkpointed, analyze_buffer_with, capture_program, AnalysisResult,
    AnalyzeOptions, CheckpointOptions, SamplingConfig,
};
use reuselens_ir::{ArrayId, Program, RefId};
use reuselens_obs as obs;
use reuselens_static::{estimate_profiles, StaticAnalysis};
use reuselens_trace::ExecError;

/// Everything the toolchain produces for one program on one hierarchy:
/// per-level predictions, per-level attribution metrics, and the static
/// analysis. This is the input to the report writers and to the
/// [transformation advisor](../reuselens_advisor/index.html).
#[derive(Debug, Clone)]
pub struct LocalityAnalysis {
    /// Per-level miss predictions and modeled cycles.
    pub report: HierarchyReport,
    /// Attribution metrics, one per cache level, in hierarchy order.
    pub cache_metrics: Vec<LevelMetrics>,
    /// Attribution metrics for the TLB.
    pub tlb_metrics: LevelMetrics,
    /// The static access-pattern analysis.
    pub static_analysis: StaticAnalysis,
    /// The underlying reuse-distance analysis (profiles per granularity).
    pub analysis: AnalysisResult,
}

impl LocalityAnalysis {
    /// Finds a level's metrics by name (`"L2"`, `"L3"`, `"TLB"`).
    pub fn level(&self, name: &str) -> Option<&LevelMetrics> {
        if self.tlb_metrics.level == name {
            return Some(&self.tlb_metrics);
        }
        self.cache_metrics.iter().find(|m| m.level == name)
    }

    /// All metrics, caches first then TLB.
    pub fn all_levels(&self) -> Vec<&LevelMetrics> {
        self.cache_metrics
            .iter()
            .chain(std::iter::once(&self.tlb_metrics))
            .collect()
    }
}

/// Runs the complete pipeline: one execution measuring reuse at every
/// granularity the hierarchy needs, per-level miss prediction, static
/// analysis, and per-level attribution.
///
/// # Errors
///
/// Propagates executor errors (out-of-bounds accesses, missing index-array
/// contents).
///
/// # Examples
///
/// ```
/// use reuselens_cache::MemoryHierarchy;
/// use reuselens_ir::ProgramBuilder;
/// use reuselens_metrics::run_locality_analysis;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[1 << 15]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 1, |r, _| {
///         r.for_("i", 0, (1 << 15) - 1, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let la = run_locality_analysis(&prog, &MemoryHierarchy::itanium2(), vec![])?;
/// let l2 = la.level("L2").unwrap();
/// let t = prog.scope_by_name("t").unwrap();
/// // The repeat loop carries the L2 capacity misses.
/// assert_eq!(l2.top_carriers()[0].0, t);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn run_locality_analysis(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<LocalityAnalysis, ExecError> {
    run_locality_analysis_sampled(program, hierarchy, index_arrays, SamplingConfig::Exact)
}

/// [`run_locality_analysis`] with an explicit [`SamplingConfig`]: every
/// granularity replays through the constant-space sampled analyzer, and
/// the miss predictions and attribution metrics are computed from the
/// scaled histograms. [`SamplingConfig::Exact`] reproduces
/// [`run_locality_analysis`] bit for bit.
///
/// # Errors
///
/// Propagates executor errors, like [`run_locality_analysis`].
pub fn run_locality_analysis_sampled(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
    sampling: SamplingConfig,
) -> Result<LocalityAnalysis, ExecError> {
    let opts = AnalyzeOptions {
        sampling,
        ..AnalyzeOptions::default()
    };
    run_locality_analysis_opts(program, hierarchy, index_arrays, &opts)
}

/// [`run_locality_analysis`] with full [`AnalyzeOptions`] control —
/// sampling *and* intra-grain partitioned replay (`replay_threads`),
/// budgets, validation. This is what the CLI's `--sample-rate` and
/// `--replay-threads` flags plumb into. Default options reproduce
/// [`run_locality_analysis`] bit for bit.
///
/// # Errors
///
/// Propagates executor errors, like [`run_locality_analysis`].
pub fn run_locality_analysis_opts(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
    opts: &AnalyzeOptions,
) -> Result<LocalityAnalysis, ExecError> {
    // Capture once, then replay per granularity: this is the pipeline the
    // CLI reports on, so each stage runs under its own span (capture and
    // replay spans are recorded inside `capture_program`/`analyze_buffer`).
    let (buffer, exec) = capture_program(program, index_arrays)?;
    // An in-process capture can only fail validation through a ReuseLens
    // bug, so surface that as a panic rather than widening the error type.
    buffer
        .validate()
        .unwrap_or_else(|e| panic!("in-process capture failed validation: {e}"));
    let grains = hierarchy.required_granularities();
    let (profiles, _timings) = analyze_buffer_with(program, &buffer, &grains, opts)
        .into_strict()
        .unwrap_or_else(|e| panic!("{e}"));
    let analysis = AnalysisResult { profiles, exec };
    Ok(attribute_analysis(program, hierarchy, analysis))
}

/// [`run_locality_analysis_opts`] through the crash-safe streaming replay
/// engine ([`analyze_buffer_checkpointed`]): each granularity snapshots
/// its analyzer state to [`CheckpointOptions::dir`] every
/// [`CheckpointOptions::every`] events, and with
/// [`CheckpointOptions::resume`] set a rerun continues from the newest
/// valid snapshot. The resulting analysis is bit-identical to an
/// uninterrupted [`run_locality_analysis_opts`] run with the same
/// [`AnalyzeOptions`]. This is what the CLI's `--checkpoint-dir`,
/// `--checkpoint-every`, and `--resume` flags plumb into.
///
/// # Errors
///
/// Propagates executor errors, checkpoint-infrastructure failures
/// ([`ReuseLensError::Snapshot`]), and any grain failure — unlike the
/// panic-on-grain-failure shortcut in [`run_locality_analysis_opts`],
/// everything here surfaces as a typed [`ReuseLensError`].
pub fn run_locality_analysis_checkpointed(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
    opts: &AnalyzeOptions,
    ckpt: &CheckpointOptions,
) -> Result<LocalityAnalysis, ReuseLensError> {
    let (buffer, exec) = capture_program(program, index_arrays)?;
    buffer
        .validate()
        .unwrap_or_else(|e| panic!("in-process capture failed validation: {e}"));
    let grains = hierarchy.required_granularities();
    let (profiles, _timings) = analyze_buffer_checkpointed(program, &buffer, &grains, opts, ckpt)?
        .into_strict()?;
    let analysis = AnalysisResult { profiles, exec };
    Ok(attribute_analysis(program, hierarchy, analysis))
}

/// A [`LocalityAnalysis`] produced by the zero-trace symbolic estimator,
/// with the estimator's per-reference coverage bookkeeping.
#[derive(Debug, Clone)]
pub struct EstimateRun {
    /// The full analysis, shaped exactly like the dynamic pipeline's.
    pub analysis: LocalityAnalysis,
    /// References modeled symbolically (affine subscripts).
    pub covered: Vec<RefId>,
    /// References modeled with the irregular/indirect fallback.
    pub fallback: Vec<RefId>,
}

/// The static counterpart of [`run_locality_analysis`]: predicts every
/// per-granularity profile symbolically from the loop structure —
/// executing **zero trace events** — then runs the identical miss
/// prediction / attribution back half. `index_arrays` is the same input
/// data the executor would be seeded with; the estimator only reads it
/// to resolve data-dependent loop bounds and guards.
pub fn run_locality_estimate(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: &[(ArrayId, Vec<i64>)],
) -> EstimateRun {
    let grains = hierarchy.required_granularities();
    let est = estimate_profiles(program, index_arrays, &grains);
    let analysis = AnalysisResult {
        profiles: est.profiles,
        exec: est.exec,
    };
    EstimateRun {
        analysis: attribute_analysis(program, hierarchy, analysis),
        covered: est.covered,
        fallback: est.fallback,
    }
}

/// The shared back half of the pipeline: miss prediction, static
/// analysis, and per-level attribution over an already-measured analysis.
///
/// Public so out-of-process pipelines — a daemon replaying a stored trace
/// it captured in an earlier job — can rejoin the attribution path after
/// producing an [`AnalysisResult`] by other means.
pub fn attribute_analysis(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    analysis: AnalysisResult,
) -> LocalityAnalysis {
    let report = report_from_analysis(&analysis, hierarchy);
    let _span = obs::span_with(obs::Stage::Report, || obs::TimelineArgs {
        hierarchy: Some(hierarchy.name.clone()),
        ..obs::TimelineArgs::default()
    });
    let sa = StaticAnalysis::analyze(program, &analysis.exec);
    let cache_metrics = report
        .levels
        .iter()
        .zip(&hierarchy.levels)
        .map(|(pred, cfg)| {
            let profile = analysis
                .profile_at(cfg.line_size)
                .expect("profile measured for every level");
            LevelMetrics::compute(program, pred, profile, &sa)
        })
        .collect();
    let tlb_profile = analysis
        .profile_at(hierarchy.tlb.line_size)
        .expect("page-granularity profile");
    let tlb_metrics = LevelMetrics::compute(program, &report.tlb, tlb_profile, &sa);
    obs::add(obs::Counter::ReportsGenerated, 1);
    LocalityAnalysis {
        report,
        cache_metrics,
        tlb_metrics,
        static_analysis: sa,
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::ProgramBuilder;

    #[test]
    fn pipeline_produces_consistent_levels() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[8192]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 8191, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let h = MemoryHierarchy::itanium2_scaled(16);
        let la = run_locality_analysis(&prog, &h, vec![]).unwrap();
        assert_eq!(la.cache_metrics.len(), 2);
        assert_eq!(la.tlb_metrics.level, "TLB");
        assert!(la.level("L2").is_some());
        assert!(la.level("TLB").is_some());
        assert!(la.level("L7").is_none());
        assert_eq!(la.all_levels().len(), 3);
        // L2 misses >= L3 misses (smaller cache).
        let l2 = la.level("L2").unwrap().total_misses;
        let l3 = la.level("L3").unwrap().total_misses;
        assert!(l2 >= l3);
    }

    #[test]
    fn sampled_pipeline_marks_profiles_and_exact_matches_default() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[8192]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 8191, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let h = MemoryHierarchy::itanium2_scaled(16);
        let exact = run_locality_analysis(&prog, &h, vec![]).unwrap();
        let via_sampled_entry =
            run_locality_analysis_sampled(&prog, &h, vec![], SamplingConfig::Exact).unwrap();
        assert_eq!(exact.analysis.profiles, via_sampled_entry.analysis.profiles);

        let sampled =
            run_locality_analysis_sampled(&prog, &h, vec![], SamplingConfig::fixed(0.5)).unwrap();
        assert!(sampled.analysis.profiles.iter().all(|p| p.is_sampled()));
        let summary = crate::text::format_summary(&sampled);
        assert!(summary.contains("sampled: grain"));
        assert!(!crate::text::format_summary(&exact).contains("sampled"));
    }
}
