//! Human-readable report tables (the viewer views the paper screenshots
//! show, rendered as text).

use crate::attribution::LevelMetrics;
use crate::report::LocalityAnalysis;
use reuselens_ir::{ArrayId, Program};

/// Renders the carried-misses view (paper Fig. 5 / Fig. 10): scopes
/// carrying at least `threshold` (fraction) of any level's misses, with
/// their share per level.
pub fn format_carried_misses(
    program: &Program,
    levels: &[&LevelMetrics],
    threshold: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<40}", "carried misses by scope"));
    for l in levels {
        out.push_str(&format!("{:>12}", l.level));
    }
    out.push('\n');
    // Union of scopes above threshold in any level.
    let nscopes = program.scopes().len();
    let mut rows: Vec<(usize, f64)> = (0..nscopes)
        .filter_map(|s| {
            let max_share = levels
                .iter()
                .map(|l| {
                    if l.total_misses > 0.0 {
                        l.carried[s] / l.total_misses
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max);
            (max_share >= threshold).then_some((s, max_share))
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (s, _) in rows {
        let path = program.scope_path(reuselens_ir::ScopeId(s as u32));
        out.push_str(&format!("{:<40}", truncate(&path, 39)));
        for l in levels {
            let share = if l.total_misses > 0.0 {
                100.0 * l.carried[s] / l.total_misses
            } else {
                0.0
            };
            out.push_str(&format!("{share:>11.1}%"));
        }
        out.push('\n');
    }
    out
}

/// Renders a Table II-style breakdown for one array: misses split by
/// (reuse source scope, carrying scope), as percentages of all misses at
/// the level.
pub fn format_array_breakdown(
    program: &Program,
    metrics: &LevelMetrics,
    array: ArrayId,
) -> String {
    let mut out = format!(
        "array {:<12} {:<24} {:<24} {:>10}\n",
        program.array(array).name(),
        "reuse source scope",
        "carrying scope",
        "% misses"
    );
    for (source, carrier, misses) in metrics.array_breakdown(array) {
        let pct = if metrics.total_misses > 0.0 {
            100.0 * misses / metrics.total_misses
        } else {
            0.0
        };
        if pct < 0.05 {
            continue;
        }
        out.push_str(&format!(
            "{:<18} {:<24} {:<24} {:>9.1}%\n",
            "",
            truncate(&program.scope_path(source), 23),
            truncate(&program.scope_path(carrier), 23),
            pct
        ));
    }
    out
}

/// Renders the fragmentation ranking (paper Fig. 9): arrays by
/// fragmentation misses with their total misses.
pub fn format_fragmentation(program: &Program, metrics: &LevelMetrics, top: usize) -> String {
    let mut out = format!(
        "{:<20} {:>16} {:>16} {:>8}\n",
        "array", "frag misses", "total misses", "frag%"
    );
    for (array, frag, total) in metrics.top_fragmented_arrays().into_iter().take(top) {
        out.push_str(&format!(
            "{:<20} {:>16.0} {:>16.0} {:>7.1}%\n",
            program.array(array).name(),
            frag,
            total,
            if total > 0.0 { 100.0 * frag / total } else { 0.0 }
        ));
    }
    out
}

/// Renders the flat pattern database: the `top` patterns by misses.
pub fn format_pattern_db(program: &Program, metrics: &LevelMetrics, top: usize) -> String {
    let mut out = format!(
        "{:<26} {:<18} {:<18} {:>12} {:>9} {:>5}\n",
        "sink", "source scope", "carrier", "misses", "count", "irr"
    );
    for row in metrics.patterns.iter().take(top) {
        let sink = program.reference(row.key.sink);
        out.push_str(&format!(
            "{:<26} {:<18} {:<18} {:>12.0} {:>9} {:>5}\n",
            truncate(sink.label(), 25),
            truncate(&program.scope_path(row.key.source_scope), 17),
            truncate(&program.scope_path(row.key.carrier), 17),
            row.misses,
            row.count,
            if row.irregular { "yes" } else { "" }
        ));
    }
    out
}

/// Exports the flat pattern database as CSV (machine-readable viewer
/// interchange): one row per reuse pattern with its attribution and
/// classification.
pub fn format_pattern_csv(program: &Program, metrics: &LevelMetrics) -> String {
    let mut out = String::from(
        "sink,array,sink_scope,source_scope,carrier,count,misses,frag_misses,irregular
",
    );
    for row in &metrics.patterns {
        let sink = program.reference(row.key.sink);
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.1},{:.1},{}
",
            csv_quote(sink.label()),
            csv_quote(program.array(row.array).name()),
            csv_quote(&program.scope_path(sink.scope())),
            csv_quote(&program.scope_path(row.key.source_scope)),
            csv_quote(&program.scope_path(row.key.carrier)),
            row.count,
            row.misses,
            row.frag_misses,
            row.irregular,
        ));
    }
    out
}

/// Quotes a CSV field when it contains separators or quotes.
fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the dynamic spatial-utilization view: arrays ranked by wasted
/// bytes, with the fraction of fetched bytes actually used.
pub fn format_spatial(program: &Program, profile: &reuselens_core::SpatialProfile) -> String {
    let mut out = format!(
        "{:<20} {:>12} {:>14} {:>14} {:>12}\n",
        "array", "lines", "bytes fetched", "bytes used", "utilization"
    );
    for (array, _wasted, util) in profile.most_wasteful() {
        let s = profile.per_array[array.index()];
        out.push_str(&format!(
            "{:<20} {:>12} {:>14} {:>14} {:>11.1}%\n",
            program.array(array).name(),
            s.lines,
            s.bytes_fetched,
            s.bytes_touched,
            100.0 * util
        ));
    }
    out
}

/// Renders the per-level totals summary for a whole analysis.
///
/// Profiles measured by the sampled analyzer are flagged up front — every
/// downstream count is then a scaled estimate, not an exact total. Exact
/// runs render byte-identically to before the annotation existed.
pub fn format_summary(la: &LocalityAnalysis) -> String {
    let mut out = String::new();
    for p in &la.analysis.profiles {
        if let Some(info) = p.sampling {
            out.push_str(&format!(
                "sampled: grain {} at rate 1/{} (counts are scaled estimates)\n",
                p.block_size, info.inv
            ));
        }
    }
    out.push_str(&format!(
        "{:<8} {:>14} {:>12} {:>10}\n",
        "level", "misses", "cold", "miss rate"
    ));
    for m in la.all_levels() {
        let rate = if la.report.accesses > 0 {
            m.total_misses / la.report.accesses as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<8} {:>14.0} {:>12} {:>9.2}%\n",
            m.level,
            m.total_misses,
            m.cold_misses,
            100.0 * rate
        ));
    }
    out.push_str(&format!(
        "cycles: {:.0} (non-stall {:.0}, stall fraction {:.1}%)\n",
        la.report.timing.total(),
        la.report.timing.non_stall,
        100.0 * la.report.timing.stall_fraction()
    ));
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("…{}", &s[s.len() - (n - 1)..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::run_locality_analysis;
    use reuselens_cache::MemoryHierarchy;
    use reuselens_ir::ProgramBuilder;

    fn analysis() -> (reuselens_ir::Program, LocalityAnalysis) {
        let mut p = ProgramBuilder::new("t");
        let zion = p.array("zion", 8, &[7, 4096]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("i", 0, 4095, |r, i| {
                    r.load(zion, vec![reuselens_ir::Expr::c(2), i.into()]);
                });
            });
        });
        let prog = p.finish();
        let la =
            run_locality_analysis(&prog, &MemoryHierarchy::itanium2_scaled(16), vec![]).unwrap();
        (prog, la)
    }

    #[test]
    fn carried_misses_table_names_the_loop() {
        let (prog, la) = analysis();
        let text = format_carried_misses(&prog, &la.all_levels(), 0.01);
        assert!(text.contains("main/t"));
        assert!(text.contains("L2"));
        assert!(text.contains('%'));
    }

    #[test]
    fn fragmentation_table_ranks_zion() {
        let (prog, la) = analysis();
        let l3 = la.level("L3").unwrap();
        let text = format_fragmentation(&prog, l3, 5);
        assert!(text.contains("zion"));
        // Reuse misses on zion carry the 6/7 fragmentation factor.
        assert!(l3.total_fragmentation() > 0.0);
        let (_, frag, total) = l3.top_fragmented_arrays()[0];
        assert!(frag > 0.0 && frag < total);
    }

    #[test]
    fn pattern_db_and_breakdown_render() {
        let (prog, la) = analysis();
        let l2 = la.level("L2").unwrap();
        let db = format_pattern_db(&prog, l2, 10);
        assert!(db.contains("zion"));
        let bd = format_array_breakdown(&prog, l2, prog.array_by_name("zion").unwrap());
        assert!(bd.contains("zion"));
        let summary = format_summary(&la);
        assert!(summary.contains("TLB"));
        assert!(summary.contains("cycles"));
    }

    #[test]
    fn pattern_csv_has_one_row_per_pattern() {
        let (prog, la) = analysis();
        let l2 = la.level("L2").unwrap();
        let csv = format_pattern_csv(&prog, l2);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows.len(), l2.patterns.len() + 1);
        assert!(rows[0].starts_with("sink,array,"));
        // The sink label contains commas: it must be quoted.
        assert!(rows[1].starts_with('"'));
    }

    #[test]
    fn csv_quote_escapes() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn truncate_keeps_tail() {
        assert_eq!(truncate("abc", 5), "abc");
        assert_eq!(truncate("abcdefgh", 5), "…efgh");
    }
}
