//! Timeline ring-buffer behavior under pressure: bounded overflow that
//! drops oldest and counts drops (never blocks, never reallocates past
//! the bound), well-formed merges from many concurrent writer threads,
//! and clean install/uninstall mid-run (no dangling events).
//!
//! Tests that install the process-global timeline slot serialize on a
//! mutex so `cargo test`'s parallel runner cannot interleave them.

use reuselens_obs as obs;
use reuselens_obs::{Counter, MetricsRecorder, Stage, Timeline, TimelineArgs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Guarantees the global slots are clear even when an assert fails.
struct Uninstall;

impl Drop for Uninstall {
    fn drop(&mut self) {
        obs::uninstall_timeline();
        obs::uninstall();
    }
}

#[test]
fn overflow_drops_oldest_and_ticks_the_counter() {
    let _guard = serialized();
    let _cleanup = Uninstall;
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let timeline = Arc::new(Timeline::with_capacity(1, 4));
    obs::install_timeline(timeline.clone());

    // 10 spans into a 4-slot ring: 6 oldest dropped, 4 newest kept.
    for i in 0..10u64 {
        let mut span = obs::span_with(Stage::Replay, || TimelineArgs {
            grain: Some(i),
            ..TimelineArgs::default()
        });
        span.record(|args| args.events = Some(i * 100));
    }

    let snap = timeline.snapshot();
    assert_eq!(snap.events.len(), 4, "ring stays at capacity");
    assert_eq!(snap.dropped, 6);
    assert_eq!(recorder.snapshot().counter(Counter::TimelineDropped), 6);
    let grains: Vec<u64> = snap.events.iter().filter_map(|e| e.args.grain).collect();
    assert_eq!(grains, vec![6, 7, 8, 9], "survivors are the newest spans");
    // Every survivor is complete: closed args recorded, end >= begin.
    for event in &snap.events {
        assert_eq!(event.args.events, Some(event.args.grain.unwrap() * 100));
        assert!(event.end_ns >= event.begin_ns);
    }
}

#[test]
fn eight_concurrent_writers_merge_into_a_well_formed_timeline() {
    let _guard = serialized();
    let _cleanup = Uninstall;
    const THREADS: u64 = 8;
    const SPANS_PER_THREAD: u64 = 200;
    let timeline = Arc::new(Timeline::new());
    obs::install_timeline(timeline.clone());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let _span = obs::span_with(Stage::Replay, || TimelineArgs {
                        grain: Some(t),
                        events: Some(i),
                        ..TimelineArgs::default()
                    });
                }
            });
        }
    });

    let snap = timeline.snapshot();
    assert_eq!(snap.dropped, 0, "default geometry holds 1600 events");
    assert_eq!(snap.events.len(), (THREADS * SPANS_PER_THREAD) as usize);
    // Well-formed merge: globally ordered by begin, every event closed,
    // every thread contributed exactly its share in its own order.
    for pair in snap.events.windows(2) {
        assert!(pair[0].begin_ns <= pair[1].begin_ns, "snapshot is time-ordered");
    }
    for t in 0..THREADS {
        let mine: Vec<u64> = snap
            .events
            .iter()
            .filter(|e| e.args.grain == Some(t))
            .filter_map(|e| e.args.events)
            .collect();
        assert_eq!(mine.len() as u64, SPANS_PER_THREAD);
        // Spans on one thread are sequential, so per-writer order survives
        // the merge.
        let mut sorted = mine.clone();
        sorted.sort_unstable();
        assert_eq!(mine, sorted);
    }
    // The chrome export of a concurrent merge is loadable JSON with one
    // complete event per span.
    let json = snap.to_chrome_trace();
    assert_eq!(json.matches("\"ph\":\"X\"").count(), snap.events.len());
}

#[test]
fn install_and_uninstall_mid_run_leave_no_dangling_events() {
    let _guard = serialized();
    let _cleanup = Uninstall;
    // A recorder is already running (arming spans) when the timeline is
    // attached mid-run — the CLI's `--metrics` + `--trace-timeline` shape.
    obs::install(Arc::new(MetricsRecorder::new()));

    // Span opened before the timeline existed, closed after install:
    // recorded, begin clamped to the timeline epoch (never a negative /
    // wrapped timestamp).
    let span_before = obs::span_with(Stage::Capture, TimelineArgs::default);
    std::thread::sleep(Duration::from_millis(2));
    let timeline = Arc::new(Timeline::new());
    obs::install_timeline(timeline.clone());
    drop(span_before);

    // Span opened while installed, closed after uninstall: not recorded —
    // events enter the buffer only at close, so nothing dangles.
    let span_across = obs::span_with(Stage::Sweep, TimelineArgs::default);
    {
        let _span = obs::span_with(Stage::Replay, || TimelineArgs {
            grain: Some(7),
            ..TimelineArgs::default()
        });
    }
    obs::uninstall_timeline();
    drop(span_across);

    // Spans after uninstall leave no trace at all.
    drop(obs::span_with(Stage::Report, TimelineArgs::default));

    let snap = timeline.snapshot();
    let stages: Vec<Stage> = snap.events.iter().map(|e| e.stage).collect();
    assert_eq!(stages, vec![Stage::Capture, Stage::Replay]);
    assert_eq!(snap.events[0].begin_ns, 0, "pre-install open clamps to epoch");
    for event in &snap.events {
        assert!(event.end_ns >= event.begin_ns, "every recorded event is closed");
    }
    assert_eq!(snap.dropped, 0);
}

#[test]
fn reinstalling_returns_the_previous_timeline() {
    let _guard = serialized();
    let _cleanup = Uninstall;
    let first = Arc::new(Timeline::new());
    let second = Arc::new(Timeline::new());
    assert!(obs::install_timeline(first.clone()).is_none());
    drop(obs::span_with(Stage::Capture, TimelineArgs::default));
    let previous = obs::install_timeline(second.clone()).expect("first is returned");
    assert!(Arc::ptr_eq(&previous, &first));
    drop(obs::span_with(Stage::Sweep, TimelineArgs::default));
    obs::uninstall_timeline();
    assert_eq!(first.snapshot().events.len(), 1);
    assert_eq!(second.snapshot().events.len(), 1);
    assert_eq!(second.snapshot().events[0].stage, Stage::Sweep);
}
