//! Golden snapshot of the Chrome trace-event JSON exporter.
//!
//! A fixed [`TimelineSnapshot`] covering every stage, every typed arg
//! (including a hierarchy name that needs JSON escaping), nesting, and a
//! nonzero drop count is normalized ([`TimelineSnapshot::normalize`]:
//! timestamps zeroed, thread ids renumbered densely) and rendered; the
//! whole string is compared byte-exact, in the style of
//! `exporter_golden.rs`. Any drift in the event shape breaks
//! `chrome://tracing` / Perfetto loading downstream, so it fails here
//! first.

use reuselens_obs::{Stage, TimelineArgs, TimelineEvent, TimelineSnapshot};

/// One event per stage across two (un-normalized) thread ids, with the
/// full arg set exercised on the replay and sweep events.
fn snapshot() -> TimelineSnapshot {
    let event = |stage, begin_ns, end_ns, thread, seq, args| TimelineEvent {
        stage,
        begin_ns,
        end_ns,
        thread,
        depth: 1,
        seq,
        args,
    };
    let mut events = vec![
        event(Stage::Capture, 1_000, 51_000, 42, 0, TimelineArgs::default()),
        event(
            Stage::Decode,
            60_000,
            75_500,
            42,
            1,
            TimelineArgs {
                events: Some(66_124),
                ..TimelineArgs::default()
            },
        ),
        event(
            Stage::Replay,
            80_000,
            230_000,
            7,
            0,
            TimelineArgs {
                grain: Some(128),
                events: Some(66_124),
                distinct_blocks: Some(92),
                tree_nodes: Some(92),
                ..TimelineArgs::default()
            },
        ),
        event(
            Stage::Sweep,
            240_000,
            240_487,
            42,
            2,
            TimelineArgs {
                hierarchy: Some("Itanium2/16 \"scaled\"".to_string()),
                ..TimelineArgs::default()
            },
        ),
        event(
            Stage::Report,
            241_000,
            241_671,
            42,
            3,
            TimelineArgs {
                hierarchy: Some("Itanium2/16".to_string()),
                ..TimelineArgs::default()
            },
        ),
    ];
    // Nested decode span under the replay, on the replay's thread.
    events.push(event(
        Stage::Decode,
        81_000,
        90_000,
        7,
        1,
        TimelineArgs::default(),
    ));
    events.sort_by_key(|e| (e.begin_ns, e.thread, e.seq));
    TimelineSnapshot { events, dropped: 3 }
}

const GOLDEN_TRACE: &str = r#"{"traceEvents":[
{"name":"capture","cat":"reuselens","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":0.000,"args":{"depth":1}},
{"name":"decode","cat":"reuselens","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":0.000,"args":{"depth":1,"events":66124}},
{"name":"replay","cat":"reuselens","ph":"X","pid":1,"tid":1,"ts":0.000,"dur":0.000,"args":{"depth":1,"grain":128,"events":66124,"distinct_blocks":92,"tree_nodes":92}},
{"name":"decode","cat":"reuselens","ph":"X","pid":1,"tid":1,"ts":0.000,"dur":0.000,"args":{"depth":1}},
{"name":"sweep","cat":"reuselens","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":0.000,"args":{"depth":1,"hierarchy":"Itanium2/16 \"scaled\""}},
{"name":"report","cat":"reuselens","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":0.000,"args":{"depth":1,"hierarchy":"Itanium2/16"}}
],"displayTimeUnit":"ms","otherData":{"timeline_dropped_total":3}}
"#;

#[test]
fn chrome_trace_matches_golden() {
    let mut snap = snapshot();
    snap.normalize();
    assert_eq!(snap.to_chrome_trace(), GOLDEN_TRACE);
}

#[test]
fn normalization_is_idempotent_and_preserves_order() {
    let mut once = snapshot();
    once.normalize();
    let mut twice = once.clone();
    twice.normalize();
    assert_eq!(once, twice);
    // Normalizing never reorders: stages appear as in the raw snapshot.
    let raw: Vec<Stage> = snapshot().events.iter().map(|e| e.stage).collect();
    let normalized: Vec<Stage> = once.events.iter().map(|e| e.stage).collect();
    assert_eq!(raw, normalized);
}
