//! End-to-end tests of the live telemetry service: the background
//! aggregator, the HTTP surface (`/metrics`, `/healthz`, `/timeline`),
//! and the structured JSONL event log, exercised the way a real run
//! uses them — over sockets, under concurrency, and against the
//! process-global recorder slots being installed and uninstalled while
//! the aggregator keeps snapshotting.

use reuselens_obs::{
    http_get, Counter, EventKind, EventLog, Gauge, GrainProfile, GrainStatus, MetricsRecorder,
    Recorder, ServiceConfig, Stage, TelemetryService, Timeline,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The process-global recorder/event slots are shared by every test in
/// this binary; tests that install or uninstall them serialize here.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn service_over(recorder: Arc<MetricsRecorder>, tick: Duration) -> TelemetryService {
    TelemetryService::start(
        recorder,
        None,
        ServiceConfig {
            tick,
            ..ServiceConfig::default()
        },
    )
}

/// `/metrics` over a real socket serves exactly the exporter's text:
/// byte-for-byte the same string `snapshot().to_prometheus()` renders,
/// with the Prometheus text-format content type.
#[test]
fn metrics_endpoint_matches_exporter_output() {
    let recorder = Arc::new(MetricsRecorder::new());
    recorder.add(Counter::EventsDecoded, 12_345);
    recorder.add(Counter::GrainsCompleted, 3);
    recorder.set_gauge(Gauge::SamplingInvRate, 10);
    let mut service = service_over(recorder.clone(), Duration::from_millis(5));
    let addr = service.serve("127.0.0.1:0").expect("bind ephemeral port");

    let (status, body) = http_get(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    assert_eq!(body, recorder.snapshot().to_prometheus());
    assert!(body.contains("reuselens_events_decoded_total 12345"));

    // A later scrape reflects later state: the endpoint is live, not a
    // render of service-start state.
    recorder.add(Counter::EventsDecoded, 55);
    let (_, body) = http_get(addr, "/metrics").expect("second scrape");
    assert!(body.contains("reuselens_events_decoded_total 12400"));
    assert_eq!(service.scrapes(), 2);
    service.shutdown();
}

/// `/healthz` reports progress and ETA from the recorder's grain
/// counters, and unknown paths 404 without disturbing the service.
#[test]
fn healthz_reports_progress_and_unknown_paths_404() {
    let recorder = Arc::new(MetricsRecorder::new());
    recorder.add(Counter::GrainsRequested, 4);
    recorder.add(Counter::GrainsCompleted, 1);
    let mut service = service_over(recorder.clone(), Duration::from_millis(5));
    let addr = service.serve("127.0.0.1:0").expect("bind ephemeral port");

    let (status, body) = http_get(addr, "/healthz").expect("GET /healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"status\":\"ok\""), "body: {body}");
    assert!(body.contains("\"grains_requested\":4"), "body: {body}");
    assert!(body.contains("\"grains_done\":1"), "body: {body}");
    assert!(body.contains("\"fraction\":0.25"), "body: {body}");
    assert!(body.contains("\"ticks\":"), "body: {body}");

    let (status, _) = http_get(addr, "/does-not-exist").expect("GET unknown");
    assert_eq!(status, 404);
    // The service still answers after a 404.
    let (status, _) = http_get(addr, "/healthz").expect("GET /healthz again");
    assert_eq!(status, 200);
    service.shutdown();
}

/// `/timeline` serves the live span ring as a Chrome trace when a
/// timeline is attached, and an empty trace when none is.
#[test]
fn timeline_endpoint_serves_live_ring() {
    let recorder = Arc::new(MetricsRecorder::new());
    let timeline = Arc::new(Timeline::new());
    timeline.record(
        Stage::Replay,
        std::time::Instant::now(),
        Duration::from_micros(90),
        0,
        reuselens_obs::TimelineArgs {
            grain: Some(64),
            ..reuselens_obs::TimelineArgs::default()
        },
    );
    let mut service = TelemetryService::start(
        recorder,
        Some(timeline),
        ServiceConfig {
            tick: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    );
    let addr = service.serve("127.0.0.1:0").expect("bind ephemeral port");
    let (status, body) = http_get(addr, "/timeline").expect("GET /timeline");
    assert_eq!(status, 200);
    assert!(body.contains("\"traceEvents\""), "body: {body}");
    assert!(body.contains("\"replay\""), "body: {body}");
    service.shutdown();

    let mut bare = service_over(Arc::new(MetricsRecorder::new()), Duration::from_millis(5));
    let addr = bare.serve("127.0.0.1:0").expect("bind ephemeral port");
    let (status, body) = http_get(addr, "/timeline").expect("GET /timeline, no ring");
    assert_eq!(status, 200);
    assert!(body.contains("\"traceEvents\""), "body: {body}");
    service_shutdown_quickly(bare);
}

/// Shutdown must be prompt even with a sleepy tick (covered in unit
/// tests); here it just must not hang the integration thread.
fn service_shutdown_quickly(service: TelemetryService) {
    service.shutdown();
}

/// Satellite: the aggregator keeps snapshotting while other threads
/// install and uninstall process-global recorders and hammer the HTTP
/// surface. Nothing may panic or tear: every sampled counter series is
/// monotone non-decreasing, and every scrape parses as a full exporter
/// page.
#[test]
fn aggregator_survives_concurrent_install_uninstall() {
    let _guard = INSTALL_LOCK.lock().expect("install lock");
    let service_recorder = Arc::new(MetricsRecorder::new());
    let mut service = service_over(service_recorder.clone(), Duration::from_millis(1));
    let addr = service.serve("127.0.0.1:0").expect("bind ephemeral port");

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Churn the process-global slot: install fresh recorders,
        // install the service's own recorder, uninstall, repeat.
        let churn_stop = stop.clone();
        let churn_recorder = service_recorder.clone();
        s.spawn(move || {
            while !churn_stop.load(Ordering::Relaxed) {
                let fresh: Arc<dyn Recorder> = Arc::new(MetricsRecorder::new());
                reuselens_obs::install(fresh);
                reuselens_obs::add(Counter::EventsDecoded, 1);
                reuselens_obs::install(churn_recorder.clone());
                reuselens_obs::add(Counter::EventsDecoded, 1);
                reuselens_obs::uninstall();
                reuselens_obs::add(Counter::EventsDecoded, 1);
            }
        });
        // Writer thread: grow the service's own recorder the whole time,
        // so the aggregator has real motion to sample.
        let write_stop = stop.clone();
        let writer = service_recorder.clone();
        s.spawn(move || {
            let mut i = 0u64;
            while !write_stop.load(Ordering::Relaxed) {
                writer.add(Counter::AccessesDecoded, 3);
                writer.record_span(Stage::Replay, Duration::from_micros(50), 1);
                if i.is_multiple_of(64) {
                    writer.record_grain(&GrainProfile {
                        block_size: 64,
                        wall: Duration::from_micros(200),
                        events: 1000,
                        distinct_blocks: 10,
                        tree_nodes: 10,
                        status: GrainStatus::Completed,
                        blocks_sampled: 0,
                        blocks_evicted: 0,
                        sample_inv: 0,
                    });
                }
                i += 1;
            }
        });
        // Scraper threads: live HTTP traffic against both endpoints.
        for path in ["/metrics", "/healthz"] {
            let scrape_stop = stop.clone();
            s.spawn(move || {
                while !scrape_stop.load(Ordering::Relaxed) {
                    let (status, body) = http_get(addr, path).expect("scrape during churn");
                    assert_eq!(status, 200, "{path} failed mid-churn");
                    assert!(!body.is_empty());
                }
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
    });
    reuselens_obs::uninstall();

    // The sampled series must be monotone: counters only grow, and a
    // torn read would show up as a dip.
    let series = service.counter_series(Counter::AccessesDecoded);
    assert!(series.len() >= 2, "aggregator took {} samples", series.len());
    assert!(
        series.windows(2).all(|w| w[0] <= w[1]),
        "counter series regressed: {series:?}"
    );
    assert!(service.ticks() > 0);
    service.shutdown();
}

/// Events emitted through the process-global slot land in the installed
/// JSONL log with the documented envelope and typed fields.
#[test]
fn emitted_events_carry_typed_jsonl_fields() {
    let _guard = INSTALL_LOCK.lock().expect("install lock");
    let log = Arc::new(EventLog::to_vec());
    reuselens_obs::install_events(log.clone());
    reuselens_obs::emit(EventKind::GrainCompleted {
        grain: 4096,
        events: 151_100,
        distinct_blocks: 42,
        wall_ns: 7_000_123,
    });
    reuselens_obs::emit(EventKind::CheckpointRejected {
        path: "ckpt/grain-64.bin".into(),
        reason: "truncated \"frame\"".into(),
    });
    reuselens_obs::uninstall_events();
    reuselens_obs::emit(EventKind::GrainCompleted {
        grain: 1,
        events: 1,
        distinct_blocks: 1,
        wall_ns: 1,
    });

    let captured = log.captured();
    let lines: Vec<&str> = captured.lines().collect();
    assert_eq!(lines.len(), 2, "post-uninstall emit must not land");
    assert!(
        lines[0].contains(
            "\"severity\":\"info\",\"event\":\"grain_completed\",\"grain\":4096,\
             \"events\":151100,\"distinct_blocks\":42,\"wall_ns\":7000123"
        ),
        "line: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"severity\":\"warn\",\"event\":\"checkpoint_rejected\""),
        "line: {}",
        lines[1]
    );
    // JSON string escaping survives the round trip.
    assert!(
        lines[1].contains("\"reason\":\"truncated \\\"frame\\\"\""),
        "line: {}",
        lines[1]
    );
    for line in &lines {
        assert!(line.starts_with("{\"t_mono_ns\":"), "line: {line}");
        assert!(line.ends_with('}'), "line: {line}");
    }
}

/// The heartbeat, when configured, flows through the event log as a
/// structured `heartbeat` event.
#[test]
fn heartbeat_emits_structured_events() {
    let _guard = INSTALL_LOCK.lock().expect("install lock");
    let log = Arc::new(EventLog::to_vec());
    reuselens_obs::install_events(log.clone());
    let recorder = Arc::new(MetricsRecorder::new());
    recorder.add(Counter::GrainsRequested, 2);
    recorder.add(Counter::GrainsCompleted, 1);
    let service = TelemetryService::start(
        recorder,
        None,
        ServiceConfig {
            tick: Duration::from_millis(5),
            heartbeat: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        },
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !log.captured().contains("\"event\":\"heartbeat\"") {
        assert!(
            std::time::Instant::now() < deadline,
            "no heartbeat event within 5s; captured: {}",
            log.captured()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown();
    reuselens_obs::uninstall_events();
    let captured = log.captured();
    let beat = captured
        .lines()
        .find(|l| l.contains("\"event\":\"heartbeat\""))
        .expect("heartbeat line");
    assert!(beat.contains("\"uptime_s\":"), "line: {beat}");
    assert!(beat.contains("\"stage\":"), "line: {beat}");
    assert!(beat.contains("\"grains_done\":1"), "line: {beat}");
    assert!(beat.contains("\"grains_requested\":2"), "line: {beat}");
    assert!(beat.contains("\"events_per_s\":"), "line: {beat}");
}
