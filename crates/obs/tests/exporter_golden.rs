//! Golden snapshots of both exporters.
//!
//! A fixed, fully populated recorder (every counter, every gauge, a
//! nested span pattern) is snapshotted with wall-clock durations zeroed
//! ([`MetricsSnapshot::zero_timings`]) so both rendered strings are
//! byte-exact and machine-independent. Any formatting drift — renamed
//! series, changed help text, shifted columns — fails here first, before
//! it breaks a downstream scrape config.

use reuselens_obs::{Counter, Gauge, GrainProfile, GrainStatus, MetricsRecorder, Recorder, Stage};
use std::time::Duration;

/// Every counter at `(index + 1) * 10`, every gauge at `(index + 1) * 7`,
/// a span pattern covering nesting (decode under capture, partition
/// workers under replay), repetition (two replays, two partitions), and
/// absence (no report span), and a grain-profile set covering every
/// status plus same-grain aggregation (grain 64 twice).
fn populated() -> MetricsRecorder {
    let r = MetricsRecorder::new();
    for (i, c) in Counter::ALL.into_iter().enumerate() {
        r.add(c, (i as u64 + 1) * 10);
    }
    for (i, g) in Gauge::ALL.into_iter().enumerate() {
        r.set_gauge(g, (i as u64 + 1) * 7);
    }
    r.record_span(Stage::Capture, Duration::from_millis(12), 1);
    r.record_span(Stage::Decode, Duration::from_millis(3), 2);
    r.record_span(Stage::Replay, Duration::from_millis(40), 1);
    r.record_span(Stage::Replay, Duration::from_millis(44), 1);
    r.record_span(Stage::Partition, Duration::from_millis(20), 2);
    r.record_span(Stage::Partition, Duration::from_millis(24), 2);
    r.record_span(Stage::Sweep, Duration::from_micros(80), 1);
    r.record_grain(&GrainProfile {
        block_size: 64,
        wall: Duration::from_millis(40),
        events: 500_000,
        distinct_blocks: 4096,
        tree_nodes: 4096,
        status: GrainStatus::Completed,
        blocks_sampled: 0,
        blocks_evicted: 0,
        sample_inv: 0,
    });
    // A sampled grain: scaled footprint, tracked-set tree size, and a
    // nonzero inverse rate that must render as `1/10` in the summary.
    r.record_grain(&GrainProfile {
        block_size: 64,
        wall: Duration::from_millis(44),
        events: 500_000,
        distinct_blocks: 4096,
        tree_nodes: 4100,
        status: GrainStatus::Retried,
        blocks_sampled: 410,
        blocks_evicted: 22,
        sample_inv: 10,
    });
    r.record_grain(&GrainProfile {
        block_size: 4096,
        wall: Duration::ZERO,
        events: 0,
        distinct_blocks: 0,
        tree_nodes: 0,
        status: GrainStatus::Failed,
        blocks_sampled: 0,
        blocks_evicted: 0,
        sample_inv: 0,
    });
    r
}

const GOLDEN_PROMETHEUS: &str = r#"# HELP reuselens_events_captured_total Events captured into trace buffers (accesses + scope transitions).
# TYPE reuselens_events_captured_total counter
reuselens_events_captured_total 10
# HELP reuselens_accesses_captured_total Memory-access events captured into trace buffers.
# TYPE reuselens_accesses_captured_total counter
reuselens_accesses_captured_total 20
# HELP reuselens_bytes_encoded_total Bytes occupied by captured columnar encodings.
# TYPE reuselens_bytes_encoded_total counter
reuselens_bytes_encoded_total 30
# HELP reuselens_events_decoded_total Events decoded out of trace buffers across all replays.
# TYPE reuselens_events_decoded_total counter
reuselens_events_decoded_total 40
# HELP reuselens_accesses_decoded_total Memory-access events decoded out of trace buffers.
# TYPE reuselens_accesses_decoded_total counter
reuselens_accesses_decoded_total 50
# HELP reuselens_blocks_tracked_total Distinct blocks entered into analyzer block tables.
# TYPE reuselens_blocks_tracked_total counter
reuselens_blocks_tracked_total 60
# HELP reuselens_tree_reinserts_total Order-statistic-tree reinserts (one per measured non-cold reuse).
# TYPE reuselens_tree_reinserts_total counter
reuselens_tree_reinserts_total 70
# HELP reuselens_grains_requested_total Grains submitted to the replay engine.
# TYPE reuselens_grains_requested_total counter
reuselens_grains_requested_total 80
# HELP reuselens_grains_completed_total Grains whose replay produced a profile.
# TYPE reuselens_grains_completed_total counter
reuselens_grains_completed_total 90
# HELP reuselens_grains_failed_total Grains declared dead after their final attempt.
# TYPE reuselens_grains_failed_total counter
reuselens_grains_failed_total 100
# HELP reuselens_grains_retried_total Sequential retries of panicked grains.
# TYPE reuselens_grains_retried_total counter
reuselens_grains_retried_total 110
# HELP reuselens_sweep_configs_scored_total Candidate hierarchies scored successfully.
# TYPE reuselens_sweep_configs_scored_total counter
reuselens_sweep_configs_scored_total 120
# HELP reuselens_sweep_configs_failed_total Candidate hierarchies that failed scoring.
# TYPE reuselens_sweep_configs_failed_total counter
reuselens_sweep_configs_failed_total 130
# HELP reuselens_reports_generated_total Attribution reports generated.
# TYPE reuselens_reports_generated_total counter
reuselens_reports_generated_total 140
# HELP reuselens_timeline_dropped_total Timeline events dropped by full ring-buffer shards.
# TYPE reuselens_timeline_dropped_total counter
reuselens_timeline_dropped_total 150
# HELP reuselens_blocks_sampled_total Distinct blocks admitted by the spatial-hash sampler (unscaled).
# TYPE reuselens_blocks_sampled_total counter
reuselens_blocks_sampled_total 160
# HELP reuselens_blocks_evicted_total Tracked blocks evicted by adaptive sampling rate drops.
# TYPE reuselens_blocks_evicted_total counter
reuselens_blocks_evicted_total 170
# HELP reuselens_sample_rate_drops_total Adaptive sampling rate halvings.
# TYPE reuselens_sample_rate_drops_total counter
reuselens_sample_rate_drops_total 180
# HELP reuselens_partitions_spawned_total Time-partition workers spawned by single-grain parallel replay.
# TYPE reuselens_partitions_spawned_total counter
reuselens_partitions_spawned_total 190
# HELP reuselens_partition_stitch_total Cross-partition reuses resolved during partitioned-replay stitching.
# TYPE reuselens_partition_stitch_total counter
reuselens_partition_stitch_total 200
# HELP reuselens_checkpoints_written_total Crash-safety snapshots written by checkpointed replay.
# TYPE reuselens_checkpoints_written_total counter
reuselens_checkpoints_written_total 210
# HELP reuselens_checkpoints_resumed_total Grains resumed from a validated snapshot.
# TYPE reuselens_checkpoints_resumed_total counter
reuselens_checkpoints_resumed_total 220
# HELP reuselens_checkpoints_rejected_total Snapshot files rejected during resume (torn, corrupted, or mismatched).
# TYPE reuselens_checkpoints_rejected_total counter
reuselens_checkpoints_rejected_total 230
# HELP reuselens_static_refs_covered_total References covered symbolically by the static estimator.
# TYPE reuselens_static_refs_covered_total counter
reuselens_static_refs_covered_total 240
# HELP reuselens_static_refs_fallback_total References the static estimator modeled with the irregular fallback.
# TYPE reuselens_static_refs_fallback_total counter
reuselens_static_refs_fallback_total 250
# HELP reuselens_jobs_accepted_total Analysis jobs accepted onto the daemon queue.
# TYPE reuselens_jobs_accepted_total counter
reuselens_jobs_accepted_total 260
# HELP reuselens_jobs_completed_total Analysis jobs that produced a success response.
# TYPE reuselens_jobs_completed_total counter
reuselens_jobs_completed_total 270
# HELP reuselens_jobs_failed_total Analysis jobs that ended in a typed error response.
# TYPE reuselens_jobs_failed_total counter
reuselens_jobs_failed_total 280
# HELP reuselens_jobs_rejected_total Analysis jobs rejected before queueing (full queue or shutdown).
# TYPE reuselens_jobs_rejected_total counter
reuselens_jobs_rejected_total 290
# HELP reuselens_budget_events Events replayed at the latest budget checkpoint.
# TYPE reuselens_budget_events gauge
reuselens_budget_events 7
# HELP reuselens_budget_distinct_blocks Distinct blocks tracked at the latest budget checkpoint.
# TYPE reuselens_budget_distinct_blocks gauge
reuselens_budget_distinct_blocks 14
# HELP reuselens_budget_tree_nodes Live tree nodes at the latest budget checkpoint.
# TYPE reuselens_budget_tree_nodes gauge
reuselens_budget_tree_nodes 21
# HELP reuselens_sampling_inv_rate Inverse sampling rate of the most recently finished sampled grain.
# TYPE reuselens_sampling_inv_rate gauge
reuselens_sampling_inv_rate 28
# HELP reuselens_snapshot_bytes Bytes of the most recently written crash-safety snapshot.
# TYPE reuselens_snapshot_bytes gauge
reuselens_snapshot_bytes 35
# HELP reuselens_job_queue_depth Jobs sitting on the daemon queue (accepted, not yet running).
# TYPE reuselens_job_queue_depth gauge
reuselens_job_queue_depth 42
# HELP reuselens_stage_spans_total Completed spans per pipeline stage.
# TYPE reuselens_stage_spans_total counter
reuselens_stage_spans_total{stage="capture"} 1
reuselens_stage_spans_total{stage="decode"} 1
reuselens_stage_spans_total{stage="replay"} 2
reuselens_stage_spans_total{stage="partition"} 2
reuselens_stage_spans_total{stage="sweep"} 1
reuselens_stage_spans_total{stage="report"} 0
reuselens_stage_spans_total{stage="checkpoint"} 0
reuselens_stage_spans_total{stage="estimate"} 0
# HELP reuselens_stage_seconds_total Wall-clock seconds spent per pipeline stage.
# TYPE reuselens_stage_seconds_total counter
reuselens_stage_seconds_total{stage="capture"} 0.000000000
reuselens_stage_seconds_total{stage="decode"} 0.000000000
reuselens_stage_seconds_total{stage="replay"} 0.000000000
reuselens_stage_seconds_total{stage="partition"} 0.000000000
reuselens_stage_seconds_total{stage="sweep"} 0.000000000
reuselens_stage_seconds_total{stage="report"} 0.000000000
reuselens_stage_seconds_total{stage="checkpoint"} 0.000000000
reuselens_stage_seconds_total{stage="estimate"} 0.000000000
# HELP reuselens_grain_replays_total Replays recorded per grain and status.
# TYPE reuselens_grain_replays_total counter
reuselens_grain_replays_total{grain="64",status="completed"} 1
reuselens_grain_replays_total{grain="64",status="retried"} 1
reuselens_grain_replays_total{grain="4096",status="failed"} 1
# HELP reuselens_grain_seconds_total Wall-clock seconds spent replaying per grain.
# TYPE reuselens_grain_seconds_total counter
reuselens_grain_seconds_total{grain="64"} 0.000000000
reuselens_grain_seconds_total{grain="4096"} 0.000000000
# HELP reuselens_grain_events_total Events replayed per grain.
# TYPE reuselens_grain_events_total counter
reuselens_grain_events_total{grain="64"} 1000000
reuselens_grain_events_total{grain="4096"} 0
# HELP reuselens_grain_tree_nodes_peak Peak order-statistic-tree nodes per grain.
# TYPE reuselens_grain_tree_nodes_peak gauge
reuselens_grain_tree_nodes_peak{grain="64"} 4100
reuselens_grain_tree_nodes_peak{grain="4096"} 0
"#;

const GOLDEN_SUMMARY: &str = "\
== reuselens pipeline metrics ==
stage                     spans        total         mean
  capture                     1         0 ns         0 ns
    decode                    1         0 ns         0 ns
  replay                      2         0 ns         0 ns
    partition                 2         0 ns         0 ns
  sweep                       1         0 ns         0 ns
grain profiles
     grain     status         wall       events     events/s     blocks       tree   sample
        64  completed         0 ns       500000            -       4096       4096        -
        64    retried         0 ns       500000            -       4096       4100     1/10
      4096     failed         0 ns            0            -          0          0        -
counters
  events_captured                          10
  accesses_captured                        20
  bytes_encoded                            30
  events_decoded                           40
  accesses_decoded                         50
  blocks_tracked                           60
  tree_reinserts                           70
  grains_requested                         80
  grains_completed                         90
  grains_failed                           100
  grains_retried                          110
  sweep_configs_scored                    120
  sweep_configs_failed                    130
  reports_generated                       140
  timeline_dropped                        150
  blocks_sampled                          160
  blocks_evicted                          170
  sample_rate_drops                       180
  partitions_spawned                      190
  partition_stitch                        200
  checkpoints_written                     210
  checkpoints_resumed                     220
  checkpoints_rejected                    230
  static_refs_covered                     240
  static_refs_fallback                    250
  jobs_accepted                           260
  jobs_completed                          270
  jobs_failed                             280
  jobs_rejected                           290
gauges
  budget_events                             7
  budget_distinct_blocks                   14
  budget_tree_nodes                        21
  sampling_inv_rate                        28
  snapshot_bytes                           35
  job_queue_depth                          42
";

#[test]
fn prometheus_export_matches_golden() {
    let mut snap = populated().snapshot();
    snap.zero_timings();
    assert_eq!(snap.to_prometheus(), GOLDEN_PROMETHEUS);
}

#[test]
fn summary_export_matches_golden() {
    let mut snap = populated().snapshot();
    snap.zero_timings();
    assert_eq!(snap.to_summary(), GOLDEN_SUMMARY);
}

