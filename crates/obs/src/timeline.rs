//! The timeline: a bounded, sharded per-thread buffer of completed span
//! events, exported as Chrome trace-event JSON.
//!
//! Aggregate counters (§ [`crate::MetricsRecorder`]) say *how much* time
//! the pipeline spends per stage; the timeline says *where across threads
//! and grains* it goes. Every completed [`crate::span`] whose lifetime
//! overlapped an installed [`Timeline`] becomes one [`TimelineEvent`]
//! carrying monotonic begin/end timestamps (nanoseconds since the
//! timeline's epoch), a dense in-process thread index, the span's nesting
//! depth, and its typed [`TimelineArgs`] (grain, events replayed, distinct
//! blocks, tree nodes, hierarchy name).
//!
//! ## Sharding and overflow policy
//!
//! Writers never share a cacheline on the happy path: each thread owns a
//! shard chosen by its dense thread index, so concurrent grain replays
//! append without contending (two threads only meet on a shard when more
//! threads than shards exist — each shard is then a briefly-held mutex,
//! never a rendezvous). Each shard is a ring holding at most
//! `capacity_per_shard` events: when full, the **oldest** event in that
//! shard is dropped, the [`Counter::TimelineDropped`](crate::Counter)
//! counter ticks, and the push proceeds. A full timeline therefore never
//! blocks the pipeline and never grows past its configured bound.
//!
//! Events are recorded only when a span *closes*, so an install or
//! uninstall mid-run can never leave a half-open ("dangling") event in the
//! buffer: a span that closes after [`crate::uninstall_timeline`] is
//! simply not recorded, and one that opened before
//! [`crate::install_timeline`] is recorded with its begin clamped to the
//! timeline's epoch.
//!
//! # Examples
//!
//! ```
//! use reuselens_obs as obs;
//! use std::sync::Arc;
//!
//! let timeline = Arc::new(obs::Timeline::new());
//! obs::install_timeline(timeline.clone());
//! {
//!     let mut span = obs::span_with(obs::Stage::Replay, || obs::TimelineArgs {
//!         grain: Some(64),
//!         ..obs::TimelineArgs::default()
//!     });
//!     span.record(|args| args.events = Some(1024));
//! }
//! obs::uninstall_timeline();
//!
//! let snapshot = timeline.snapshot();
//! assert_eq!(snapshot.events.len(), 1);
//! assert_eq!(snapshot.events[0].args.grain, Some(64));
//! assert!(obs::format_chrome_trace(&snapshot).contains("\"name\":\"replay\""));
//! ```

use crate::{Counter, Stage};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default number of shards; more simultaneous writer threads than this
/// share shards (correct, briefly contended) rather than failing.
const DEFAULT_SHARDS: usize = 64;

/// Default bound on events retained per shard.
const DEFAULT_CAPACITY_PER_SHARD: usize = 8192;

/// Dense in-process thread indices: assigned once per thread, stable for
/// the thread's lifetime, and small enough to shard and to render as
/// `tid`s in the Chrome trace.
static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_INDEX: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// This thread's dense index, assigned on first use.
fn thread_index() -> u64 {
    THREAD_INDEX.with(|slot| match slot.get() {
        Some(index) => index,
        None => {
            let index = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(index));
            index
        }
    })
}

/// Typed arguments attached to one span's timeline event. Every field is
/// optional; instrumented code fills in what its stage knows — a replay
/// span carries its grain and replay totals, a sweep span its hierarchy
/// name. Rendered as the `args` object of the Chrome trace event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineArgs {
    /// The grain (block size in bytes) a replay span analyzed.
    pub grain: Option<u64>,
    /// Events replayed or decoded within the span.
    pub events: Option<u64>,
    /// Distinct blocks the span's analyzer ended with.
    pub distinct_blocks: Option<u64>,
    /// Peak order-statistic-tree nodes the span's analyzer held.
    pub tree_nodes: Option<u64>,
    /// Inverse sampling rate a sampled replay span finished at.
    pub sample_inv: Option<u64>,
    /// Name of the hierarchy a sweep or report span scored.
    pub hierarchy: Option<String>,
}

impl TimelineArgs {
    /// True when no argument is set.
    pub fn is_empty(&self) -> bool {
        self.grain.is_none()
            && self.events.is_none()
            && self.distinct_blocks.is_none()
            && self.tree_nodes.is_none()
            && self.sample_inv.is_none()
            && self.hierarchy.is_none()
    }
}

/// One completed span on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// The pipeline stage the span timed.
    pub stage: Stage,
    /// Nanoseconds from the timeline's epoch to the span's open (clamped
    /// to zero for spans opened before the timeline was installed).
    pub begin_ns: u64,
    /// Nanoseconds from the epoch to the span's close; `>= begin_ns`.
    pub end_ns: u64,
    /// Dense in-process index of the thread the span closed on.
    pub thread: u64,
    /// Thread-local nesting depth the span ran at (1 = top level).
    pub depth: u32,
    /// Per-shard sequence number; orders events that share a timestamp.
    pub seq: u64,
    /// The span's typed arguments.
    pub args: TimelineArgs,
}

/// One thread-affine ring of events.
#[derive(Debug, Default)]
struct Shard {
    ring: VecDeque<TimelineEvent>,
    seq: u64,
}

/// The bounded, sharded timeline buffer. Install with
/// [`crate::install_timeline`]; snapshot any time with
/// [`snapshot`](Timeline::snapshot).
#[derive(Debug)]
pub struct Timeline {
    epoch: Instant,
    shards: Box<[Mutex<Shard>]>,
    capacity_per_shard: usize,
    dropped: AtomicU64,
}

impl Timeline {
    /// A timeline with the default geometry (64 shards × 8192 events).
    pub fn new() -> Timeline {
        Timeline::with_capacity(DEFAULT_SHARDS, DEFAULT_CAPACITY_PER_SHARD)
    }

    /// A timeline with `shards` rings of at most `capacity_per_shard`
    /// events each (both clamped to at least 1).
    pub fn with_capacity(shards: usize, capacity_per_shard: usize) -> Timeline {
        let shards = shards.max(1);
        Timeline {
            epoch: Instant::now(),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Events dropped so far by full shards.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one completed span. Called from [`crate::SpanGuard`]'s drop
    /// on the closing thread; also usable directly by tests.
    pub fn record(&self, stage: Stage, start: Instant, wall: Duration, depth: u32, args: TimelineArgs) {
        let begin_ns = duration_ns(start.saturating_duration_since(self.epoch));
        let end_ns = begin_ns.saturating_add(duration_ns(wall));
        let thread = thread_index();
        let shard = &self.shards[(thread % self.shards.len() as u64) as usize];
        // Poison-tolerant like the recorder slot: a panic while a shard
        // was held must not wedge every later span on that shard.
        let mut shard = match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if shard.ring.len() >= self.capacity_per_shard {
            shard.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            crate::add(Counter::TimelineDropped, 1);
        }
        let seq = shard.seq;
        shard.seq += 1;
        shard.ring.push_back(TimelineEvent {
            stage,
            begin_ns,
            end_ns,
            thread,
            depth,
            seq,
            args,
        });
    }

    /// A point-in-time merge of every shard, sorted by begin timestamp
    /// (ties broken by thread then sequence), plus the drop count.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let mut events = Vec::new();
        for shard in self.shards.iter() {
            let shard = match shard.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            events.extend(shard.ring.iter().cloned());
        }
        events.sort_by_key(|e| (e.begin_ns, e.thread, e.seq));
        TimelineSnapshot {
            events,
            dropped: self.dropped(),
        }
    }
}

impl Default for Timeline {
    fn default() -> Timeline {
        Timeline::new()
    }
}

/// Saturating nanoseconds of a duration.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A merged, ordered copy of a [`Timeline`]'s events. Plain data: tests
/// build it directly and [`normalize`](TimelineSnapshot::normalize) it
/// for machine-independent golden comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Completed span events, ordered by `(begin_ns, thread, seq)`.
    pub events: Vec<TimelineEvent>,
    /// Events dropped by full shards over the timeline's lifetime.
    pub dropped: u64,
}

impl TimelineSnapshot {
    /// Events whose stage is `stage`, in timeline order.
    pub fn stage_events(&self, stage: Stage) -> impl Iterator<Item = &TimelineEvent> {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    /// Makes the snapshot machine-independent for golden tests: zeroes
    /// every timestamp and renumbers threads densely in order of first
    /// appearance. Event order (already fixed at snapshot time) and all
    /// args are preserved.
    pub fn normalize(&mut self) {
        let mut remap: Vec<u64> = Vec::new();
        for event in &mut self.events {
            let tid = match remap.iter().position(|&t| t == event.thread) {
                Some(i) => i as u64,
                None => {
                    remap.push(event.thread);
                    (remap.len() - 1) as u64
                }
            };
            event.thread = tid;
            event.begin_ns = 0;
            event.end_ns = 0;
        }
    }

    /// Renders this snapshot with [`format_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        format_chrome_trace(self)
    }
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, the unit Chrome trace `ts` and
/// `dur` fields use.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders a timeline snapshot as Chrome trace-event JSON (the
/// `traceEvents` object form), loadable in `chrome://tracing` and
/// Perfetto. One complete (`"ph":"X"`) event per span, `ts`/`dur` in
/// microseconds, `tid` the dense thread index, and the span's typed args
/// (plus its nesting depth) under `args`. The drop count is reported in
/// `otherData` so a truncated capture is visible in the viewer.
///
/// The output is a pure function of the snapshot — byte-exact golden
/// tests normalize the snapshot first
/// ([`TimelineSnapshot::normalize`]).
pub fn format_chrome_trace(snapshot: &TimelineSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in snapshot.events.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"reuselens\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}",
            event.stage.name(),
            event.thread,
            micros(event.begin_ns),
            micros(event.end_ns.saturating_sub(event.begin_ns)),
            event.depth,
        );
        if let Some(grain) = event.args.grain {
            let _ = write!(out, ",\"grain\":{grain}");
        }
        if let Some(events) = event.args.events {
            let _ = write!(out, ",\"events\":{events}");
        }
        if let Some(blocks) = event.args.distinct_blocks {
            let _ = write!(out, ",\"distinct_blocks\":{blocks}");
        }
        if let Some(nodes) = event.args.tree_nodes {
            let _ = write!(out, ",\"tree_nodes\":{nodes}");
        }
        if let Some(inv) = event.args.sample_inv {
            let _ = write!(out, ",\"sample_inv\":{inv}");
        }
        if let Some(hierarchy) = &event.args.hierarchy {
            let _ = write!(out, ",\"hierarchy\":\"{}\"", escape_json(hierarchy));
        }
        out.push_str("}}");
        if i + 1 < snapshot.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"timeline_dropped_total\":{}}}}}",
        snapshot.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(stage: Stage, begin_ns: u64, end_ns: u64, thread: u64, seq: u64) -> TimelineEvent {
        TimelineEvent {
            stage,
            begin_ns,
            end_ns,
            thread,
            depth: 1,
            seq,
            args: TimelineArgs::default(),
        }
    }

    #[test]
    fn record_keeps_order_and_bounds() {
        let tl = Timeline::with_capacity(1, 3);
        let epoch = tl.epoch();
        for i in 0..5u64 {
            tl.record(
                Stage::Replay,
                epoch + Duration::from_nanos(i * 10),
                Duration::from_nanos(5),
                1,
                TimelineArgs {
                    grain: Some(i),
                    ..TimelineArgs::default()
                },
            );
        }
        let snap = tl.snapshot();
        assert_eq!(snap.events.len(), 3, "ring bounded at capacity");
        assert_eq!(snap.dropped, 2, "oldest two dropped");
        let grains: Vec<u64> = snap.events.iter().filter_map(|e| e.args.grain).collect();
        assert_eq!(grains, vec![2, 3, 4], "survivors are the newest events");
        for e in &snap.events {
            assert!(e.end_ns >= e.begin_ns);
        }
    }

    #[test]
    fn spans_opened_before_epoch_are_clamped() {
        let early = Instant::now();
        let tl = Timeline::new();
        tl.record(Stage::Capture, early, Duration::from_nanos(7), 1, TimelineArgs::default());
        let snap = tl.snapshot();
        assert_eq!(snap.events[0].begin_ns, 0);
        assert_eq!(snap.events[0].end_ns, 7);
    }

    #[test]
    fn normalize_renumbers_threads_and_zeroes_timestamps() {
        let mut snap = TimelineSnapshot {
            events: vec![
                event(Stage::Capture, 100, 200, 17, 0),
                event(Stage::Replay, 150, 250, 3, 0),
                event(Stage::Replay, 160, 260, 17, 1),
            ],
            dropped: 0,
        };
        snap.normalize();
        let tids: Vec<u64> = snap.events.iter().map(|e| e.thread).collect();
        assert_eq!(tids, vec![0, 1, 0]);
        assert!(snap.events.iter().all(|e| e.begin_ns == 0 && e.end_ns == 0));
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let snap = TimelineSnapshot {
            events: vec![event(Stage::Sweep, 1_500, 4_000, 0, 0)],
            dropped: 3,
        };
        let json = format_chrome_trace(&snap);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"timeline_dropped_total\":3"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
