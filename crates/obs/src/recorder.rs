//! The recorder trait and the default all-atomic implementation.

use crate::{Counter, Gauge, Stage};
use std::array;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How one grain's replay ended, as recorded in its [`GrainProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrainStatus {
    /// The replay completed on its first attempt.
    Completed,
    /// The replay panicked once and completed on its sequential retry.
    Retried,
    /// The grain was declared dead after its final attempt.
    Failed,
}

impl GrainStatus {
    /// Stable lowercase name, used as the Prometheus `status` label.
    pub fn name(self) -> &'static str {
        match self {
            GrainStatus::Completed => "completed",
            GrainStatus::Retried => "retried",
            GrainStatus::Failed => "failed",
        }
    }
}

/// Per-grain cost attribution: what one grain's replay cost the analyzer,
/// mirroring the paper's scope-tree attribution but applied to the
/// analyzer itself. Recorded once per requested grain by the replay
/// engine; a failed grain reports zeroed measurements and its status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrainProfile {
    /// The grain (block size in bytes) this replay analyzed.
    pub block_size: u64,
    /// Wall time the grain's replay thread spent (zero for failures).
    pub wall: Duration,
    /// Events replayed through the grain's analyzer.
    pub events: u64,
    /// Distinct blocks the grain's analyzer ended with.
    pub distinct_blocks: u64,
    /// Peak live order-statistic-tree nodes (for exact grains this equals
    /// distinct blocks — the tree only grows — but it is measured
    /// independently off the tree; sampled grains' trees shrink on
    /// eviction, so there it is the final tracked-block count).
    pub tree_nodes: u64,
    /// How the replay ended.
    pub status: GrainStatus,
    /// Distinct blocks the spatial-hash sampler admitted (unscaled);
    /// zero for exact grains.
    pub blocks_sampled: u64,
    /// Tracked blocks evicted by adaptive rate drops; zero for exact and
    /// fixed-rate grains.
    pub blocks_evicted: u64,
    /// Inverse sampling rate the grain finished at; zero for exact grains
    /// (a sampled grain reports at least 1).
    pub sample_inv: u64,
}

impl GrainProfile {
    /// Replay throughput in events per second, or zero when the wall time
    /// is zero (failed grains, zeroed golden snapshots).
    pub fn events_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Receives instrumentation from the pipeline. Implementations must be
/// cheap and wait-free-ish: they are called from replay threads with bulk
/// deltas (per batch / per grain / per buffer, never per event) and must
/// never panic — a panicking recorder poisons nothing, but its
/// measurement is lost.
pub trait Recorder: Send + Sync {
    /// Adds a bulk delta to a counter.
    fn add(&self, counter: Counter, delta: u64);
    /// Sets a gauge to its latest observed value.
    fn set_gauge(&self, gauge: Gauge, value: u64);
    /// Records one completed span: its stage, wall time, and the
    /// thread-local nesting depth it ran at (1 = top level).
    fn record_span(&self, stage: Stage, wall: Duration, depth: u32);
    /// Records one grain's cost profile. Default: ignored, so recorders
    /// that only aggregate counters need not store a table.
    fn record_grain(&self, profile: &GrainProfile) {
        let _ = profile;
    }
}

/// Bound on stored grain profiles: one row per grain per run is tiny, but
/// a recorder left installed across millions of runs must stay bounded.
/// Past the cap new rows are dropped (the aggregate grain counters keep
/// counting).
const MAX_GRAIN_PROFILES: usize = 65_536;

/// The default [`Recorder`]: plain relaxed atomics, no locks, no
/// allocation after construction. Safe to share across every replay and
/// sweep thread; [`snapshot`](MetricsRecorder::snapshot) can be taken at
/// any time (values are each individually consistent).
#[derive(Debug)]
pub struct MetricsRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    span_counts: [AtomicU64; Stage::ALL.len()],
    span_nanos: [AtomicU64; Stage::ALL.len()],
    span_max_nanos: [AtomicU64; Stage::ALL.len()],
    span_depths: [AtomicU64; Stage::ALL.len()],
    // Off the hot path: one push per grain per run, behind a mutex held
    // for the push only (poison-tolerant like the global slots).
    grains: Mutex<Vec<GrainProfile>>,
}

impl MetricsRecorder {
    /// Creates a recorder with every metric at zero.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            counters: array::from_fn(|_| AtomicU64::new(0)),
            gauges: array::from_fn(|_| AtomicU64::new(0)),
            span_counts: array::from_fn(|_| AtomicU64::new(0)),
            span_nanos: array::from_fn(|_| AtomicU64::new(0)),
            span_max_nanos: array::from_fn(|_| AtomicU64::new(0)),
            span_depths: array::from_fn(|_| AtomicU64::new(0)),
            grains: Mutex::new(Vec::new()),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Current value of one gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every metric, ready for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let grains = match self.grains.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        MetricsSnapshot {
            counters: Counter::ALL.map(|c| self.counter(c)),
            gauges: Gauge::ALL.map(|g| self.gauge(g)),
            spans: Stage::ALL.map(|s| SpanStats {
                stage: s,
                count: self.span_counts[s.index()].load(Ordering::Relaxed),
                total: Duration::from_nanos(
                    self.span_nanos[s.index()].load(Ordering::Relaxed),
                ),
                max: Duration::from_nanos(
                    self.span_max_nanos[s.index()].load(Ordering::Relaxed),
                ),
                max_depth: self.span_depths[s.index()].load(Ordering::Relaxed) as u32,
            }),
            grains,
        }
    }
}

impl Default for MetricsRecorder {
    fn default() -> MetricsRecorder {
        MetricsRecorder::new()
    }
}

impl Recorder for MetricsRecorder {
    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
    }

    fn record_span(&self, stage: Stage, wall: Duration, depth: u32) {
        let i = stage.index();
        self.span_counts[i].fetch_add(1, Ordering::Relaxed);
        // Saturating: 2^64 ns is ~584 years of span time.
        let nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        self.span_nanos[i].fetch_add(nanos, Ordering::Relaxed);
        self.span_max_nanos[i].fetch_max(nanos, Ordering::Relaxed);
        self.span_depths[i].fetch_max(u64::from(depth), Ordering::Relaxed);
    }

    fn record_grain(&self, profile: &GrainProfile) {
        let mut grains = match self.grains.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if grains.len() < MAX_GRAIN_PROFILES {
            grains.push(profile.clone());
        }
    }
}

/// Aggregated timing of one stage's spans inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// The stage these spans timed.
    pub stage: Stage,
    /// How many spans completed.
    pub count: u64,
    /// Total wall time across all of them.
    pub total: Duration,
    /// Longest single span — with concurrent spans (partitioned replay
    /// workers) `total` overstates wall time; `max` approximates the
    /// critical path.
    pub max: Duration,
    /// Deepest nesting level observed (1 = top level, 0 = never opened).
    pub max_depth: u32,
}

impl SpanStats {
    /// Mean wall time per span, or zero when none completed.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

/// A point-in-time copy of a [`MetricsRecorder`]'s state. This is what
/// the exporters consume; it is plain data, so tests can normalize it
/// (e.g. [`zero_timings`](Self::zero_timings)) before golden comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, index-aligned with [`Counter::ALL`].
    pub counters: [u64; Counter::ALL.len()],
    /// Gauge values, index-aligned with [`Gauge::ALL`].
    pub gauges: [u64; Gauge::ALL.len()],
    /// Per-stage span statistics, index-aligned with [`Stage::ALL`].
    pub spans: [SpanStats; Stage::ALL.len()],
    /// Per-grain cost profiles, in recording order.
    pub grains: Vec<GrainProfile>,
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Value of one gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()]
    }

    /// Statistics of one stage's spans.
    pub fn stage(&self, stage: Stage) -> SpanStats {
        self.spans[stage.index()]
    }

    /// Zeroes every wall-clock duration, keeping counts and depths.
    /// Golden exporter tests call this so expected output is exact
    /// without depending on the machine's clock.
    pub fn zero_timings(&mut self) {
        for span in &mut self.spans {
            span.total = Duration::ZERO;
            span.max = Duration::ZERO;
        }
        for grain in &mut self.grains {
            grain.wall = Duration::ZERO;
        }
    }

    /// Renders this snapshot with [`format_prometheus`](crate::format_prometheus).
    pub fn to_prometheus(&self) -> String {
        crate::format_prometheus(self)
    }

    /// Renders this snapshot with [`format_summary`](crate::format_summary).
    pub fn to_summary(&self) -> String {
        crate::format_summary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::EventsDecoded, 100);
        rec.add(Counter::EventsDecoded, 23);
        rec.set_gauge(Gauge::BudgetEvents, 5);
        rec.set_gauge(Gauge::BudgetEvents, 3); // last write wins
        rec.record_span(Stage::Replay, Duration::from_millis(4), 1);
        rec.record_span(Stage::Replay, Duration::from_millis(2), 2);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::EventsDecoded), 123);
        assert_eq!(snap.gauge(Gauge::BudgetEvents), 3);
        let replay = snap.stage(Stage::Replay);
        assert_eq!(replay.count, 2);
        assert_eq!(replay.total, Duration::from_millis(6));
        assert_eq!(replay.max, Duration::from_millis(4));
        assert_eq!(replay.max_depth, 2);
        assert_eq!(replay.mean(), Duration::from_millis(3));
        assert_eq!(snap.stage(Stage::Capture).count, 0);
        assert_eq!(snap.stage(Stage::Capture).mean(), Duration::ZERO);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let rec = MetricsRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rec.add(Counter::TreeReinserts, 1);
                        rec.record_span(Stage::Sweep, Duration::from_nanos(10), 1);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::TreeReinserts), 8000);
        assert_eq!(snap.stage(Stage::Sweep).count, 8000);
        assert_eq!(snap.stage(Stage::Sweep).total, Duration::from_nanos(80_000));
    }

    #[test]
    fn zero_timings_keeps_counts() {
        let rec = MetricsRecorder::new();
        rec.record_span(Stage::Capture, Duration::from_secs(1), 1);
        let mut snap = rec.snapshot();
        snap.zero_timings();
        assert_eq!(snap.stage(Stage::Capture).count, 1);
        assert_eq!(snap.stage(Stage::Capture).total, Duration::ZERO);
        assert_eq!(snap.stage(Stage::Capture).max_depth, 1);
    }
}
