//! # reuselens-obs — pipeline observability
//!
//! The toolchain is a measurement instrument: it watches every memory
//! access a program makes and attributes each reuse arc to a scope. An
//! instrument needs its own instrumentation — *and* a proof that watching
//! the pipeline does not change what the pipeline measures. This crate
//! provides the first half; `tests/obs_identity.rs` at the workspace root
//! provides the second.
//!
//! Three pieces:
//!
//! * **Spans** ([`span`]) — monotonic wall-clock timing of the pipeline
//!   stages (capture, validating decode, per-grain replay, sweep scoring,
//!   report generation), with a thread-local nesting depth so a recorder
//!   can reconstruct the hierarchy. Opening a span allocates nothing.
//! * **Counters and gauges** ([`add`], [`set_gauge`]) — typed, fixed-set
//!   pipeline totals (events decoded, blocks tracked, tree reinserts,
//!   grains completed/failed/retried, sweep configs scored, ...) and
//!   budget-progress gauges. Instrumented code always reports *bulk*
//!   deltas (per batch, per grain, per buffer), never per event.
//! * **Exporters** — [`format_summary`] (human-readable) and
//!   [`format_prometheus`] (Prometheus text exposition) over a
//!   [`MetricsSnapshot`].
//!
//! The third generation adds the *live* layer on the same foundations:
//!
//! * **Events** ([`emit`]) — a structured JSONL log ([`EventLog`]) of
//!   discrete occurrences (grain lifecycle, checkpoint writes/resumes,
//!   partition stitches, sampling rate drops, failures) with severities
//!   and monotonic + wall timestamps.
//! * **The telemetry service** ([`TelemetryService`]) — a background
//!   aggregator computing rolling-window rates/progress/ETA from
//!   recorder snapshots, stderr heartbeats, and a zero-dependency HTTP
//!   server answering `GET /metrics`, `/healthz`, and `/timeline` while
//!   the pipeline runs.
//!
//! ## Zero cost when disabled
//!
//! Nothing is recorded until a [`Recorder`] is installed with [`install`].
//! Every instrumentation entry point is `#[inline]` and first checks one
//! relaxed atomic load ([`enabled`]); when no recorder is installed the
//! call is a branch on an already-cached cacheline and returns
//! immediately — no clock read, no lock, no allocation. The non-perturbation
//! guarantee is stronger than performance, though: instrumentation *never*
//! feeds back into analysis, so results are bit-identical with a recorder
//! installed, absent, or installed halfway through a run.
//!
//! # Examples
//!
//! ```
//! use reuselens_obs as obs;
//! use std::sync::Arc;
//!
//! // Disabled by default: this is a no-op branch.
//! obs::add(obs::Counter::EventsDecoded, 10);
//!
//! let recorder = Arc::new(obs::MetricsRecorder::new());
//! obs::install(recorder.clone());
//! {
//!     let _span = obs::span(obs::Stage::Replay);
//!     obs::add(obs::Counter::EventsDecoded, 990);
//! }
//! obs::uninstall();
//!
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter(obs::Counter::EventsDecoded), 990);
//! assert!(obs::format_prometheus(&snapshot)
//!     .contains("reuselens_events_decoded_total 990"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod events;
mod export;
mod http;
mod recorder;
mod service;
mod timeline;

pub use events::{EventKind, EventLog, Severity};
pub use export::{format_prometheus, format_summary};
pub use http::{http_get, HttpServer, Response, MAX_ACTIVE_CONNECTIONS};
pub use recorder::{
    GrainProfile, GrainStatus, MetricsRecorder, MetricsSnapshot, Recorder, SpanStats,
};
pub use service::{ServiceConfig, TelemetryService};
pub use timeline::{format_chrome_trace, Timeline, TimelineArgs, TimelineEvent, TimelineSnapshot};

pub(crate) use timeline::escape_json;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::time::Instant;

/// A pipeline stage a [`span`] can time. One execution of the full
/// pipeline opens: one `Capture` span, one `Decode` span per validating
/// pass over a buffer, one `Replay` span per grain, one `Sweep` span per
/// hierarchy scored, and one `Report` span per attribution report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Interpreting the program once into a captured trace buffer.
    Capture,
    /// A validating decode pass over a captured buffer.
    Decode,
    /// One grain's replay through its analyzer.
    Replay,
    /// One time-partition of a single grain's parallel replay (nested
    /// inside that grain's [`Stage::Replay`] span).
    Partition,
    /// Scoring one candidate hierarchy from measured profiles.
    Sweep,
    /// Building one attribution report from a scored analysis.
    Report,
    /// Serializing and writing one crash-safety snapshot of a grain's
    /// analyzer state (nested inside that grain's [`Stage::Replay`] span).
    Checkpoint,
    /// One symbolic reuse-profile estimation pass (the zero-trace
    /// replacement for capture + replay).
    Estimate,
}

impl Stage {
    /// Every stage, in dense-index order (used for metric storage).
    pub const ALL: [Stage; 8] = [
        Stage::Capture,
        Stage::Decode,
        Stage::Replay,
        Stage::Partition,
        Stage::Sweep,
        Stage::Report,
        Stage::Checkpoint,
        Stage::Estimate,
    ];

    /// Every stage in the order the pipeline executes them:
    /// capture → decode → replay → partition → checkpoint → estimate →
    /// sweep → report (estimation replaces the first five stages on the
    /// static path, so it sorts just before sweep). Exporters print
    /// stages in this order, independent of the enum's index layout.
    pub const PIPELINE_ORDER: [Stage; 8] = [
        Stage::Capture,
        Stage::Decode,
        Stage::Replay,
        Stage::Partition,
        Stage::Checkpoint,
        Stage::Estimate,
        Stage::Sweep,
        Stage::Report,
    ];

    /// Stable lowercase name, used as the Prometheus `stage` label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Capture => "capture",
            Stage::Decode => "decode",
            Stage::Replay => "replay",
            Stage::Partition => "partition",
            Stage::Sweep => "sweep",
            Stage::Report => "report",
            Stage::Checkpoint => "checkpoint",
            Stage::Estimate => "estimate",
        }
    }

    /// Dense index of this stage within [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonically increasing pipeline total. Counters only ever go up
/// within one recorder's lifetime; instrumented code adds bulk deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Events (accesses + scope transitions) captured into trace buffers.
    EventsCaptured,
    /// Memory-access events captured into trace buffers.
    AccessesCaptured,
    /// Bytes the captured columnar encodings occupy.
    BytesEncoded,
    /// Events decoded out of trace buffers (all replay paths).
    EventsDecoded,
    /// Memory-access events decoded out of trace buffers.
    AccessesDecoded,
    /// Distinct blocks entered into analyzer block tables.
    BlocksTracked,
    /// Fused reinserts performed on analyzer order-statistic trees
    /// (one per measured non-cold reuse).
    TreeReinserts,
    /// Grains submitted to the replay engine.
    GrainsRequested,
    /// Grains whose replay completed and produced a profile.
    GrainsCompleted,
    /// Grains declared dead after their final attempt.
    GrainsFailed,
    /// Sequential retries of panicked grains.
    GrainsRetried,
    /// Candidate hierarchies scored successfully in sweeps.
    SweepConfigsScored,
    /// Candidate hierarchies that failed validation or scoring.
    SweepConfigsFailed,
    /// Attribution reports generated.
    ReportsGenerated,
    /// Timeline events dropped by full ring-buffer shards.
    TimelineDropped,
    /// Distinct blocks admitted by the spatial-hash sampler (unscaled).
    BlocksSampled,
    /// Tracked blocks evicted by adaptive sampling rate drops.
    BlocksEvicted,
    /// Adaptive sampling rate halvings (tracked set hit its budget).
    SampleRateDrops,
    /// Time-partition workers spawned by single-grain parallel replay.
    PartitionsSpawned,
    /// Cross-partition reuses resolved during the stitch pass of
    /// single-grain parallel replay.
    PartitionStitch,
    /// Crash-safety snapshots written by checkpointed replay.
    CheckpointsWritten,
    /// Grains that resumed from a validated snapshot instead of replaying
    /// from the beginning.
    CheckpointsResumed,
    /// Snapshot files rejected during resume (torn, corrupted,
    /// version-skewed, or mismatched with the trace).
    CheckpointsRejected,
    /// References the symbolic estimator covered with a closed-form
    /// reuse prediction.
    StaticRefsCovered,
    /// References the symbolic estimator could not classify (irregular
    /// or indirect subscripts) and modeled with the fallback scatter.
    StaticRefsFallback,
    /// Analysis jobs the daemon accepted onto its queue.
    JobsAccepted,
    /// Analysis jobs that ran to completion and produced a response.
    JobsCompleted,
    /// Analysis jobs that ended in a typed error response.
    JobsFailed,
    /// Analysis jobs rejected before queueing (full queue or shutdown).
    JobsRejected,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 29] = [
        Counter::EventsCaptured,
        Counter::AccessesCaptured,
        Counter::BytesEncoded,
        Counter::EventsDecoded,
        Counter::AccessesDecoded,
        Counter::BlocksTracked,
        Counter::TreeReinserts,
        Counter::GrainsRequested,
        Counter::GrainsCompleted,
        Counter::GrainsFailed,
        Counter::GrainsRetried,
        Counter::SweepConfigsScored,
        Counter::SweepConfigsFailed,
        Counter::ReportsGenerated,
        Counter::TimelineDropped,
        Counter::BlocksSampled,
        Counter::BlocksEvicted,
        Counter::SampleRateDrops,
        Counter::PartitionsSpawned,
        Counter::PartitionStitch,
        Counter::CheckpointsWritten,
        Counter::CheckpointsResumed,
        Counter::CheckpointsRejected,
        Counter::StaticRefsCovered,
        Counter::StaticRefsFallback,
        Counter::JobsAccepted,
        Counter::JobsCompleted,
        Counter::JobsFailed,
        Counter::JobsRejected,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `reuselens_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsCaptured => "events_captured",
            Counter::AccessesCaptured => "accesses_captured",
            Counter::BytesEncoded => "bytes_encoded",
            Counter::EventsDecoded => "events_decoded",
            Counter::AccessesDecoded => "accesses_decoded",
            Counter::BlocksTracked => "blocks_tracked",
            Counter::TreeReinserts => "tree_reinserts",
            Counter::GrainsRequested => "grains_requested",
            Counter::GrainsCompleted => "grains_completed",
            Counter::GrainsFailed => "grains_failed",
            Counter::GrainsRetried => "grains_retried",
            Counter::SweepConfigsScored => "sweep_configs_scored",
            Counter::SweepConfigsFailed => "sweep_configs_failed",
            Counter::ReportsGenerated => "reports_generated",
            Counter::TimelineDropped => "timeline_dropped",
            Counter::BlocksSampled => "blocks_sampled",
            Counter::BlocksEvicted => "blocks_evicted",
            Counter::SampleRateDrops => "sample_rate_drops",
            Counter::PartitionsSpawned => "partitions_spawned",
            Counter::PartitionStitch => "partition_stitch",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointsResumed => "checkpoints_resumed",
            Counter::CheckpointsRejected => "checkpoints_rejected",
            Counter::StaticRefsCovered => "static_refs_covered",
            Counter::StaticRefsFallback => "static_refs_fallback",
            Counter::JobsAccepted => "jobs_accepted",
            Counter::JobsCompleted => "jobs_completed",
            Counter::JobsFailed => "jobs_failed",
            Counter::JobsRejected => "jobs_rejected",
        }
    }

    /// One-line description (the Prometheus `# HELP` text).
    pub fn help(self) -> &'static str {
        match self {
            Counter::EventsCaptured => {
                "Events captured into trace buffers (accesses + scope transitions)."
            }
            Counter::AccessesCaptured => "Memory-access events captured into trace buffers.",
            Counter::BytesEncoded => "Bytes occupied by captured columnar encodings.",
            Counter::EventsDecoded => "Events decoded out of trace buffers across all replays.",
            Counter::AccessesDecoded => "Memory-access events decoded out of trace buffers.",
            Counter::BlocksTracked => "Distinct blocks entered into analyzer block tables.",
            Counter::TreeReinserts => {
                "Order-statistic-tree reinserts (one per measured non-cold reuse)."
            }
            Counter::GrainsRequested => "Grains submitted to the replay engine.",
            Counter::GrainsCompleted => "Grains whose replay produced a profile.",
            Counter::GrainsFailed => "Grains declared dead after their final attempt.",
            Counter::GrainsRetried => "Sequential retries of panicked grains.",
            Counter::SweepConfigsScored => "Candidate hierarchies scored successfully.",
            Counter::SweepConfigsFailed => "Candidate hierarchies that failed scoring.",
            Counter::ReportsGenerated => "Attribution reports generated.",
            Counter::TimelineDropped => "Timeline events dropped by full ring-buffer shards.",
            Counter::BlocksSampled => {
                "Distinct blocks admitted by the spatial-hash sampler (unscaled)."
            }
            Counter::BlocksEvicted => "Tracked blocks evicted by adaptive sampling rate drops.",
            Counter::SampleRateDrops => "Adaptive sampling rate halvings.",
            Counter::PartitionsSpawned => {
                "Time-partition workers spawned by single-grain parallel replay."
            }
            Counter::PartitionStitch => {
                "Cross-partition reuses resolved during partitioned-replay stitching."
            }
            Counter::CheckpointsWritten => "Crash-safety snapshots written by checkpointed replay.",
            Counter::CheckpointsResumed => "Grains resumed from a validated snapshot.",
            Counter::CheckpointsRejected => {
                "Snapshot files rejected during resume (torn, corrupted, or mismatched)."
            }
            Counter::StaticRefsCovered => {
                "References covered symbolically by the static estimator."
            }
            Counter::StaticRefsFallback => {
                "References the static estimator modeled with the irregular fallback."
            }
            Counter::JobsAccepted => "Analysis jobs accepted onto the daemon queue.",
            Counter::JobsCompleted => "Analysis jobs that produced a success response.",
            Counter::JobsFailed => "Analysis jobs that ended in a typed error response.",
            Counter::JobsRejected => {
                "Analysis jobs rejected before queueing (full queue or shutdown)."
            }
        }
    }

    /// Dense index of this counter within [`Counter::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A last-observed-value metric. Budget gauges track the most recent
/// per-grain budget-progress checkpoint, so an operator watching the
/// export can see how close a long replay is to its caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Events replayed at the latest budget checkpoint.
    BudgetEvents,
    /// Distinct blocks tracked at the latest budget checkpoint.
    BudgetDistinctBlocks,
    /// Order-statistic-tree nodes live at the latest budget checkpoint.
    BudgetTreeNodes,
    /// Inverse sampling rate of the most recently finished sampled grain.
    SamplingInvRate,
    /// Encoded size of the most recently written crash-safety snapshot,
    /// in bytes.
    SnapshotBytes,
    /// Jobs sitting on the daemon queue (accepted, not yet running).
    JobQueueDepth,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 6] = [
        Gauge::BudgetEvents,
        Gauge::BudgetDistinctBlocks,
        Gauge::BudgetTreeNodes,
        Gauge::SamplingInvRate,
        Gauge::SnapshotBytes,
        Gauge::JobQueueDepth,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `reuselens_<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::BudgetEvents => "budget_events",
            Gauge::BudgetDistinctBlocks => "budget_distinct_blocks",
            Gauge::BudgetTreeNodes => "budget_tree_nodes",
            Gauge::SamplingInvRate => "sampling_inv_rate",
            Gauge::SnapshotBytes => "snapshot_bytes",
            Gauge::JobQueueDepth => "job_queue_depth",
        }
    }

    /// One-line description (the Prometheus `# HELP` text).
    pub fn help(self) -> &'static str {
        match self {
            Gauge::BudgetEvents => "Events replayed at the latest budget checkpoint.",
            Gauge::BudgetDistinctBlocks => {
                "Distinct blocks tracked at the latest budget checkpoint."
            }
            Gauge::BudgetTreeNodes => "Live tree nodes at the latest budget checkpoint.",
            Gauge::SamplingInvRate => {
                "Inverse sampling rate of the most recently finished sampled grain."
            }
            Gauge::SnapshotBytes => {
                "Bytes of the most recently written crash-safety snapshot."
            }
            Gauge::JobQueueDepth => {
                "Jobs sitting on the daemon queue (accepted, not yet running)."
            }
        }
    }

    /// Dense index of this gauge within [`Gauge::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static TIMELINE_ENABLED: AtomicBool = AtomicBool::new(false);
static TIMELINE: RwLock<Option<Arc<Timeline>>> = RwLock::new(None);
static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: RwLock<Option<Arc<EventLog>>> = RwLock::new(None);

thread_local! {
    /// Nesting depth of open spans on this thread (1 = top level).
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True when a recorder is installed. Instrumented code checks this one
/// relaxed load before doing anything else; the disabled path is a single
/// predictable branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn recorder_slot() -> RwLockReadGuard<'static, Option<Arc<dyn Recorder>>> {
    // A recorder panicking mid-call could poison the lock; observability
    // must never take the pipeline down, so a poisoned slot is still read.
    match RECORDER.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs a recorder and enables instrumentation process-wide, returning
/// the previously installed recorder if any. Recording starts immediately:
/// counters added before installation are simply lost, which is exactly
/// the mid-run-install semantics the identity tests pin down.
pub fn install(recorder: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    let mut slot = match RECORDER.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let previous = slot.replace(recorder);
    ENABLED.store(true, Ordering::SeqCst);
    previous
}

/// Disables instrumentation and removes the installed recorder, returning
/// it so callers can snapshot after the pipeline quiesces.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut slot = match RECORDER.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.take()
}

/// True when a timeline is installed. Like [`enabled`], one relaxed load.
#[inline]
pub fn timeline_enabled() -> bool {
    TIMELINE_ENABLED.load(Ordering::Relaxed)
}

fn timeline_slot() -> RwLockReadGuard<'static, Option<Arc<Timeline>>> {
    match TIMELINE.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs a timeline process-wide, returning the previous one if any.
/// Only spans that *close* while a timeline is installed are recorded
/// (see [`Timeline`] for the mid-run install/uninstall semantics), so a
/// timeline can be attached to a long-running pipeline at any point.
pub fn install_timeline(timeline: Arc<Timeline>) -> Option<Arc<Timeline>> {
    let mut slot = match TIMELINE.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let previous = slot.replace(timeline);
    TIMELINE_ENABLED.store(true, Ordering::SeqCst);
    previous
}

/// Disables timeline recording and removes the installed timeline,
/// returning it so callers can snapshot and export it.
pub fn uninstall_timeline() -> Option<Arc<Timeline>> {
    TIMELINE_ENABLED.store(false, Ordering::SeqCst);
    let mut slot = match TIMELINE.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.take()
}

/// True when an event log is installed. Like [`enabled`], one relaxed load.
#[inline]
pub fn events_enabled() -> bool {
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

fn events_slot() -> RwLockReadGuard<'static, Option<Arc<EventLog>>> {
    match EVENTS.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs a JSONL event log process-wide, returning the previous one if
/// any. Emits before installation are simply lost (the same mid-run
/// install semantics as [`install`]).
pub fn install_events(log: Arc<EventLog>) -> Option<Arc<EventLog>> {
    let mut slot = match EVENTS.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let previous = slot.replace(log);
    EVENTS_ENABLED.store(true, Ordering::SeqCst);
    previous
}

/// Disables event emission and removes the installed log, returning it so
/// callers can flush/inspect after the pipeline quiesces.
pub fn uninstall_events() -> Option<Arc<EventLog>> {
    EVENTS_ENABLED.store(false, Ordering::SeqCst);
    let mut slot = match EVENTS.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.take()
}

/// Emits one typed event at its default severity ([`EventKind::severity`]).
/// A no-op branch when no event log is installed; never per-access — emit
/// sites are grain/checkpoint/stitch-grained like counter bulk adds.
#[inline]
pub fn emit(kind: EventKind) {
    if !events_enabled() {
        return;
    }
    if let Some(log) = events_slot().as_ref() {
        log.emit(kind.severity(), &kind);
    }
}

/// Emits one typed event at an explicit severity. A no-op when disabled.
#[inline]
pub fn emit_at(severity: Severity, kind: EventKind) {
    if !events_enabled() {
        return;
    }
    if let Some(log) = events_slot().as_ref() {
        log.emit(severity, &kind);
    }
}

/// Adds a bulk delta to a counter. A no-op branch when disabled.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = recorder_slot().as_deref() {
        recorder.add(counter, delta);
    }
}

/// Sets a gauge to its latest observed value. A no-op branch when disabled.
#[inline]
pub fn set_gauge(gauge: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = recorder_slot().as_deref() {
        recorder.set_gauge(gauge, value);
    }
}

/// Opens a timing span for a pipeline stage. The returned guard records
/// the elapsed wall time (and the thread-local nesting depth) when
/// dropped — to the installed recorder as aggregate stage timing, and to
/// the installed timeline as one [`TimelineEvent`]. When neither is
/// installed the guard is inert: no clock is read on open or close.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    span_with(stage, TimelineArgs::default)
}

/// Opens a timing span carrying typed timeline args. `args` is evaluated
/// only when a timeline is installed, so call sites can clone names and
/// build strings inside the closure without cost on the disabled (or
/// metrics-only) path. Args known only at completion are added through
/// [`SpanGuard::record`].
#[inline]
pub fn span_with(stage: Stage, args: impl FnOnce() -> TimelineArgs) -> SpanGuard {
    let timeline = timeline_enabled();
    if !enabled() && !timeline {
        return SpanGuard { armed: None };
    }
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get() + 1;
        d.set(depth);
        depth
    });
    SpanGuard {
        armed: Some(ArmedSpan {
            stage,
            depth,
            start: Instant::now(),
            args: if timeline {
                args()
            } else {
                TimelineArgs::default()
            },
        }),
    }
}

#[derive(Debug)]
struct ArmedSpan {
    stage: Stage,
    depth: u32,
    start: Instant,
    args: TimelineArgs,
}

/// Guard returned by [`span`] / [`span_with`]; reports the stage's
/// elapsed wall time to the installed recorder and its timeline event to
/// the installed timeline on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    armed: Option<ArmedSpan>,
}

impl SpanGuard {
    /// Mutates the span's timeline args — for values (events replayed,
    /// final tree size) known only once the measured work completed. A
    /// no-op on an inert guard.
    #[inline]
    pub fn record(&mut self, f: impl FnOnce(&mut TimelineArgs)) {
        if let Some(armed) = &mut self.armed {
            f(&mut armed.args);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        let wall = armed.start.elapsed();
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        // The recorder or timeline may have been uninstalled while the
        // span was open; the measurement is then dropped, never blocked
        // on — and a timeline never receives half-open events.
        if enabled() {
            if let Some(recorder) = recorder_slot().as_deref() {
                recorder.record_span(armed.stage, wall, armed.depth);
            }
        }
        if timeline_enabled() {
            if let Some(timeline) = timeline_slot().as_ref() {
                timeline.record(armed.stage, armed.start, wall, armed.depth, armed.args);
            }
        }
    }
}

/// Reports one grain's cost profile to the installed recorder. A no-op
/// branch when disabled; called once per grain by the replay engine.
#[inline]
pub fn record_grain(profile: &GrainProfile) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = recorder_slot().as_deref() {
        recorder.record_grain(profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder slot is process-global; tests that install serialize
    /// through this lock so `cargo test` parallelism cannot interleave them.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        match INSTALL_LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_calls_are_inert() {
        let _serial = serial();
        assert!(!enabled());
        add(Counter::EventsDecoded, 5);
        set_gauge(Gauge::BudgetEvents, 5);
        let guard = span(Stage::Replay);
        assert!(guard.armed.is_none());
        drop(guard);
        // Nothing observable happened: installing a fresh recorder now
        // sees a clean slate.
        let rec = Arc::new(MetricsRecorder::new());
        install(rec.clone());
        uninstall();
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::EventsDecoded), 0);
        assert!(snap.spans.iter().all(|s| s.count == 0));
    }

    #[test]
    fn install_records_and_uninstall_stops() {
        let _serial = serial();
        let rec = Arc::new(MetricsRecorder::new());
        assert!(install(rec.clone()).is_none());
        assert!(enabled());
        add(Counter::GrainsCompleted, 2);
        set_gauge(Gauge::BudgetTreeNodes, 7);
        {
            let _outer = span(Stage::Replay);
            let _inner = span(Stage::Decode);
        }
        let returned = uninstall();
        assert!(returned.is_some());
        assert!(!enabled());
        add(Counter::GrainsCompleted, 99); // dropped: disabled again
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::GrainsCompleted), 2);
        assert_eq!(snap.gauge(Gauge::BudgetTreeNodes), 7);
        let replay = snap.stage(Stage::Replay);
        let decode = snap.stage(Stage::Decode);
        assert_eq!(replay.count, 1);
        assert_eq!(decode.count, 1);
        assert_eq!(replay.max_depth, 1);
        assert_eq!(decode.max_depth, 2, "nested span must record depth 2");
    }

    #[test]
    fn install_replaces_and_returns_previous_recorder() {
        let _serial = serial();
        let first = Arc::new(MetricsRecorder::new());
        let second = Arc::new(MetricsRecorder::new());
        install(first.clone());
        add(Counter::ReportsGenerated, 1);
        let previous = install(second.clone());
        assert!(previous.is_some());
        add(Counter::ReportsGenerated, 10);
        uninstall();
        assert_eq!(first.snapshot().counter(Counter::ReportsGenerated), 1);
        assert_eq!(second.snapshot().counter(Counter::ReportsGenerated), 10);
    }

    #[test]
    fn pipeline_order_covers_every_stage_exactly_once() {
        assert_eq!(Stage::PIPELINE_ORDER.len(), Stage::ALL.len());
        for stage in Stage::ALL {
            assert_eq!(
                Stage::PIPELINE_ORDER.iter().filter(|&&s| s == stage).count(),
                1,
                "{} must appear exactly once in PIPELINE_ORDER",
                stage.name()
            );
        }
        // Pin the positions the summary footer depends on: partition
        // nests inside replay, checkpoint snapshots during replay, and
        // estimation substitutes for the trace stages just before sweep.
        let pos = |s: Stage| {
            Stage::PIPELINE_ORDER
                .iter()
                .position(|&x| x == s)
                .unwrap()
        };
        assert!(pos(Stage::Capture) < pos(Stage::Decode));
        assert!(pos(Stage::Decode) < pos(Stage::Replay));
        assert!(pos(Stage::Replay) < pos(Stage::Partition));
        assert!(pos(Stage::Partition) < pos(Stage::Checkpoint));
        assert!(pos(Stage::Checkpoint) < pos(Stage::Estimate));
        assert!(pos(Stage::Estimate) < pos(Stage::Sweep));
        assert!(pos(Stage::Sweep) < pos(Stage::Report));
    }

    #[test]
    fn event_emission_respects_install_state() {
        let _serial = serial();
        assert!(!events_enabled());
        emit(EventKind::GrainStarted { grain: 1 }); // inert: no log installed
        let log = Arc::new(EventLog::to_vec());
        assert!(install_events(log.clone()).is_none());
        emit(EventKind::GrainStarted { grain: 64 });
        emit_at(Severity::Warn, EventKind::GrainStarted { grain: 128 });
        let returned = uninstall_events();
        assert!(returned.is_some());
        emit(EventKind::GrainStarted { grain: 999 }); // dropped: disabled
        let text = log.captured();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"grain\":64"));
        assert!(text.contains("\"severity\":\"warn\""));
        assert!(!text.contains("\"grain\":999"));
    }

    #[test]
    fn enum_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        // Names are unique (they become metric names).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Stage::ALL.iter().map(|s| s.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
