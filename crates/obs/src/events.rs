//! The structured JSONL event log: one JSON object per line for every
//! discrete pipeline occurrence worth replaying later — grain lifecycle,
//! checkpoint writes/resumes, partition stitches, sampling rate drops,
//! failures, and the service's own heartbeats.
//!
//! Counters (§ [`crate::MetricsRecorder`]) answer *how much*; the timeline
//! (§ [`crate::Timeline`]) answers *when and on which thread*; the event
//! log answers *what happened, in order, with enough typed detail to act
//! on*. Each line carries a severity, a monotonic timestamp (nanoseconds
//! since the log was opened — immune to wall-clock steps), a wall-clock
//! timestamp (nanoseconds since the Unix epoch — joinable with external
//! logs), the event name, and the event's typed fields.
//!
//! Like the recorder and timeline, the log is a process-global optional
//! slot: nothing is formatted or written until [`crate::install_events`]
//! installs an [`EventLog`], and every emit site first checks one relaxed
//! atomic. Lines are flushed per event so `tail -f` (and a crash) always
//! sees complete records; a write error increments a counter and drops the
//! line rather than failing the pipeline.
//!
//! # Examples
//!
//! ```
//! use reuselens_obs as obs;
//! use std::sync::Arc;
//!
//! let log = Arc::new(obs::EventLog::to_vec());
//! obs::install_events(log.clone());
//! obs::emit(obs::EventKind::GrainCompleted {
//!     grain: 64,
//!     events: 1024,
//!     distinct_blocks: 17,
//!     wall_ns: 5_000,
//! });
//! obs::uninstall_events();
//!
//! let lines = log.captured();
//! assert_eq!(lines.lines().count(), 1);
//! assert!(lines.contains("\"event\":\"grain_completed\""));
//! assert!(lines.contains("\"grain\":64"));
//! ```

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::escape_json;

/// How urgent one event line is. Rendered lowercase in the `severity`
/// field; the default mapping lives in [`EventKind::severity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Normal forward progress (grain completed, checkpoint written).
    Info,
    /// Degradation the run survived (retry, rejected snapshot, rate drop).
    Warn,
    /// A component failed for good (grain dead after final attempt).
    Error,
}

impl Severity {
    /// Stable lowercase name, the JSONL `severity` field.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One typed pipeline occurrence. Every variant renders as a fixed
/// `event` name plus its fields, documented in README "Watching a live
/// run"; adding a variant is a schema addition, renaming fields is a
/// schema break.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The pipeline started work (emitted once by the CLI wiring).
    RunStarted {
        /// The workload/command line being analyzed.
        command: String,
    },
    /// The pipeline finished (emitted once by the CLI wiring).
    RunFinished {
        /// False when the run exited with an error.
        ok: bool,
    },
    /// One grain's replay began.
    GrainStarted {
        /// Block size in bytes.
        grain: u64,
    },
    /// One grain's replay produced a profile.
    GrainCompleted {
        /// Block size in bytes.
        grain: u64,
        /// Events replayed through the grain's analyzer.
        events: u64,
        /// Distinct blocks the analyzer ended with.
        distinct_blocks: u64,
        /// Replay wall time in nanoseconds.
        wall_ns: u64,
    },
    /// A panicked grain is being retried sequentially.
    GrainRetried {
        /// Block size in bytes.
        grain: u64,
    },
    /// A grain was declared dead after its final attempt.
    GrainFailed {
        /// Block size in bytes.
        grain: u64,
        /// The failure's rendered message.
        reason: String,
        /// Daemon job the grain was replayed for; `None` outside the
        /// daemon. Keeps a panicked job's failures attributable after
        /// they cross the degradation path.
        job: Option<String>,
    },
    /// A crash-safety snapshot of a grain's analyzer state was written.
    CheckpointWritten {
        /// Block size in bytes.
        grain: u64,
        /// Events replayed when the snapshot was cut.
        events_replayed: u64,
        /// Encoded snapshot size in bytes.
        bytes: u64,
    },
    /// A grain resumed from a validated snapshot instead of replaying
    /// from the beginning.
    CheckpointResumed {
        /// Block size in bytes.
        grain: u64,
        /// Events already replayed inside the snapshot.
        events_replayed: u64,
    },
    /// A snapshot file was rejected during resume.
    CheckpointRejected {
        /// The rejected file's path.
        path: String,
        /// Why it was rejected (torn, corrupted, mismatched, ...).
        reason: String,
    },
    /// Partitioned single-grain replay stitched its workers' results.
    PartitionStitched {
        /// Block size in bytes.
        grain: u64,
        /// Time-partition workers stitched.
        partitions: u64,
        /// Cross-partition reuses resolved during the stitch.
        resolved: u64,
    },
    /// The adaptive sampler halved its rate to stay inside its budget.
    SampleRateDropped {
        /// Block size in bytes.
        grain: u64,
        /// Inverse sampling rate after the drop.
        inv_rate: u64,
        /// Tracked blocks evicted by the drop.
        evicted: u64,
    },
    /// The daemon accepted an analysis job onto its queue.
    JobAccepted {
        /// The job id the client supplied.
        job: String,
        /// The job kind ("capture", "replay", "estimate", ...).
        kind: String,
    },
    /// A daemon job ran to completion and produced a success response.
    JobCompleted {
        /// The job id.
        job: String,
        /// The job kind.
        kind: String,
        /// Queue + execution wall time in nanoseconds.
        wall_ns: u64,
    },
    /// A daemon job ended in a typed error response.
    JobFailed {
        /// The job id.
        job: String,
        /// The job kind (`"?"` when the request never parsed).
        kind: String,
        /// The error's rendered message.
        reason: String,
    },
    /// The daemon rejected a job before queueing it (full queue or
    /// shutdown) — the 429-style overload path.
    JobRejected {
        /// The job id (`"?"` when the request never parsed).
        job: String,
        /// Why it was rejected.
        reason: String,
    },
    /// One aggregator heartbeat (also the stderr progress line's source).
    Heartbeat {
        /// Seconds since the service started.
        uptime_s: f64,
        /// Last active pipeline stage name, `"idle"` before any.
        stage: &'static str,
        /// Grains finished (completed + failed).
        grains_done: u64,
        /// Grains requested.
        grains_requested: u64,
        /// Events decoded per second over the short rolling window.
        events_per_s: f64,
    },
}

impl EventKind {
    /// Stable snake_case event name, the JSONL `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStarted { .. } => "run_started",
            EventKind::RunFinished { .. } => "run_finished",
            EventKind::GrainStarted { .. } => "grain_started",
            EventKind::GrainCompleted { .. } => "grain_completed",
            EventKind::GrainRetried { .. } => "grain_retried",
            EventKind::GrainFailed { .. } => "grain_failed",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CheckpointResumed { .. } => "checkpoint_resumed",
            EventKind::CheckpointRejected { .. } => "checkpoint_rejected",
            EventKind::PartitionStitched { .. } => "partition_stitched",
            EventKind::SampleRateDropped { .. } => "sample_rate_dropped",
            EventKind::JobAccepted { .. } => "job_accepted",
            EventKind::JobCompleted { .. } => "job_completed",
            EventKind::JobFailed { .. } => "job_failed",
            EventKind::JobRejected { .. } => "job_rejected",
            EventKind::Heartbeat { .. } => "heartbeat",
        }
    }

    /// The default severity this kind is emitted at.
    pub fn severity(&self) -> Severity {
        match self {
            EventKind::GrainFailed { .. } | EventKind::JobFailed { .. } => Severity::Error,
            EventKind::GrainRetried { .. }
            | EventKind::CheckpointRejected { .. }
            | EventKind::SampleRateDropped { .. }
            | EventKind::JobRejected { .. } => Severity::Warn,
            _ => Severity::Info,
        }
    }

    /// Renders the variant's typed fields as JSON object members,
    /// appended after the envelope fields (leading comma included when
    /// any field exists).
    fn write_fields(&self, out: &mut String) {
        match self {
            EventKind::RunStarted { command } => {
                let _ = write!(out, ",\"command\":\"{}\"", escape_json(command));
            }
            EventKind::RunFinished { ok } => {
                let _ = write!(out, ",\"ok\":{ok}");
            }
            EventKind::GrainStarted { grain } => {
                let _ = write!(out, ",\"grain\":{grain}");
            }
            EventKind::GrainCompleted {
                grain,
                events,
                distinct_blocks,
                wall_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"events\":{events},\
                     \"distinct_blocks\":{distinct_blocks},\"wall_ns\":{wall_ns}"
                );
            }
            EventKind::GrainRetried { grain } => {
                let _ = write!(out, ",\"grain\":{grain}");
            }
            EventKind::GrainFailed { grain, reason, job } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"reason\":\"{}\"",
                    escape_json(reason)
                );
                if let Some(job) = job {
                    let _ = write!(out, ",\"job\":\"{}\"", escape_json(job));
                }
            }
            EventKind::CheckpointWritten {
                grain,
                events_replayed,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"events_replayed\":{events_replayed},\"bytes\":{bytes}"
                );
            }
            EventKind::CheckpointResumed {
                grain,
                events_replayed,
            } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"events_replayed\":{events_replayed}"
                );
            }
            EventKind::CheckpointRejected { path, reason } => {
                let _ = write!(
                    out,
                    ",\"path\":\"{}\",\"reason\":\"{}\"",
                    escape_json(path),
                    escape_json(reason)
                );
            }
            EventKind::PartitionStitched {
                grain,
                partitions,
                resolved,
            } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"partitions\":{partitions},\"resolved\":{resolved}"
                );
            }
            EventKind::SampleRateDropped {
                grain,
                inv_rate,
                evicted,
            } => {
                let _ = write!(
                    out,
                    ",\"grain\":{grain},\"inv_rate\":{inv_rate},\"evicted\":{evicted}"
                );
            }
            EventKind::JobAccepted { job, kind } => {
                let _ = write!(
                    out,
                    ",\"job\":\"{}\",\"kind\":\"{}\"",
                    escape_json(job),
                    escape_json(kind)
                );
            }
            EventKind::JobCompleted { job, kind, wall_ns } => {
                let _ = write!(
                    out,
                    ",\"job\":\"{}\",\"kind\":\"{}\",\"wall_ns\":{wall_ns}",
                    escape_json(job),
                    escape_json(kind)
                );
            }
            EventKind::JobFailed { job, kind, reason } => {
                let _ = write!(
                    out,
                    ",\"job\":\"{}\",\"kind\":\"{}\",\"reason\":\"{}\"",
                    escape_json(job),
                    escape_json(kind),
                    escape_json(reason)
                );
            }
            EventKind::JobRejected { job, reason } => {
                let _ = write!(
                    out,
                    ",\"job\":\"{}\",\"reason\":\"{}\"",
                    escape_json(job),
                    escape_json(reason)
                );
            }
            EventKind::Heartbeat {
                uptime_s,
                stage,
                grains_done,
                grains_requested,
                events_per_s,
            } => {
                let _ = write!(
                    out,
                    ",\"uptime_s\":{uptime_s:.3},\"stage\":\"{stage}\",\
                     \"grains_done\":{grains_done},\"grains_requested\":{grains_requested},\
                     \"events_per_s\":{events_per_s:.0}"
                );
            }
        }
    }
}

/// Where an [`EventLog`] writes its lines.
enum Sink {
    /// A caller-supplied writer (file, stderr, pipe).
    Writer(Mutex<Box<dyn Write + Send>>),
    /// An in-memory buffer, for tests and golden assertions.
    Vec(Mutex<Vec<u8>>),
}

/// A line-oriented JSONL event sink. Install process-wide with
/// [`crate::install_events`]; every [`crate::emit`] then appends one
/// complete, flushed line. Thread-safe: lines from concurrent emitters
/// never interleave (one brief mutex per line, far off the per-event hot
/// path — emits are per grain / per checkpoint, never per access).
pub struct EventLog {
    epoch: Instant,
    epoch_wall_ns: u64,
    sink: Sink,
    emitted: AtomicU64,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("emitted", &self.emitted())
            .field("write_errors", &self.write_errors())
            .finish_non_exhaustive()
    }
}

/// Nanoseconds since the Unix epoch right now (saturating; zero if the
/// clock reads before 1970).
fn wall_ns_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

impl EventLog {
    fn with_sink(sink: Sink) -> EventLog {
        EventLog {
            epoch: Instant::now(),
            epoch_wall_ns: wall_ns_now(),
            sink,
            emitted: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// A log writing to an arbitrary writer. The writer is flushed after
    /// every line.
    pub fn to_writer(writer: impl Write + Send + 'static) -> EventLog {
        EventLog::with_sink(Sink::Writer(Mutex::new(Box::new(writer))))
    }

    /// A log writing to standard error (the `--log-jsonl -` target).
    pub fn stderr() -> EventLog {
        EventLog::to_writer(io::stderr())
    }

    /// A log appending to an in-memory buffer readable with
    /// [`captured`](EventLog::captured) — for tests.
    pub fn to_vec() -> EventLog {
        EventLog::with_sink(Sink::Vec(Mutex::new(Vec::new())))
    }

    /// A log creating (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn create(path: &std::path::Path) -> io::Result<EventLog> {
        Ok(EventLog::to_writer(std::fs::File::create(path)?))
    }

    /// Everything written so far, for a [`to_vec`](EventLog::to_vec) log.
    /// Empty for writer-backed logs.
    pub fn captured(&self) -> String {
        match &self.sink {
            Sink::Vec(buf) => {
                let buf = match buf.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                String::from_utf8_lossy(&buf).into_owned()
            }
            Sink::Writer(_) => String::new(),
        }
    }

    /// Lines successfully written over the log's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Lines lost to sink write errors (the pipeline never sees these).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Renders one event line (without the trailing newline). Public so
    /// tests can golden the schema without a writer round-trip.
    pub fn render_line(&self, severity: Severity, kind: &EventKind) -> String {
        let mono_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let wall_ns = self.epoch_wall_ns.saturating_add(mono_ns);
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"t_mono_ns\":{mono_ns},\"t_wall_ns\":{wall_ns},\
             \"severity\":\"{}\",\"event\":\"{}\"",
            severity.name(),
            kind.name()
        );
        kind.write_fields(&mut line);
        line.push('}');
        line
    }

    /// Formats and writes one event line. Never panics and never reports
    /// failure to the caller: a sink error is counted and the line
    /// dropped.
    pub fn emit(&self, severity: Severity, kind: &EventKind) {
        let line = self.render_line(severity, kind);
        match &self.sink {
            Sink::Writer(writer) => {
                let mut writer = match writer.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let ok = writeln!(writer, "{line}").and_then(|()| writer.flush());
                match ok {
                    Ok(()) => {
                        self.emitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.write_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Sink::Vec(buf) => {
                let mut buf = match buf.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                self.emitted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_one_json_object_each_with_envelope_fields() {
        let log = EventLog::to_vec();
        log.emit(
            Severity::Info,
            &EventKind::GrainStarted { grain: 4096 },
        );
        log.emit(
            Severity::Error,
            &EventKind::GrainFailed {
                grain: 64,
                reason: "panicked: \"index out of bounds\"".into(),
                job: Some("job-7".into()),
            },
        );
        let text = log.captured();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(log.emitted(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"t_mono_ns\":"));
            assert!(line.ends_with('}'));
            assert!(line.contains("\"t_wall_ns\":"));
            assert!(line.contains("\"severity\":"));
            assert!(line.contains("\"event\":"));
        }
        assert!(lines[0].contains("\"event\":\"grain_started\""));
        assert!(lines[0].contains("\"grain\":4096"));
        assert!(lines[1].contains("\"severity\":\"error\""));
        // The reason's quotes are escaped, keeping the line one object.
        assert!(lines[1].contains("\\\"index out of bounds\\\""));
        // The daemon's job attribution rides along when present...
        assert!(lines[1].contains("\"job\":\"job-7\""));
        // ...and is absent (not null) outside the daemon.
        let bare = log.render_line(
            Severity::Error,
            &EventKind::GrainFailed {
                grain: 64,
                reason: "r".into(),
                job: None,
            },
        );
        assert!(!bare.contains("\"job\""), "{bare}");
    }

    #[test]
    fn default_severities_follow_the_kind() {
        assert_eq!(
            EventKind::GrainFailed {
                grain: 1,
                reason: String::new(),
                job: None
            }
            .severity(),
            Severity::Error
        );
        assert_eq!(
            EventKind::JobFailed {
                job: String::new(),
                kind: String::new(),
                reason: String::new()
            }
            .severity(),
            Severity::Error
        );
        assert_eq!(
            EventKind::JobRejected {
                job: String::new(),
                reason: String::new()
            }
            .severity(),
            Severity::Warn
        );
        assert_eq!(EventKind::GrainRetried { grain: 1 }.severity(), Severity::Warn);
        assert_eq!(
            EventKind::SampleRateDropped {
                grain: 1,
                inv_rate: 2,
                evicted: 0
            }
            .severity(),
            Severity::Warn
        );
        assert_eq!(EventKind::GrainStarted { grain: 1 }.severity(), Severity::Info);
        assert_eq!(
            EventKind::CheckpointRejected {
                path: String::new(),
                reason: String::new()
            }
            .severity(),
            Severity::Warn
        );
    }

    #[test]
    fn monotonic_timestamps_are_nondecreasing() {
        let log = EventLog::to_vec();
        for _ in 0..10 {
            log.emit(Severity::Info, &EventKind::GrainStarted { grain: 1 });
        }
        let text = log.captured();
        let stamps: Vec<u64> = text
            .lines()
            .map(|l| {
                let rest = l.strip_prefix("{\"t_mono_ns\":").unwrap();
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn write_errors_are_counted_not_raised() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("sink gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let log = EventLog::to_writer(Broken);
        log.emit(Severity::Info, &EventKind::RunFinished { ok: true });
        assert_eq!(log.emitted(), 0);
        assert_eq!(log.write_errors(), 1);
    }

    #[test]
    fn every_kind_renders_its_documented_name() {
        let kinds: Vec<(EventKind, &str)> = vec![
            (EventKind::RunStarted { command: "x".into() }, "run_started"),
            (EventKind::RunFinished { ok: false }, "run_finished"),
            (EventKind::GrainStarted { grain: 1 }, "grain_started"),
            (
                EventKind::GrainCompleted {
                    grain: 1,
                    events: 2,
                    distinct_blocks: 3,
                    wall_ns: 4,
                },
                "grain_completed",
            ),
            (EventKind::GrainRetried { grain: 1 }, "grain_retried"),
            (
                EventKind::GrainFailed {
                    grain: 1,
                    reason: "r".into(),
                    job: Some("j".into()),
                },
                "grain_failed",
            ),
            (
                EventKind::CheckpointWritten {
                    grain: 1,
                    events_replayed: 2,
                    bytes: 3,
                },
                "checkpoint_written",
            ),
            (
                EventKind::CheckpointResumed {
                    grain: 1,
                    events_replayed: 2,
                },
                "checkpoint_resumed",
            ),
            (
                EventKind::CheckpointRejected {
                    path: "p".into(),
                    reason: "r".into(),
                },
                "checkpoint_rejected",
            ),
            (
                EventKind::PartitionStitched {
                    grain: 1,
                    partitions: 2,
                    resolved: 3,
                },
                "partition_stitched",
            ),
            (
                EventKind::SampleRateDropped {
                    grain: 1,
                    inv_rate: 2,
                    evicted: 3,
                },
                "sample_rate_dropped",
            ),
            (
                EventKind::JobAccepted {
                    job: "j".into(),
                    kind: "capture".into(),
                },
                "job_accepted",
            ),
            (
                EventKind::JobCompleted {
                    job: "j".into(),
                    kind: "replay".into(),
                    wall_ns: 5,
                },
                "job_completed",
            ),
            (
                EventKind::JobFailed {
                    job: "j".into(),
                    kind: "replay".into(),
                    reason: "r".into(),
                },
                "job_failed",
            ),
            (
                EventKind::JobRejected {
                    job: "j".into(),
                    reason: "queue full".into(),
                },
                "job_rejected",
            ),
            (
                EventKind::Heartbeat {
                    uptime_s: 1.0,
                    stage: "replay",
                    grains_done: 1,
                    grains_requested: 2,
                    events_per_s: 3.0,
                },
                "heartbeat",
            ),
        ];
        let log = EventLog::to_vec();
        for (kind, name) in &kinds {
            assert_eq!(kind.name(), *name);
            let line = log.render_line(kind.severity(), kind);
            assert!(line.contains(&format!("\"event\":\"{name}\"")), "{line}");
        }
    }
}
