//! The live telemetry service: a background aggregator thread over a
//! [`MetricsRecorder`], rolling-window rates, stderr heartbeats, and the
//! HTTP surface (`/metrics`, `/healthz`, `/timeline`).
//!
//! The first two obs generations export *after* the run; this one answers
//! *while* it runs. A [`TelemetryService`] owns one aggregator thread that
//! every `tick` (default 250 ms) takes a lock-free counter snapshot of the
//! recorder and appends it to a bounded sample window. From consecutive
//! samples it derives what an operator actually asks a long run:
//!
//! * **rates** — events/s and accesses/s over the last ~1 s and ~10 s,
//!   plus per-stage busy fractions (span-seconds accumulated per wall
//!   second, > 1 when workers run concurrently);
//! * **progress and ETA** — grains finished over grains requested, and
//!   elapsed-time extrapolation to completion;
//! * **the active stage** — whichever pipeline stage accumulated the most
//!   span time in the latest tick.
//!
//! The service never touches analysis state: it reads the same relaxed
//! atomics the exporters read, so the PR 3 identity contract ("obs never
//! changes results") extends to it unchanged — `tests/obs_identity.rs`
//! proves a run with the full service live (aggregator ticking, HTTP
//! scraped) stays bit-identical, and that a scrape after the pipeline
//! quiesces equals the final exporter output byte for byte.
//!
//! # Examples
//!
//! ```
//! use reuselens_obs as obs;
//! use obs::Recorder as _;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(obs::MetricsRecorder::new());
//! let mut service = obs::TelemetryService::start(
//!     recorder.clone(),
//!     None,
//!     obs::ServiceConfig::default(),
//! );
//! let addr = service.serve("127.0.0.1:0").expect("bind");
//! recorder.add(obs::Counter::EventsDecoded, 42);
//! let (status, body) = obs::http_get(addr, "/metrics").expect("scrape");
//! assert_eq!(status, 200);
//! assert!(body.contains("reuselens_events_decoded_total 42"));
//! service.shutdown();
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::export::fmt_rate;
use crate::http::{Handler, HttpServer, Response};
use crate::{
    format_chrome_trace, Counter, EventKind, MetricsRecorder, Stage, Timeline, TimelineSnapshot,
};

/// How the aggregator paces itself and what the run promised upfront.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Sampling period of the aggregator thread.
    pub tick: Duration,
    /// Emit a one-line progress heartbeat to stderr (and a `heartbeat`
    /// JSONL event) this often; `None` disables heartbeats.
    pub heartbeat: Option<Duration>,
    /// The short rolling-rate window (`events_per_s_1s`).
    pub window_short: Duration,
    /// The long rolling-rate window (`events_per_s_10s`).
    pub window_long: Duration,
    /// Per-grain event budget, when the run configured one — lets
    /// `/healthz` report headroom next to the budget-progress gauges.
    pub budget_events: Option<u64>,
    /// Per-grain distinct-block budget, when configured.
    pub budget_distinct_blocks: Option<u64>,
    /// Per-grain tree-node budget, when configured.
    pub budget_tree_nodes: Option<u64>,
    /// Renders the `/jobs` response body (the daemon's job table as
    /// JSON); `None` — every non-daemon run — answers 404 on that path.
    pub jobs: Option<Arc<dyn Fn() -> String + Send + Sync>>,
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("tick", &self.tick)
            .field("heartbeat", &self.heartbeat)
            .field("window_short", &self.window_short)
            .field("window_long", &self.window_long)
            .field("budget_events", &self.budget_events)
            .field("budget_distinct_blocks", &self.budget_distinct_blocks)
            .field("budget_tree_nodes", &self.budget_tree_nodes)
            .field("jobs", &self.jobs.as_ref().map(|_| "<callback>"))
            .finish()
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            tick: Duration::from_millis(250),
            heartbeat: None,
            window_short: Duration::from_secs(1),
            window_long: Duration::from_secs(10),
            budget_events: None,
            budget_distinct_blocks: None,
            budget_tree_nodes: None,
            jobs: None,
        }
    }
}

/// One aggregator sample: elapsed time plus the counter/span state of the
/// recorder at that instant.
#[derive(Debug, Clone)]
struct Sample {
    at: Duration,
    counters: [u64; Counter::ALL.len()],
    span_nanos: [u64; Stage::ALL.len()],
}

/// State shared between the aggregator, the HTTP handlers, and the owner.
struct Shared {
    recorder: Arc<MetricsRecorder>,
    timeline: Option<Arc<Timeline>>,
    config: ServiceConfig,
    started: Instant,
    /// Bounded history of samples, newest last.
    window: Mutex<VecDeque<Sample>>,
    /// `Stage::ALL` index + 1 of the stage with the most recent activity;
    /// 0 until any stage moves.
    active_stage: AtomicUsize,
    ticks: AtomicU64,
    scrapes: AtomicU64,
    /// Shutdown rendezvous: the aggregator waits on this between ticks so
    /// `shutdown` interrupts a sleep instead of waiting out a tick.
    stop: Mutex<bool>,
    stop_signal: Condvar,
}

impl Shared {
    fn poisoned_window(&self) -> std::sync::MutexGuard<'_, VecDeque<Sample>> {
        match self.window.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn take_sample(&self) -> Sample {
        let snap = self.recorder.snapshot();
        Sample {
            at: self.started.elapsed(),
            counters: snap.counters,
            span_nanos: Stage::ALL
                .map(|s| u64::try_from(snap.stage(s).total.as_nanos()).unwrap_or(u64::MAX)),
        }
    }

    /// Appends one sample, trims the window to the long rate window (plus
    /// slack so the oldest straddles the boundary), and refreshes the
    /// active-stage estimate.
    fn tick_once(&self) {
        let sample = self.take_sample();
        let mut window = self.poisoned_window();
        if let Some(previous) = window.back() {
            // The active stage: the one that accumulated the most span
            // time since the previous sample (ties go to the later
            // pipeline position — checkpoint inside replay reports
            // checkpoint only when it dominates the tick).
            let mut best: Option<(u64, usize)> = None;
            for stage in Stage::PIPELINE_ORDER {
                let i = stage.index();
                let delta = sample.span_nanos[i].saturating_sub(previous.span_nanos[i]);
                if delta > 0 && best.is_none_or(|(best_delta, _)| delta >= best_delta) {
                    best = Some((delta, i));
                }
            }
            if let Some((_, i)) = best {
                self.active_stage.store(i + 1, Ordering::Relaxed);
            }
        }
        let horizon = self
            .config
            .window_long
            .saturating_add(self.config.tick.saturating_mul(2));
        while window
            .front()
            .is_some_and(|oldest| sample.at.saturating_sub(oldest.at) > horizon)
            && window.len() > 2
        {
            window.pop_front();
        }
        window.push_back(sample);
        drop(window);
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter delta per second over (roughly) the trailing `window`,
    /// using the oldest retained sample inside it. `None` before two
    /// samples exist.
    fn rate_over(&self, counter: Counter, span: Duration) -> Option<f64> {
        let window = self.poisoned_window();
        let newest = window.back()?;
        let base = window
            .iter()
            .take_while(|s| newest.at.saturating_sub(s.at) >= span)
            .last()
            .or_else(|| window.front())?;
        let dt = newest.at.checked_sub(base.at)?.as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let delta = newest.counters[counter.index()].saturating_sub(base.counters[counter.index()]);
        Some(delta as f64 / dt)
    }

    /// Span-seconds accumulated per wall second for one stage over the
    /// short window (a busy fraction; > 1 with concurrent workers).
    fn stage_busy_over(&self, stage: Stage, span: Duration) -> Option<f64> {
        let window = self.poisoned_window();
        let newest = window.back()?;
        let base = window
            .iter()
            .take_while(|s| newest.at.saturating_sub(s.at) >= span)
            .last()
            .or_else(|| window.front())?;
        let dt = newest.at.checked_sub(base.at)?.as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let i = stage.index();
        let delta = newest.span_nanos[i].saturating_sub(base.span_nanos[i]);
        Some(delta as f64 / 1e9 / dt)
    }

    /// The last-active stage's name, or `"idle"`.
    fn active_stage_name(&self) -> &'static str {
        match self.active_stage.load(Ordering::Relaxed) {
            0 => "idle",
            i => Stage::ALL[i - 1].name(),
        }
    }

    /// `(done, requested, fraction)` of grain progress right now.
    fn progress(&self) -> (u64, u64, Option<f64>) {
        let requested = self.recorder.counter(Counter::GrainsRequested);
        let done = self
            .recorder
            .counter(Counter::GrainsCompleted)
            .saturating_add(self.recorder.counter(Counter::GrainsFailed));
        let fraction = if requested > 0 {
            Some((done.min(requested)) as f64 / requested as f64)
        } else {
            None
        };
        (done, requested, fraction)
    }

    /// Remaining-seconds estimate from grain completion fraction: the run
    /// took `elapsed` for fraction `f`, so the rest costs
    /// `elapsed * (1 - f) / f`. `None` until a grain finishes.
    fn eta_seconds(&self) -> Option<f64> {
        let (_, _, fraction) = self.progress();
        let f = fraction?;
        if f <= 0.0 {
            return None;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        Some((elapsed * (1.0 - f) / f).max(0.0))
    }

    /// Renders the `/healthz` JSON document.
    fn health_json(&self) -> String {
        let uptime = self.started.elapsed().as_secs_f64();
        let (done, requested, fraction) = self.progress();
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"status\":\"ok\",\"uptime_s\":{uptime:.3},\"stage\":\"{}\"",
            self.active_stage_name()
        );
        let _ = write!(
            out,
            ",\"progress\":{{\"grains_requested\":{requested},\"grains_done\":{done},\
             \"fraction\":{}}}",
            json_f64(fraction, 4)
        );
        let _ = write!(out, ",\"eta_s\":{}", json_f64(self.eta_seconds(), 3));
        let short = self.config.window_short;
        let long = self.config.window_long;
        let _ = write!(
            out,
            ",\"rates\":{{\"events_per_s_1s\":{},\"events_per_s_10s\":{},\
             \"accesses_per_s_1s\":{}",
            json_f64(self.rate_over(Counter::EventsDecoded, short), 0),
            json_f64(self.rate_over(Counter::EventsDecoded, long), 0),
            json_f64(self.rate_over(Counter::AccessesDecoded, short), 0),
        );
        out.push_str(",\"stage_busy_1s\":{");
        let mut first = true;
        for stage in Stage::PIPELINE_ORDER {
            if let Some(busy) = self.stage_busy_over(stage, short) {
                if busy > 0.0 {
                    if !first {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{busy:.3}", stage.name());
                    first = false;
                }
            }
        }
        out.push_str("}}");
        let budget = |cap: Option<u64>, value: u64| match cap {
            Some(cap) => format!("{}", cap.saturating_sub(value)),
            None => "null".to_string(),
        };
        let events = self.recorder.gauge(crate::Gauge::BudgetEvents);
        let blocks = self.recorder.gauge(crate::Gauge::BudgetDistinctBlocks);
        let nodes = self.recorder.gauge(crate::Gauge::BudgetTreeNodes);
        let _ = write!(
            out,
            ",\"budget\":{{\"events\":{events},\"events_headroom\":{},\
             \"distinct_blocks\":{blocks},\"distinct_blocks_headroom\":{},\
             \"tree_nodes\":{nodes},\"tree_nodes_headroom\":{}}}",
            budget(self.config.budget_events, events),
            budget(self.config.budget_distinct_blocks, blocks),
            budget(self.config.budget_tree_nodes, nodes),
        );
        let _ = write!(
            out,
            ",\"ticks\":{},\"scrapes\":{}}}",
            self.ticks.load(Ordering::Relaxed),
            self.scrapes.load(Ordering::Relaxed),
        );
        out
    }

    /// Renders one stderr heartbeat line (also mirrored as a JSONL
    /// `heartbeat` event by the aggregator).
    fn heartbeat_line(&self) -> String {
        let uptime = self.started.elapsed().as_secs_f64();
        let (done, requested, fraction) = self.progress();
        let rate = self
            .rate_over(Counter::EventsDecoded, self.config.window_short)
            .unwrap_or(0.0);
        let mut line = format!(
            "reuselens: up {uptime:.1}s stage={} ",
            self.active_stage_name()
        );
        match fraction {
            Some(f) => {
                let _ = write!(line, "grains {done}/{requested} ({:.0}%)", f * 100.0);
            }
            None => line.push_str("grains 0/?"),
        }
        let _ = write!(line, " {}", fmt_rate(rate));
        if let Some(eta) = self.eta_seconds() {
            let _ = write!(line, " eta {eta:.1}s");
        }
        line
    }

    /// Routes one HTTP request path.
    fn respond(&self, path: &str) -> Response {
        match path {
            "/metrics" => {
                self.scrapes.fetch_add(1, Ordering::Relaxed);
                Response::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.recorder.snapshot().to_prometheus(),
                )
            }
            "/healthz" => Response::ok("application/json", self.health_json()),
            "/timeline" => {
                let snapshot = match &self.timeline {
                    Some(timeline) => timeline.snapshot(),
                    None => TimelineSnapshot {
                        events: Vec::new(),
                        dropped: 0,
                    },
                };
                Response::ok("application/json", format_chrome_trace(&snapshot))
            }
            "/jobs" => match &self.config.jobs {
                Some(jobs) => Response::ok("application/json", jobs()),
                None => Response::not_found(),
            },
            "/" => Response::ok(
                "text/plain; charset=utf-8",
                "reuselens telemetry\n\nGET /metrics   Prometheus text\n\
                 GET /healthz   liveness + progress JSON\nGET /timeline  Chrome trace JSON\n\
                 GET /jobs      daemon job table JSON (serve mode only)\n"
                    .into(),
            ),
            _ => Response::not_found(),
        }
    }
}

/// Renders an optional float as a JSON number with fixed decimals, or
/// `null` when absent or non-finite (JSON has no NaN/Infinity).
fn json_f64(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.decimals$}"),
        _ => "null".to_string(),
    }
}

/// The running service: one aggregator thread, optionally one HTTP
/// listener. Construct with [`TelemetryService::start`], expose over HTTP
/// with [`serve`](TelemetryService::serve), and always
/// [`shutdown`](TelemetryService::shutdown) before reading the final
/// export (shutdown is prompt — it interrupts the aggregator's sleep).
pub struct TelemetryService {
    shared: Arc<Shared>,
    aggregator: Option<JoinHandle<()>>,
    http: Option<HttpServer>,
}

impl std::fmt::Debug for TelemetryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryService")
            .field("ticks", &self.ticks())
            .field("addr", &self.local_addr())
            .finish_non_exhaustive()
    }
}

impl TelemetryService {
    /// Starts the aggregator thread over `recorder` (and `timeline`, when
    /// the run keeps one, for `/timeline`). The service holds its own
    /// `Arc`s: installing or uninstalling the process-global slots while
    /// it runs is safe and does not disturb it.
    pub fn start(
        recorder: Arc<MetricsRecorder>,
        timeline: Option<Arc<Timeline>>,
        config: ServiceConfig,
    ) -> TelemetryService {
        let tick = config.tick.max(Duration::from_millis(1));
        let heartbeat = config.heartbeat;
        let shared = Arc::new(Shared {
            recorder,
            timeline,
            config,
            started: Instant::now(),
            window: Mutex::new(VecDeque::new()),
            active_stage: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            stop: Mutex::new(false),
            stop_signal: Condvar::new(),
        });
        // Seed the window so the first tick already has a baseline.
        shared.tick_once();
        let thread_shared = shared.clone();
        let aggregator = std::thread::Builder::new()
            .name("obs-aggregator".into())
            .spawn(move || aggregator_loop(&thread_shared, tick, heartbeat))
            .ok();
        TelemetryService {
            shared,
            aggregator,
            http: None,
        }
    }

    /// Binds the HTTP surface on `addr` (`"127.0.0.1:0"` picks an
    /// ephemeral port) and returns the bound address.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn serve(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let shared = self.shared.clone();
        let handler: Handler = Arc::new(move |path: &str| shared.respond(path));
        let server = HttpServer::bind(addr, handler)?;
        let local = server.local_addr();
        self.http = Some(server);
        Ok(local)
    }

    /// The HTTP listener's address, once [`serve`](Self::serve) succeeded.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().map(HttpServer::local_addr)
    }

    /// Aggregator ticks taken so far (at least 1: the seed sample).
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// `/metrics` scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.shared.scrapes.load(Ordering::Relaxed)
    }

    /// The `/metrics` body, rendered in-process (no socket).
    pub fn metrics_text(&self) -> String {
        self.shared.recorder.snapshot().to_prometheus()
    }

    /// The `/healthz` body, rendered in-process (no socket).
    pub fn health_json(&self) -> String {
        self.shared.health_json()
    }

    /// The sampled values of one counter across the retained window,
    /// oldest first — the monotonicity oracle for the concurrency tests.
    pub fn counter_series(&self, counter: Counter) -> Vec<u64> {
        self.shared
            .poisoned_window()
            .iter()
            .map(|s| s.counters[counter.index()])
            .collect()
    }

    /// Stops the aggregator (promptly) and the HTTP listener, joining
    /// both threads.
    pub fn shutdown(mut self) {
        {
            let mut stop = match self.shared.stop.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *stop = true;
        }
        self.shared.stop_signal.notify_all();
        if let Some(thread) = self.aggregator.take() {
            let _ = thread.join();
        }
        if let Some(server) = self.http.take() {
            server.shutdown();
        }
    }
}

fn aggregator_loop(shared: &Arc<Shared>, tick: Duration, heartbeat: Option<Duration>) {
    let mut last_heartbeat = Instant::now();
    loop {
        // Sleep one tick, interruptible by shutdown.
        let stop = match shared.stop.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (stop, _timeout) = match shared.stop_signal.wait_timeout(stop, tick) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        let stopping = *stop;
        drop(stop);
        // Take a final sample on the way out so the window reflects the
        // quiesced counters.
        shared.tick_once();
        if stopping {
            break;
        }
        if let Some(period) = heartbeat {
            if last_heartbeat.elapsed() >= period {
                last_heartbeat = Instant::now();
                let line = shared.heartbeat_line();
                eprintln!("{line}");
                let (done, requested, _) = shared.progress();
                crate::emit(EventKind::Heartbeat {
                    uptime_s: shared.started.elapsed().as_secs_f64(),
                    stage: shared.active_stage_name(),
                    grains_done: done,
                    grains_requested: requested,
                    events_per_s: shared
                        .rate_over(Counter::EventsDecoded, shared.config.window_short)
                        .unwrap_or(0.0),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gauge, Recorder as _};

    fn fast_config() -> ServiceConfig {
        ServiceConfig {
            tick: Duration::from_millis(5),
            window_short: Duration::from_millis(50),
            window_long: Duration::from_millis(500),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn aggregator_ticks_and_rates_appear() {
        let recorder = Arc::new(MetricsRecorder::new());
        let service = TelemetryService::start(recorder.clone(), None, fast_config());
        for _ in 0..20 {
            recorder.add(Counter::EventsDecoded, 1000);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(service.ticks() >= 2, "aggregator must have sampled");
        let series = service.counter_series(Counter::EventsDecoded);
        assert!(series.windows(2).all(|w| w[0] <= w[1]), "monotone: {series:?}");
        let health = service.health_json();
        assert!(health.contains("\"uptime_s\":"), "{health}");
        assert!(health.contains("\"events_per_s_1s\":"), "{health}");
        service.shutdown();
    }

    #[test]
    fn health_reports_progress_eta_and_budget_headroom() {
        let recorder = Arc::new(MetricsRecorder::new());
        recorder.add(Counter::GrainsRequested, 4);
        recorder.add(Counter::GrainsCompleted, 1);
        recorder.set_gauge(Gauge::BudgetEvents, 300);
        let config = ServiceConfig {
            budget_events: Some(1000),
            ..fast_config()
        };
        let service = TelemetryService::start(recorder, None, config);
        let health = service.health_json();
        assert!(health.contains("\"grains_requested\":4"), "{health}");
        assert!(health.contains("\"grains_done\":1"), "{health}");
        assert!(health.contains("\"fraction\":0.2500"), "{health}");
        assert!(!health.contains("\"eta_s\":null"), "one grain done: {health}");
        assert!(health.contains("\"events\":300"), "{health}");
        assert!(health.contains("\"events_headroom\":700"), "{health}");
        assert!(health.contains("\"distinct_blocks_headroom\":null"), "{health}");
        service.shutdown();
    }

    #[test]
    fn http_surface_serves_all_three_endpoints() {
        let recorder = Arc::new(MetricsRecorder::new());
        recorder.add(Counter::EventsDecoded, 7);
        let timeline = Arc::new(Timeline::new());
        timeline.record(
            Stage::Replay,
            timeline.epoch(),
            Duration::from_micros(3),
            1,
            crate::TimelineArgs::default(),
        );
        let mut service =
            TelemetryService::start(recorder, Some(timeline), fast_config());
        let addr = service.serve("127.0.0.1:0").expect("bind ephemeral");
        let (status, metrics) = crate::http_get(addr, "/metrics").expect("metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("reuselens_events_decoded_total 7"), "{metrics}");
        let (status, health) = crate::http_get(addr, "/healthz").expect("healthz");
        assert_eq!(status, 200);
        assert!(health.starts_with("{\"status\":\"ok\""), "{health}");
        let (status, trace) = crate::http_get(addr, "/timeline").expect("timeline");
        assert_eq!(status, 200);
        assert!(trace.contains("\"name\":\"replay\""), "{trace}");
        let (status, _) = crate::http_get(addr, "/unknown").expect("404 path");
        assert_eq!(status, 404);
        assert_eq!(service.scrapes(), 1);
        service.shutdown();
    }

    #[test]
    fn timeline_endpoint_without_timeline_serves_empty_trace() {
        let recorder = Arc::new(MetricsRecorder::new());
        let mut service = TelemetryService::start(recorder, None, fast_config());
        let addr = service.serve("127.0.0.1:0").expect("bind");
        let (status, trace) = crate::http_get(addr, "/timeline").expect("timeline");
        assert_eq!(status, 200);
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"timeline_dropped_total\":0"), "{trace}");
        service.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_even_with_a_long_tick() {
        let recorder = Arc::new(MetricsRecorder::new());
        let config = ServiceConfig {
            tick: Duration::from_secs(60),
            ..ServiceConfig::default()
        };
        let service = TelemetryService::start(recorder, None, config);
        let begin = Instant::now();
        service.shutdown();
        assert!(
            begin.elapsed() < Duration::from_secs(5),
            "shutdown must interrupt the sleeping aggregator"
        );
    }

    #[test]
    fn heartbeat_line_has_stage_progress_and_rate() {
        let recorder = Arc::new(MetricsRecorder::new());
        recorder.add(Counter::GrainsRequested, 2);
        recorder.add(Counter::GrainsCompleted, 1);
        let service = TelemetryService::start(recorder, None, fast_config());
        let line = service.shared.heartbeat_line();
        assert!(line.starts_with("reuselens: up "), "{line}");
        assert!(line.contains("grains 1/2 (50%)"), "{line}");
        assert!(line.contains("/s"), "{line}");
        service.shutdown();
    }

    #[test]
    fn json_f64_renders_null_for_non_finite() {
        assert_eq!(json_f64(None, 2), "null");
        assert_eq!(json_f64(Some(f64::NAN), 2), "null");
        assert_eq!(json_f64(Some(f64::INFINITY), 2), "null");
        assert_eq!(json_f64(Some(1.5), 2), "1.50");
    }
}
