//! A zero-dependency HTTP/1.1 server over [`std::net::TcpListener`], just
//! big enough to expose the telemetry service's three read-only endpoints.
//!
//! The offline-workspace rule forbids pulling in an HTTP crate, and the
//! surface is deliberately tiny: `GET` only, three paths, every response
//! `Connection: close`. What *is* here is the part that matters for a
//! sidecar inside a measurement tool:
//!
//! * **Bounded connections** — at most [`MAX_ACTIVE_CONNECTIONS`] handler
//!   threads at once; excess clients get an immediate `503` instead of a
//!   growing backlog inside the analyzed process.
//! * **Bounded reads** — request heads are read with a socket timeout and
//!   an 8 KiB cap, so a stalled or hostile client cannot pin a handler.
//! * **Graceful shutdown** — [`HttpServer::shutdown`] flips a flag and
//!   wakes the blocking accept loop with a self-connection, then joins
//!   the accept thread; no `SO_REUSEADDR` races, no detached listener.
//!
//! Handlers are a plain `Fn(&str) -> Response` over the request path;
//! routing and body rendering live with the service, keeping this module
//! transport-only (and independently testable).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Concurrent in-flight request handlers; clients past this are refused
/// with `503` (the scrape interval is seconds, the budget is generous).
pub const MAX_ACTIVE_CONNECTIONS: usize = 16;

/// Per-socket read/write timeout: a scraper that stalls longer than this
/// loses its connection rather than pinning a handler thread.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Longest request head (request line + headers) accepted.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// One response a handler returns. The server adds the status line,
/// `Content-Length`, and `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A plain-text `404 Not Found`.
    pub fn not_found() -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".into(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The handler signature: request path (query string stripped) in,
/// [`Response`] out. Must be cheap-ish and must not panic (a panic kills
/// only that connection's thread, but the scrape is lost).
pub type Handler = Arc<dyn Fn(&str) -> Response + Send + Sync>;

/// A running HTTP listener. Dropping without calling
/// [`shutdown`](HttpServer::shutdown) leaks the accept thread until
/// process exit; the service owns one and always shuts it down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer").field("addr", &self.addr).finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"` or `"127.0.0.1:0"` for an
    /// ephemeral port) and starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be resolved or bound.
    pub fn bind(addr: &str, handler: Handler) -> io::Result<HttpServer> {
        // Resolve explicitly so a bad flag value fails at startup with a
        // clear message instead of inside the accept thread.
        let mut addrs = addr.to_socket_addrs()?;
        let resolved = addrs.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("no address for {addr:?}"))
        })?;
        let listener = TcpListener::bind(resolved)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("obs-http-accept".into())
            .spawn(move || accept_loop(&listener, &accept_stop, &handler))?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (carries the real port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it. In-flight
    /// handler threads finish their single response on their own (their
    /// sockets carry [`SOCKET_TIMEOUT`]).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake. A failure
        // here means the listener is already gone, which also unblocks.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, handler: &Handler) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        if active.load(Ordering::SeqCst) >= MAX_ACTIVE_CONNECTIONS {
            // Over budget: refuse inline (cheap — one small write).
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                &Response {
                    status: 503,
                    content_type: "text/plain; charset=utf-8",
                    body: "busy\n".into(),
                },
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let conn_active = active.clone();
        let handler = handler.clone();
        let spawned = std::thread::Builder::new()
            .name("obs-http-conn".into())
            .spawn(move || {
                let mut stream = stream;
                handle_connection(&mut stream, &handler);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Could not spawn (resource exhaustion): undo the count; the
            // client sees a closed connection.
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Reads the request head (up to the blank line or the size cap).
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_HEAD {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

fn handle_connection(stream: &mut TcpStream, handler: &Handler) {
    let head = match read_request_head(stream) {
        Ok(head) => head,
        Err(_) => {
            let _ = write_response(
                stream,
                &Response {
                    status: 408,
                    content_type: "text/plain; charset=utf-8",
                    body: "request timed out\n".into(),
                },
            );
            return;
        }
    };
    let response = route_request(&head, handler);
    let _ = write_response(stream, &response);
}

/// Parses the request line out of `head` and dispatches: non-GET methods
/// get `405`, malformed requests `400`, everything else the handler.
fn route_request(head: &str, handler: &Handler) -> Response {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request line\n".into(),
        };
    };
    if method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: format!("method {method} not allowed; this endpoint is GET-only\n"),
        };
    }
    // Strip any query string; the endpoints take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    handler(path)
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking GET against a server bound on `addr`, returning
/// `(status, body)`. Used by the bench scraper and tests; not a general
/// client (no redirects, no keep-alive, no chunked decoding — the server
/// above never produces them).
///
/// # Errors
///
/// Returns the I/O error when the connection or read fails, or
/// `InvalidData` when the response head is malformed.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no header/body split"));
    };
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|path: &str| match path {
            "/ping" => Response::ok("text/plain; charset=utf-8", "pong\n".into()),
            _ => Response::not_found(),
        });
        HttpServer::bind("127.0.0.1:0", handler).expect("bind ephemeral")
    }

    #[test]
    fn serves_get_and_404s_unknown_paths() {
        let server = echo_server();
        let addr = server.local_addr();
        let (status, body) = http_get(addr, "/ping").unwrap();
        assert_eq!((status, body.as_str()), (200, "pong\n"));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        // Query strings are stripped before routing.
        let (status, _) = http_get(addr, "/ping?x=1").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods_with_405() {
        let server = echo_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /ping HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405 "), "{out}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let server = echo_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400 "), "{out}");
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_accept_and_closes_the_port() {
        let server = echo_server();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the listener is gone; a request must fail to
        // connect or fail to produce a response.
        let outcome = http_get(addr, "/ping");
        assert!(outcome.is_err() || outcome.is_ok_and(|(s, _)| s == 0));
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let server = echo_server();
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || http_get(addr, "/ping").map(|(s, _)| s)))
                .collect();
            for handle in handles {
                assert_eq!(handle.join().unwrap().unwrap(), 200);
            }
        });
        server.shutdown();
    }
}
