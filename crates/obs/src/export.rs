//! Snapshot exporters: Prometheus text exposition and a human summary.
//!
//! Both render a [`MetricsSnapshot`] — plain data — so their output is a
//! pure function of the snapshot. The golden tests zero the snapshot's
//! timings and compare entire rendered strings, which keeps the formats
//! stable without depending on the machine's clock.

use crate::{Counter, Gauge, MetricsSnapshot, Stage};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Renders a snapshot in the Prometheus text exposition format: every
/// counter as `reuselens_<name>_total`, every gauge as
/// `reuselens_<name>`, and spans as the `stage`-labeled pair
/// `reuselens_stage_spans_total` / `reuselens_stage_seconds_total`.
/// Metrics appear even when zero, so scrapers see a stable series set.
pub fn format_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for counter in Counter::ALL {
        let name = counter.name();
        let _ = writeln!(out, "# HELP reuselens_{name}_total {}", counter.help());
        let _ = writeln!(out, "# TYPE reuselens_{name}_total counter");
        let _ = writeln!(
            out,
            "reuselens_{name}_total {}",
            snapshot.counter(counter)
        );
    }
    for gauge in Gauge::ALL {
        let name = gauge.name();
        let _ = writeln!(out, "# HELP reuselens_{name} {}", gauge.help());
        let _ = writeln!(out, "# TYPE reuselens_{name} gauge");
        let _ = writeln!(out, "reuselens_{name} {}", snapshot.gauge(gauge));
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_stage_spans_total Completed spans per pipeline stage."
    );
    let _ = writeln!(out, "# TYPE reuselens_stage_spans_total counter");
    for span in &snapshot.spans {
        let _ = writeln!(
            out,
            "reuselens_stage_spans_total{{stage=\"{}\"}} {}",
            span.stage.name(),
            span.count
        );
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_stage_seconds_total Wall-clock seconds spent per pipeline stage."
    );
    let _ = writeln!(out, "# TYPE reuselens_stage_seconds_total counter");
    for span in &snapshot.spans {
        let _ = writeln!(
            out,
            "reuselens_stage_seconds_total{{stage=\"{}\"}} {:.9}",
            span.stage.name(),
            span.total.as_secs_f64()
        );
    }
    format_prometheus_grains(snapshot, &mut out);
    out
}

/// Appends the per-grain attribution families, aggregated across the
/// snapshot's [`GrainProfile`](crate::GrainProfile) rows: replay counts by
/// `(grain, status)`, and wall seconds / events / peak tree nodes by
/// grain. HELP/TYPE headers are emitted even with no rows so the family
/// set stays stable; the labeled series themselves are data-driven.
fn format_prometheus_grains(snapshot: &MetricsSnapshot, out: &mut String) {
    let mut replays: BTreeMap<(u64, &str), u64> = BTreeMap::new();
    let mut seconds: BTreeMap<u64, f64> = BTreeMap::new();
    let mut events: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tree_nodes: BTreeMap<u64, u64> = BTreeMap::new();
    for grain in &snapshot.grains {
        *replays.entry((grain.block_size, grain.status.name())).or_default() += 1;
        *seconds.entry(grain.block_size).or_default() += grain.wall.as_secs_f64();
        *events.entry(grain.block_size).or_default() += grain.events;
        let peak = tree_nodes.entry(grain.block_size).or_default();
        *peak = (*peak).max(grain.tree_nodes);
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_grain_replays_total Replays recorded per grain and status."
    );
    let _ = writeln!(out, "# TYPE reuselens_grain_replays_total counter");
    for ((grain, status), count) in &replays {
        let _ = writeln!(
            out,
            "reuselens_grain_replays_total{{grain=\"{grain}\",status=\"{status}\"}} {count}"
        );
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_grain_seconds_total Wall-clock seconds spent replaying per grain."
    );
    let _ = writeln!(out, "# TYPE reuselens_grain_seconds_total counter");
    for (grain, secs) in &seconds {
        let _ = writeln!(
            out,
            "reuselens_grain_seconds_total{{grain=\"{grain}\"}} {secs:.9}"
        );
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_grain_events_total Events replayed per grain."
    );
    let _ = writeln!(out, "# TYPE reuselens_grain_events_total counter");
    for (grain, n) in &events {
        let _ = writeln!(out, "reuselens_grain_events_total{{grain=\"{grain}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_grain_tree_nodes_peak Peak order-statistic-tree nodes per grain."
    );
    let _ = writeln!(out, "# TYPE reuselens_grain_tree_nodes_peak gauge");
    for (grain, n) in &tree_nodes {
        let _ = writeln!(
            out,
            "reuselens_grain_tree_nodes_peak{{grain=\"{grain}\"}} {n}"
        );
    }
}

/// Formats an events-per-second rate with a deterministic unit ladder.
pub(crate) fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K/s", rate / 1e3)
    } else {
        format!("{rate:.0} /s")
    }
}

/// Formats a duration with a deterministic unit ladder (`0 ns` exactly
/// when zero, so zeroed golden snapshots render stably).
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos == 0 {
        "0 ns".to_string()
    } else if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Renders a snapshot as a human-readable summary: per-stage span table
/// first (stages in pipeline order — capture → decode → replay → sweep →
/// report — indented by their deepest observed nesting, zero-invocation
/// stages skipped), then the per-grain cost table when grains were
/// profiled, then every counter, then the budget gauges when any is set.
/// This is what the CLI prints to stderr as its timing footer.
pub fn format_summary(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== reuselens pipeline metrics ==");
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>12}",
        "stage", "spans", "total", "mean"
    );
    for stage in Stage::PIPELINE_ORDER {
        let span = snapshot.stage(stage);
        if span.count == 0 {
            continue;
        }
        let indent = "  ".repeat(span.max_depth.max(1) as usize);
        let name = format!("{indent}{}", span.stage.name());
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>12} {:>12}",
            name,
            span.count,
            fmt_duration(span.total),
            fmt_duration(span.mean()),
        );
    }
    if !snapshot.grains.is_empty() {
        let _ = writeln!(out, "grain profiles");
        let _ = writeln!(
            out,
            "  {:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
            "grain", "status", "wall", "events", "events/s", "blocks", "tree", "sample"
        );
        for grain in &snapshot.grains {
            let rate = if grain.wall.is_zero() {
                "-".to_string()
            } else {
                fmt_rate(grain.events_per_second())
            };
            let sample = if grain.sample_inv == 0 {
                "-".to_string()
            } else {
                format!("1/{}", grain.sample_inv)
            };
            let _ = writeln!(
                out,
                "  {:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
                grain.block_size,
                grain.status.name(),
                fmt_duration(grain.wall),
                grain.events,
                rate,
                grain.distinct_blocks,
                grain.tree_nodes,
                sample,
            );
        }
    }
    let _ = writeln!(out, "counters");
    for counter in Counter::ALL {
        let _ = writeln!(
            out,
            "  {:<22} {:>20}",
            counter.name(),
            snapshot.counter(counter)
        );
    }
    if Gauge::ALL.iter().any(|&g| snapshot.gauge(g) != 0) {
        let _ = writeln!(out, "gauges");
        for gauge in Gauge::ALL {
            let _ = writeln!(out, "  {:<22} {:>20}", gauge.name(), snapshot.gauge(gauge));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, Recorder, Stage};

    #[test]
    fn prometheus_exports_every_metric_even_at_zero() {
        let snap = MetricsRecorder::new().snapshot();
        let text = format_prometheus(&snap);
        for counter in Counter::ALL {
            assert!(text.contains(&format!("reuselens_{}_total 0", counter.name())));
        }
        for gauge in Gauge::ALL {
            assert!(text.contains(&format!("reuselens_{} 0", gauge.name())));
        }
        for stage in Stage::ALL {
            assert!(text.contains(&format!(
                "reuselens_stage_spans_total{{stage=\"{}\"}} 0",
                stage.name()
            )));
            assert!(text.contains(&format!(
                "reuselens_stage_seconds_total{{stage=\"{}\"}} 0.000000000",
                stage.name()
            )));
        }
        // Exposition-format hygiene: HELP/TYPE pairs for every family
        // (two stage families plus four per-grain families).
        assert_eq!(text.matches("# TYPE").count(), Counter::ALL.len() + Gauge::ALL.len() + 6);
    }

    #[test]
    fn rate_ladder_is_deterministic() {
        assert_eq!(fmt_rate(0.0), "0 /s");
        assert_eq!(fmt_rate(999.0), "999 /s");
        assert_eq!(fmt_rate(1_500.0), "1.50 K/s");
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M/s");
        assert_eq!(fmt_rate(3_000_000_000.0), "3.00 G/s");
    }

    #[test]
    fn summary_skips_zero_invocation_stages() {
        let rec = MetricsRecorder::new();
        rec.record_span(Stage::Replay, Duration::from_millis(1), 1);
        let text = format_summary(&rec.snapshot());
        // Stage rows are left-padded names followed by column padding;
        // counter names like `events_captured` never match `capture `.
        assert!(text.contains("replay "));
        assert!(!text.contains("capture "), "zero-invocation stages are skipped");
        assert!(!text.contains("sweep "));
    }

    #[test]
    fn summary_and_prometheus_render_grain_profiles() {
        use crate::{GrainProfile, GrainStatus};
        let rec = MetricsRecorder::new();
        rec.record_grain(&GrainProfile {
            block_size: 64,
            wall: Duration::from_secs(2),
            events: 4_000_000,
            distinct_blocks: 1000,
            tree_nodes: 1000,
            status: GrainStatus::Completed,
            blocks_sampled: 0,
            blocks_evicted: 0,
            sample_inv: 0,
        });
        rec.record_grain(&GrainProfile {
            block_size: 128,
            wall: Duration::ZERO,
            events: 0,
            distinct_blocks: 0,
            tree_nodes: 0,
            status: GrainStatus::Failed,
            blocks_sampled: 0,
            blocks_evicted: 0,
            sample_inv: 0,
        });
        rec.record_grain(&GrainProfile {
            block_size: 4096,
            wall: Duration::from_secs(1),
            events: 1_000_000,
            distinct_blocks: 50_000,
            tree_nodes: 512,
            status: GrainStatus::Completed,
            blocks_sampled: 500,
            blocks_evicted: 12,
            sample_inv: 100,
        });
        let snap = rec.snapshot();
        let summary = format_summary(&snap);
        assert!(summary.contains("grain profiles"));
        assert!(summary.contains("completed"));
        assert!(summary.contains("2.00 M/s"));
        assert!(summary.contains("failed"));
        assert!(summary.contains("1/100"), "sampled grains show their rate");
        let prom = format_prometheus(&snap);
        assert!(prom.contains(
            "reuselens_grain_replays_total{grain=\"64\",status=\"completed\"} 1"
        ));
        assert!(prom.contains(
            "reuselens_grain_replays_total{grain=\"128\",status=\"failed\"} 1"
        ));
        assert!(prom.contains("reuselens_grain_seconds_total{grain=\"64\"} 2.000000000"));
        assert!(prom.contains("reuselens_grain_events_total{grain=\"64\"} 4000000"));
        assert!(prom.contains("reuselens_grain_tree_nodes_peak{grain=\"64\"} 1000"));
    }

    #[test]
    fn duration_ladder_is_deterministic() {
        assert_eq!(fmt_duration(Duration::ZERO), "0 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1500)), "1.5 us");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.500 ms");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500 s");
    }

    #[test]
    fn summary_shows_counts_and_hides_unset_gauges() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::EventsCaptured, 42);
        rec.record_span(Stage::Capture, Duration::from_millis(2), 1);
        let text = format_summary(&rec.snapshot());
        assert!(text.contains("capture"));
        assert!(text.contains("events_captured"));
        assert!(text.contains("42"));
        assert!(!text.contains("gauges"), "unset gauges are omitted");
        rec.set_gauge(Gauge::BudgetEvents, 10);
        assert!(format_summary(&rec.snapshot()).contains("gauges"));
    }
}
