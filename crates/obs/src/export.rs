//! Snapshot exporters: Prometheus text exposition and a human summary.
//!
//! Both render a [`MetricsSnapshot`] — plain data — so their output is a
//! pure function of the snapshot. The golden tests zero the snapshot's
//! timings and compare entire rendered strings, which keeps the formats
//! stable without depending on the machine's clock.

use crate::{Counter, Gauge, MetricsSnapshot};
use std::fmt::Write as _;
use std::time::Duration;

/// Renders a snapshot in the Prometheus text exposition format: every
/// counter as `reuselens_<name>_total`, every gauge as
/// `reuselens_<name>`, and spans as the `stage`-labeled pair
/// `reuselens_stage_spans_total` / `reuselens_stage_seconds_total`.
/// Metrics appear even when zero, so scrapers see a stable series set.
pub fn format_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for counter in Counter::ALL {
        let name = counter.name();
        let _ = writeln!(out, "# HELP reuselens_{name}_total {}", counter.help());
        let _ = writeln!(out, "# TYPE reuselens_{name}_total counter");
        let _ = writeln!(
            out,
            "reuselens_{name}_total {}",
            snapshot.counter(counter)
        );
    }
    for gauge in Gauge::ALL {
        let name = gauge.name();
        let _ = writeln!(out, "# HELP reuselens_{name} {}", gauge.help());
        let _ = writeln!(out, "# TYPE reuselens_{name} gauge");
        let _ = writeln!(out, "reuselens_{name} {}", snapshot.gauge(gauge));
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_stage_spans_total Completed spans per pipeline stage."
    );
    let _ = writeln!(out, "# TYPE reuselens_stage_spans_total counter");
    for span in &snapshot.spans {
        let _ = writeln!(
            out,
            "reuselens_stage_spans_total{{stage=\"{}\"}} {}",
            span.stage.name(),
            span.count
        );
    }
    let _ = writeln!(
        out,
        "# HELP reuselens_stage_seconds_total Wall-clock seconds spent per pipeline stage."
    );
    let _ = writeln!(out, "# TYPE reuselens_stage_seconds_total counter");
    for span in &snapshot.spans {
        let _ = writeln!(
            out,
            "reuselens_stage_seconds_total{{stage=\"{}\"}} {:.9}",
            span.stage.name(),
            span.total.as_secs_f64()
        );
    }
    out
}

/// Formats a duration with a deterministic unit ladder (`0 ns` exactly
/// when zero, so zeroed golden snapshots render stably).
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos == 0 {
        "0 ns".to_string()
    } else if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Renders a snapshot as a human-readable summary: per-stage span table
/// first (stages indented by their deepest observed nesting), then every
/// non-uninteresting counter, then the budget gauges when any is set.
/// This is what the CLI prints to stderr as its timing footer.
pub fn format_summary(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== reuselens pipeline metrics ==");
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>12}",
        "stage", "spans", "total", "mean"
    );
    for span in &snapshot.spans {
        let indent = "  ".repeat(span.max_depth.max(1) as usize);
        let name = format!("{indent}{}", span.stage.name());
        if span.count == 0 {
            let _ = writeln!(out, "{:<24} {:>6} {:>12} {:>12}", name, 0, "-", "-");
        } else {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>12} {:>12}",
                name,
                span.count,
                fmt_duration(span.total),
                fmt_duration(span.mean()),
            );
        }
    }
    let _ = writeln!(out, "counters");
    for counter in Counter::ALL {
        let _ = writeln!(
            out,
            "  {:<22} {:>20}",
            counter.name(),
            snapshot.counter(counter)
        );
    }
    if Gauge::ALL.iter().any(|&g| snapshot.gauge(g) != 0) {
        let _ = writeln!(out, "gauges");
        for gauge in Gauge::ALL {
            let _ = writeln!(out, "  {:<22} {:>20}", gauge.name(), snapshot.gauge(gauge));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, Recorder, Stage};

    #[test]
    fn prometheus_exports_every_metric_even_at_zero() {
        let snap = MetricsRecorder::new().snapshot();
        let text = format_prometheus(&snap);
        for counter in Counter::ALL {
            assert!(text.contains(&format!("reuselens_{}_total 0", counter.name())));
        }
        for gauge in Gauge::ALL {
            assert!(text.contains(&format!("reuselens_{} 0", gauge.name())));
        }
        for stage in Stage::ALL {
            assert!(text.contains(&format!(
                "reuselens_stage_spans_total{{stage=\"{}\"}} 0",
                stage.name()
            )));
            assert!(text.contains(&format!(
                "reuselens_stage_seconds_total{{stage=\"{}\"}} 0.000000000",
                stage.name()
            )));
        }
        // Exposition-format hygiene: HELP/TYPE pairs for every family.
        assert_eq!(text.matches("# TYPE").count(), Counter::ALL.len() + Gauge::ALL.len() + 2);
    }

    #[test]
    fn duration_ladder_is_deterministic() {
        assert_eq!(fmt_duration(Duration::ZERO), "0 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1500)), "1.5 us");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.500 ms");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500 s");
    }

    #[test]
    fn summary_shows_counts_and_hides_unset_gauges() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::EventsCaptured, 42);
        rec.record_span(Stage::Capture, Duration::from_millis(2), 1);
        let text = format_summary(&rec.snapshot());
        assert!(text.contains("capture"));
        assert!(text.contains("events_captured"));
        assert!(text.contains("42"));
        assert!(!text.contains("gauges"), "unset gauges are omitted");
        rec.set_gauge(Gauge::BudgetEvents, 10);
        assert!(format_summary(&rec.snapshot()).contains("gauges"));
    }
}
