//! # reuselens-prng — a tiny deterministic PRNG
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `rand` (or anything else) from crates.io. Workload generators and
//! randomized tests only need a seedable, reproducible, statistically
//! decent generator — [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014)
//! is 64 bits of state, passes BigCrush when used this way, and is the
//! generator Java's `SplittableRandom` and xoshiro's seeding use.
//!
//! Determinism is load-bearing: workload index arrays are part of golden
//! traces, so the sequence for a given seed must never change.
//!
//! # Examples
//!
//! ```
//! use reuselens_prng::SplitMix64;
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let a: Vec<u64> = (0..4).map(|_| rng.gen_range(0..100)).collect();
//! let mut rng2 = SplitMix64::seed_from_u64(42);
//! let b: Vec<u64> = (0..4).map(|_| rng2.gen_range(0..100)).collect();
//! assert_eq!(a, b);
//! assert!(a.iter().all(|&x| x < 100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// fine: the output function decorrelates consecutive states.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)` via the widening
    /// multiply-shift reduction (bias ≤ 2⁻⁶⁴ · span, irrelevant here).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range called with an empty range");
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform value in `[range.start, range.end)` over signed integers.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_i64(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range_i64 on an empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.gen_range(0..span) as i64)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A vector of `n` values drawn from `vals`, where `n` itself is drawn
    /// from `len` — the shape the converted property tests use everywhere.
    pub fn vec_u64(&mut self, len: Range<u64>, vals: Range<u64>) -> Vec<u64> {
        let n = self.gen_range(len);
        (0..n).map(|_| self.gen_range(vals.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(1);
        let mut c = SplitMix64::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn known_answer_locks_the_sequence() {
        // Reference values from the published SplitMix64 algorithm with
        // seed 1234567. If these change, every golden workload changes.
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range_i64(-5..5);
            assert!((-5..5).contains(&s));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        // All values of a small range are reachable.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_helper_obeys_both_ranges() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..100 {
            let v = r.vec_u64(1..50, 0..7);
            assert!(!v.is_empty() && v.len() < 50);
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5..5);
    }
}
