//! Statistical accuracy harness for the constant-space sampled analyzer.
//!
//! Every case generates a long address trace from a seeded [`SplitMix64`]
//! stream (the same three access shapes as `property_oracle`: strided,
//! pointer-chasing, clustered — but 20k–60k accesses so a 1% sample still
//! holds enough blocks to estimate from), replays it through both the
//! exact [`ReuseAnalyzer`] and the [`SampledAnalyzer`], and compares the
//! finished profiles:
//!
//! * **rate 1.0** — the sampled profile must equal the exact profile
//!   field for field (only the `sampling` annotation may differ), at
//!   grains 1, 64, and 4096;
//! * **rate 0.1 / 0.01** — at grain 64, the scaled aggregates (total
//!   reuse mass, cold count, distinct-block footprint) and the per-octave
//!   histogram mass must land within the stated relative-error bands
//!   ([`BANDS`]). Octaves holding less than [`MIN_OCTAVE_SHARE`] of the
//!   exact mass are skipped — tiny bins are sampling noise by
//!   construction, and the bands bound where the mass actually is.
//!
//! The bands are deliberately part of the contract: README's
//! "Approximate analysis" section quotes them, so loosening one here
//! must be a visible documentation change too.
//!
//! Failures are deterministic: the panic message carries the case index,
//! seed, rate, and the smallest failing prefix length (found by a
//! fixed-seed coarse shrink loop), so any failure reproduces exactly.

use reuselens_core::{Histogram, ReuseAnalyzer, ReuseProfile, SampledAnalyzer, SamplingConfig};
use reuselens_ir::{AccessKind, Program, ProgramBuilder, RefId};
use reuselens_prng::SplitMix64;
use reuselens_trace::TraceSink;

const BASE_SEED: u64 = 0x0b5e_7e57_0001;
const CASES_PER_SHAPE: usize = 4;
/// Grain the banded statistical checks run at.
const STAT_GRAIN: u64 = 64;
/// Grains the rate-1.0 bit-identity check runs at.
const IDENTITY_GRAINS: [u64; 3] = [1, 64, 4096];
/// Octaves below this share of the exact mass are too small to band.
const MIN_OCTAVE_SHARE: f64 = 0.05;
/// An octave is resolvable only when its distances span at least this
/// many sampling intervals (`1/rate`); below that the scaled estimate is
/// quantization, not measurement.
const RESOLVABLE_INVS: u64 = 4;

/// Relative-error bands per sampling rate: `(rate, aggregate, per_octave)`.
/// `aggregate` bounds total reuse mass, cold count, and the footprint
/// estimate; `per_octave` bounds the mass of each significant resolvable
/// octave. Calibrated against `calibrate_bands_print_errors` (worst
/// observed: 0.067/0.17 at rate 0.1, 0.31/0.28 at rate 0.01) with margin
/// for future hash or shape changes.
const BANDS: [(f64, f64, f64); 2] = [(0.1, 0.15, 0.30), (0.01, 0.45, 0.50)];

/// A one-reference program so the analyzers have a sink to attribute to;
/// the harness drives the [`TraceSink`] interface directly.
fn one_ref_program() -> Program {
    let mut p = ProgramBuilder::new("sampling_accuracy");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.for_("i", 0, 0, |r, i| {
            r.load(a, vec![i.into()]);
        });
    });
    p.finish()
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    Strided,
    PointerChasing,
    Clustered,
}

const SHAPES: [Shape; 3] = [Shape::Strided, Shape::PointerChasing, Shape::Clustered];

/// One deterministic long trace for (shape, seed). Footprints span
/// thousands of 64-byte blocks so a 1% spatial sample still tracks tens
/// of blocks.
fn gen_trace(shape: Shape, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let len = rng.gen_range(20_000..60_000) as usize;
    match shape {
        Shape::Strided => {
            let strides = [64u64, 136, 4096];
            let stride = strides[rng.gen_range(0..strides.len() as u64) as usize];
            let footprint = stride * rng.gen_range(2_048..8_192);
            let base = rng.gen_range(0..1 << 24);
            (0..len as u64)
                .map(|i| base + (i * stride) % footprint)
                .collect()
        }
        Shape::PointerChasing => {
            let span = rng.gen_range(1 << 18..1 << 22);
            (0..len).map(|_| rng.gen_range(0..span)).collect()
        }
        Shape::Clustered => {
            let mut addrs = Vec::with_capacity(len);
            let mut cluster = rng.gen_range(0..1 << 26);
            for _ in 0..len {
                if rng.gen_f64() < 0.02 {
                    cluster = rng.gen_range(0..1 << 26);
                }
                addrs.push(cluster + rng.gen_range(0..1 << 14));
            }
            addrs
        }
    }
}

fn run_exact(program: &Program, addrs: &[u64], grain: u64) -> ReuseProfile {
    let mut a = ReuseAnalyzer::new(program, grain);
    for &addr in addrs {
        a.access(RefId(0), addr, 8, AccessKind::Load);
    }
    a.finish()
}

fn run_sampled(
    program: &Program,
    addrs: &[u64],
    grain: u64,
    config: SamplingConfig,
) -> ReuseProfile {
    let mut a = SampledAnalyzer::new(program, grain, config);
    for &addr in addrs {
        a.access(RefId(0), addr, 8, AccessKind::Load);
    }
    a.finish()
}

fn merged(profile: &ReuseProfile) -> Histogram {
    let mut h = Histogram::new();
    for p in &profile.patterns {
        h.merge(&p.histogram);
    }
    h
}

/// Histogram mass per distance octave, keyed by the bit length of the
/// bin's lower edge (octave 0 holds distance 0).
fn octave_mass(h: &Histogram) -> std::collections::BTreeMap<u32, u64> {
    let mut out = std::collections::BTreeMap::new();
    for (lo, _hi, count) in h.iter() {
        *out.entry(64 - lo.leading_zeros()).or_insert(0) += count;
    }
    out
}

fn rel_err(got: f64, want: f64) -> f64 {
    if want == 0.0 {
        if got == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (got - want).abs() / want
    }
}

/// Runs both analyzers over `addrs` and checks the banded comparison.
/// Returns a mismatch description, or `None` when everything is within
/// band.
fn check(
    program: &Program,
    addrs: &[u64],
    rate: f64,
    aggregate_band: f64,
    octave_band: f64,
) -> Option<String> {
    let exact = run_exact(program, addrs, STAT_GRAIN);
    let sampled = run_sampled(program, addrs, STAT_GRAIN, SamplingConfig::fixed(rate));
    if sampled.total_accesses != exact.total_accesses {
        return Some(format!(
            "true access count must not be scaled: sampled {} vs exact {}",
            sampled.total_accesses, exact.total_accesses
        ));
    }
    let he = merged(&exact);
    let hs = merged(&sampled);
    let checks = [
        ("total reuse mass", hs.total() as f64, he.total() as f64),
        (
            "cold count",
            sampled.total_cold() as f64,
            exact.total_cold() as f64,
        ),
        (
            "distinct blocks",
            sampled.distinct_blocks as f64,
            exact.distinct_blocks as f64,
        ),
    ];
    for (what, got, want) in checks {
        let err = rel_err(got, want);
        if err > aggregate_band {
            return Some(format!(
                "{what}: sampled {got:.0} vs exact {want:.0} \
                 (rel err {err:.3} > band {aggregate_band})"
            ));
        }
    }
    // Sampled distances are recorded pre-scaled by `inv`, so both
    // histograms are in true-distance units and octaves compare
    // directly. A measured distance is a noisy estimate of the true one,
    // so mass near an octave edge can spill into a neighbor: each
    // significant exact octave is compared against the sampled mass in
    // the same octave and its immediate neighbors, banded against the
    // exact mass over the same window.
    let exact_mass = octave_mass(&he);
    let sampled_mass = octave_mass(&hs);
    let window = |mass: &std::collections::BTreeMap<u32, u64>, octave: u32| -> f64 {
        (octave.saturating_sub(1)..=octave + 1)
            .filter_map(|o| mass.get(&o))
            .sum::<u64>() as f64
    };
    let total = he.total() as f64;
    let inv = sampled.sampling.expect("sampled profile carries info").inv;
    for (&octave, &mass) in &exact_mass {
        let share = mass as f64 / total.max(1.0);
        if share < MIN_OCTAVE_SHARE {
            continue;
        }
        // Distances below ~RESOLVABLE_INVS/rate are unresolvable: the
        // sampled tree sees fewer than RESOLVABLE_INVS blocks in the
        // reuse interval, so the scaled estimate quantizes to a handful
        // of values. Only octaves above that floor carry a band.
        if (1u64 << octave.saturating_sub(1)) < RESOLVABLE_INVS * inv {
            continue;
        }
        let want = window(&exact_mass, octave);
        let got = window(&sampled_mass, octave);
        let err = rel_err(got, want);
        if err > octave_band {
            return Some(format!(
                "octave {octave} ({}% of mass): sampled window {got:.0} vs exact \
                 window {want:.0} (rel err {err:.3} > band {octave_band})",
                (share * 100.0) as u64
            ));
        }
    }
    None
}

/// Finds a small failing prefix by coarse geometric steps (a full linear
/// shrink over a 60k trace would square the cost). Deterministic: same
/// seed, same prefix.
fn shrink(
    program: &Program,
    addrs: &[u64],
    rate: f64,
    aggregate_band: f64,
    octave_band: f64,
) -> (usize, String) {
    let step = (addrs.len() / 64).max(1);
    let mut plen = step;
    while plen < addrs.len() {
        if let Some(msg) = check(program, &addrs[..plen], rate, aggregate_band, octave_band) {
            return (plen, msg);
        }
        plen += step;
    }
    let msg = check(program, addrs, rate, aggregate_band, octave_band)
        .expect("shrink called on a passing trace");
    (addrs.len(), msg)
}

#[test]
fn rate_one_is_bit_identical_to_exact() {
    let program = one_ref_program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..2 {
            let seed = BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let addrs = gen_trace(shape, seed);
            for grain in IDENTITY_GRAINS {
                let exact = run_exact(&program, &addrs, grain);
                let sampled = run_sampled(&program, &addrs, grain, SamplingConfig::fixed(1.0));
                let info = sampled.sampling.expect("rate 1.0 still marks the profile");
                assert_eq!(
                    info.inv, 1,
                    "case {case} ({shape:?}, seed {seed:#x}): rate 1.0 must mean inv 1"
                );
                let mut stripped = sampled.clone();
                stripped.sampling = None;
                assert_eq!(
                    stripped, exact,
                    "case {case} ({shape:?}, seed {seed:#x}, grain {grain}): \
                     rate-1.0 sampled profile diverges from the exact analyzer"
                );
            }
            case += 1;
        }
    }
}

#[test]
fn sampled_histograms_stay_within_stated_bands() {
    let program = one_ref_program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..CASES_PER_SHAPE {
            let seed = BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let addrs = gen_trace(shape, seed);
            for (rate, aggregate_band, octave_band) in BANDS {
                if check(&program, &addrs, rate, aggregate_band, octave_band).is_some() {
                    let (plen, msg) =
                        shrink(&program, &addrs, rate, aggregate_band, octave_band);
                    panic!(
                        "case {case} ({shape:?}, seed {seed:#x}, rate {rate}): \
                         smallest failing prefix {plen}/{}: {msg}\n\
                         repro: gen_trace({shape:?}, {seed:#x}) truncated to {plen}",
                        addrs.len(),
                    );
                }
            }
            case += 1;
        }
    }
    assert_eq!(case, SHAPES.len() * CASES_PER_SHAPE);
}

/// Adaptive mode must hold its tracked-block budget on every shape while
/// still landing footprint estimates in the fixed-rate band.
#[test]
fn adaptive_mode_holds_budget_on_every_shape() {
    let program = one_ref_program();
    for (case, shape) in SHAPES.into_iter().enumerate() {
        let seed = BASE_SEED ^ 0xada9 ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let addrs = gen_trace(shape, seed);
        let budget = 128u64;
        let mut a = SampledAnalyzer::new(&program, STAT_GRAIN, SamplingConfig::adaptive(budget));
        for &addr in &addrs {
            a.access(RefId(0), addr, 8, AccessKind::Load);
            assert!(
                a.tracked_blocks() <= budget,
                "case {case} ({shape:?}, seed {seed:#x}): \
                 tracked {} blocks, budget {budget}",
                a.tracked_blocks()
            );
        }
        let info = a.sampling_info();
        assert_eq!(
            info.blocks_sampled,
            a.tracked_blocks() + info.blocks_evicted,
            "case {case} ({shape:?}, seed {seed:#x}): sampled/evicted books do not balance"
        );
        let profile = a.finish();
        let exact = run_exact(&program, &addrs, STAT_GRAIN);
        let err = rel_err(profile.distinct_blocks as f64, exact.distinct_blocks as f64);
        assert!(
            err < 0.45,
            "case {case} ({shape:?}, seed {seed:#x}): adaptive footprint estimate \
             {} vs exact {} (rel err {err:.3})",
            profile.distinct_blocks,
            exact.distinct_blocks
        );
    }
}

#[test]
#[ignore]
fn calibrate_bands_print_errors() {
    let program = one_ref_program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..CASES_PER_SHAPE {
            let seed = BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let addrs = gen_trace(shape, seed);
            for (rate, _, _) in BANDS {
                let exact = run_exact(&program, &addrs, STAT_GRAIN);
                let sampled = run_sampled(&program, &addrs, STAT_GRAIN, SamplingConfig::fixed(rate));
                let he = merged(&exact);
                let hs = merged(&sampled);
                let em = octave_mass(&he);
                let sm = octave_mass(&hs);
                let window = |mass: &std::collections::BTreeMap<u32, u64>, octave: u32| -> f64 {
                    (octave.saturating_sub(1)..=octave + 1)
                        .filter_map(|o| mass.get(&o))
                        .sum::<u64>() as f64
                };
                let total = he.total() as f64;
                let inv = sampled.sampling.unwrap().inv;
                let mut worst_oct = 0.0f64;
                for (&o, &m) in &em {
                    if (m as f64 / total.max(1.0)) < MIN_OCTAVE_SHARE { continue; }
                    if (1u64 << o.saturating_sub(1)) < RESOLVABLE_INVS * inv { continue; }
                    worst_oct = worst_oct.max(rel_err(window(&sm, o), window(&em, o)));
                }
                println!(
                    "case {case} {shape:?} rate {rate}: mass {:.3} cold {:.3} distinct {:.3} oct {:.3}",
                    rel_err(hs.total() as f64, he.total() as f64),
                    rel_err(sampled.total_cold() as f64, exact.total_cold() as f64),
                    rel_err(sampled.distinct_blocks as f64, exact.distinct_blocks as f64),
                    worst_oct,
                );
            }
            case += 1;
        }
    }
}
