//! End-to-end property suite for crash-safe checkpoint/resume: an
//! interrupted-and-resumed analysis must equal an uninterrupted one
//! **bit for bit**, and no injected crash or corruption may ever panic,
//! silently corrupt a profile, or fail with anything but a typed
//! [`SnapshotError`].
//!
//! Every case builds a seeded [`SplitMix64`] trace buffer directly (the
//! same three shapes as `partition_identity`: strided, pointer-chasing,
//! clustered — with randomly nested scopes so carrier attribution
//! crosses checkpoint boundaries) and proves:
//!
//! * **identity** — a checkpointed run equals `analyze_buffer_with` for
//!   exact, fixed-rate, and adaptive sampling, and matches every
//!   `--replay-threads` setting of the uninterrupted engine;
//! * **kill-and-resume** — rerunning with `resume` against the snapshot
//!   directory of an interrupted run (any surviving snapshot prefix)
//!   reproduces the uninterrupted profiles bit for bit;
//! * **every crash point** — a newest snapshot torn at *every byte
//!   boundary* by [`CrashPoint`] is rejected and recovery falls back to
//!   the previous valid snapshot (or a cold start), still bit-identical;
//! * **typed rejection** — magic/version/CRC/truncation/garbage/grain
//!   mutations produce the matching [`SnapshotError`] variant from
//!   [`snapshot_meta`] and are skipped (never fatal) during resume;
//! * **observability** — written/resumed/rejected checkpoint counters
//!   reconcile with the snapshot files on disk.
//!
//! The obs recorder slot is process-global, so every test serializes on
//! one poison-tolerant mutex (the `obs_identity` idiom) — a test that
//! installs a recorder must not absorb a concurrent test's counters.

use reuselens_core::{
    analyze_buffer_checkpointed, analyze_buffer_with, snapshot_file_name, snapshot_meta,
    AnalyzeOptions, CheckpointOptions, ReplayThreads, ReuseProfile, SamplingConfig, SnapshotError,
    SNAPSHOT_VERSION,
};
use reuselens_ir::{AccessKind, Program, ProgramBuilder, RefId, ScopeId};
use reuselens_obs::{self as obs, Counter, MetricsRecorder};
use reuselens_prng::SplitMix64;
use reuselens_trace::fault::{Corruptor, CrashPoint};
use reuselens_trace::{TraceBuffer, TraceSink};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

const GRAINS: [u64; 3] = [1, 64, 4096];
const NREFS: u32 = 5;
const BASE_SEED: u64 = 0xc4ec_9011_2e5e_0001;

/// Serializes tests around the process-global recorder slot.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A program with [`NREFS`] references so buffer `RefId`s resolve to
/// real sinks; the suite drives the [`TraceSink`] interface directly.
fn program() -> Program {
    let mut p = ProgramBuilder::new("checkpoint_resume");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.for_("i", 0, 0, |r, i| {
            for _ in 0..NREFS {
                r.load(a, vec![i.into()]);
            }
        });
    });
    p.finish()
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    Strided,
    PointerChasing,
    Clustered,
}

const SHAPES: [Shape; 3] = [Shape::Strided, Shape::PointerChasing, Shape::Clustered];

/// One deterministic trace buffer for (shape, seed): `len` accesses over
/// five references with randomly nested scopes.
fn gen_buffer(shape: Shape, seed: u64, len: u64) -> TraceBuffer {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut cluster = rng.gen_range(0..1 << 20);
    let stride = [1u64, 8, 64, 136, 4096][rng.gen_range(0..5) as usize];
    let footprint = (stride * rng.gen_range(8..64)).max(1);
    let base = rng.gen_range(0..1 << 16);
    let mut buf = TraceBuffer::new();
    let mut open: Vec<u32> = Vec::new();
    buf.enter(ScopeId(1));
    open.push(1);
    for i in 0..len {
        if rng.gen_f64() < 0.05 && open.len() < 6 {
            let id = 2 + open.len() as u32;
            buf.enter(ScopeId(id));
            open.push(id);
        } else if rng.gen_f64() < 0.05 && open.len() > 1 {
            let id = open.pop().expect("open scope");
            buf.exit(ScopeId(id));
        }
        let addr = match shape {
            Shape::Strided => base + (i * stride) % footprint,
            Shape::PointerChasing => rng.gen_range(0..1 << 16),
            Shape::Clustered => {
                if rng.gen_f64() < 0.1 {
                    cluster = rng.gen_range(0..1 << 20);
                }
                cluster + rng.gen_range(0..256)
            }
        };
        let kind = if i % 3 == 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        buf.access(RefId(rng.gen_range(0..NREFS as u64) as u32), addr, 8, kind);
    }
    while let Some(id) = open.pop() {
        buf.exit(ScopeId(id));
    }
    buf
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reuselens-ckpt-resume-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn ckpt(dir: &Path, every: u64, resume: bool) -> CheckpointOptions {
    CheckpointOptions {
        dir: dir.to_path_buf(),
        every,
        resume,
    }
}

/// Uninterrupted baseline profiles, strict.
fn baseline(program: &Program, buf: &TraceBuffer, opts: &AnalyzeOptions) -> Vec<ReuseProfile> {
    let (profiles, _timings) = analyze_buffer_with(program, buf, &GRAINS, opts)
        .into_strict()
        .expect("uninterrupted replay must complete");
    profiles
}

/// Checkpointed profiles, strict; infrastructure errors fail the test.
fn checkpointed(
    program: &Program,
    buf: &TraceBuffer,
    opts: &AnalyzeOptions,
    ckpt: &CheckpointOptions,
) -> Vec<ReuseProfile> {
    let (profiles, _timings) = analyze_buffer_checkpointed(program, buf, &GRAINS, opts, ckpt)
        .expect("checkpoint infrastructure must hold")
        .into_strict()
        .expect("checkpointed replay must complete");
    profiles
}

/// Snapshot files currently in `dir`, `(file name, bytes)`.
fn snapshot_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return files,
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".rlsnap") {
            let bytes = std::fs::read(entry.path()).expect("snapshot readable");
            files.push((name, bytes));
        }
    }
    files.sort();
    files
}

/// The sampling modes the identity must hold under.
fn sampling_modes() -> Vec<SamplingConfig> {
    vec![
        SamplingConfig::Exact,
        SamplingConfig::fixed(0.5),
        SamplingConfig::fixed(0.1),
        SamplingConfig::adaptive(64),
    ]
}

/// Tentpole identity: a checkpointed run (snapshotting every 97 events)
/// equals the uninterrupted engine bit for bit — for exact, fixed-rate,
/// and adaptive sampling, at every replay-threads setting of the
/// uninterrupted side — and leaves no temp files behind.
#[test]
fn checkpointed_run_matches_uninterrupted_bit_for_bit() {
    let _guard = lock();
    let program = program();
    let mut case = 0usize;
    for shape in SHAPES {
        for rep in 0..3u64 {
            let seed = BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let buf = gen_buffer(shape, seed, 400 + rep * 350);
            for sampling in sampling_modes() {
                let opts = AnalyzeOptions {
                    sampling,
                    ..AnalyzeOptions::default()
                };
                let serial = baseline(&program, &buf, &opts);
                let dir = temp_dir(&format!("identity-{case}-{sampling:?}"));
                let got = checkpointed(&program, &buf, &opts, &ckpt(&dir, 97, false));
                assert_eq!(
                    serial, got,
                    "case {case} ({shape:?}, seed {seed:#x}, {sampling:?}): \
                     checkpointed profiles diverge from uninterrupted"
                );
                // The identity spans the partitioned engine too: every
                // replay-threads setting of the uninterrupted side equals
                // the checkpointed result (adaptive sampling replays
                // serially either way).
                for threads in [ReplayThreads::Fixed(2), ReplayThreads::Fixed(4), ReplayThreads::Auto]
                {
                    let opts = AnalyzeOptions {
                        sampling,
                        replay_threads: threads,
                        ..AnalyzeOptions::default()
                    };
                    assert_eq!(
                        baseline(&program, &buf, &opts),
                        got,
                        "case {case} ({shape:?}, seed {seed:#x}, {sampling:?}, \
                         {threads:?}): partitioned baseline diverges from checkpointed"
                    );
                }
                // Atomic-rename protocol: no torn temp files survive, and
                // every snapshot left behind is fully CRC-valid.
                for entry in std::fs::read_dir(&dir).expect("checkpoint dir").flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    assert!(
                        name.ends_with(".rlsnap"),
                        "case {case}: unexpected leftover {name:?} (torn temp file?)"
                    );
                }
                for (name, bytes) in snapshot_files(&dir) {
                    let meta = snapshot_meta(&bytes)
                        .unwrap_or_else(|e| panic!("case {case}: {name} invalid: {e}"));
                    assert_eq!(meta.version, SNAPSHOT_VERSION);
                }
                std::fs::remove_dir_all(&dir).ok();
            }
            case += 1;
        }
    }
    assert_eq!(case, SHAPES.len() * 3);
}

/// Kill-and-resume: for every surviving snapshot prefix of an
/// interrupted run — newest file kept, newest deleted, all deleted —
/// resuming reproduces the uninterrupted profiles bit for bit.
#[test]
fn resume_from_any_surviving_snapshot_prefix_is_bit_identical() {
    let _guard = lock();
    let program = program();
    for (case, shape) in SHAPES.into_iter().enumerate() {
        let seed = BASE_SEED ^ 0xdead ^ (case as u64) << 17;
        let buf = gen_buffer(shape, seed, 900);
        let opts = AnalyzeOptions::default();
        let serial = baseline(&program, &buf, &opts);
        let dir = temp_dir(&format!("resume-{case}"));
        // Populate the directory (simulating a run killed after its last
        // snapshot), then resume against ever-shorter snapshot prefixes.
        let got = checkpointed(&program, &buf, &opts, &ckpt(&dir, 128, false));
        assert_eq!(serial, got, "case {case}: populate run diverged");
        loop {
            let files = snapshot_files(&dir);
            // `every = u64::MAX` so resume runs never rewrite the
            // snapshots this loop is deliberately deleting.
            let resumed = checkpointed(&program, &buf, &opts, &ckpt(&dir, u64::MAX, true));
            assert_eq!(
                serial,
                resumed,
                "case {case} ({shape:?}): resume with {} snapshots diverged",
                files.len()
            );
            // Drop the newest snapshot (lexicographic == chronological)
            // and resume again from the one before it.
            match files.last() {
                Some((name, _)) => std::fs::remove_file(dir.join(name)).expect("remove newest"),
                None => break,
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash injection at every byte boundary: the newest snapshot torn to
/// any prefix length by [`CrashPoint`] must be rejected during resume,
/// recovery must fall back to the previous valid snapshot (or a cold
/// start), and the profiles must still be bit-identical — never a panic,
/// never silent corruption.
#[test]
fn every_torn_newest_snapshot_recovers_bit_identically() {
    let _guard = lock();
    let program = program();
    let buf = gen_buffer(Shape::Clustered, BASE_SEED ^ 0x7011, 500);
    let opts = AnalyzeOptions::default();
    let serial = baseline(&program, &buf, &opts);
    // One grain keeps the run count tractable (~a few thousand replays).
    let grain = [64u64];
    let serial_one = vec![serial[1].clone()];
    let dir = temp_dir("crashpoint");
    let populate = analyze_buffer_checkpointed(&program, &buf, &grain, &opts, &ckpt(&dir, 128, false))
        .expect("populate")
        .into_strict()
        .expect("populate strict")
        .0;
    assert_eq!(serial_one, populate);
    let files = snapshot_files(&dir);
    let (newest_name, newest_bytes) = files.last().expect("at least one snapshot").clone();
    assert!(files.len() >= 2, "need an older snapshot to fall back to");
    for torn_len in 0..=newest_bytes.len() as u64 {
        let mut cp = CrashPoint::new(Vec::new(), torn_len);
        let _ = cp.write_all(&newest_bytes);
        let torn = cp.into_inner();
        assert_eq!(torn.len() as u64, torn_len.min(newest_bytes.len() as u64));
        std::fs::write(dir.join(&newest_name), &torn).expect("plant torn snapshot");
        let resumed = analyze_buffer_checkpointed(
            &program,
            &buf,
            &grain,
            &opts,
            &ckpt(&dir, u64::MAX, true),
        )
        .unwrap_or_else(|e| panic!("torn at byte {torn_len}: infrastructure error {e}"))
        .into_strict()
        .unwrap_or_else(|e| panic!("torn at byte {torn_len}: grain failed {e}"))
        .0;
        assert_eq!(
            serial_one, resumed,
            "torn newest snapshot at byte {torn_len} corrupted the resumed profile"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hostile mutations produce the matching typed [`SnapshotError`] from
/// [`snapshot_meta`] — precise diagnostics, not a generic failure.
#[test]
fn snapshot_meta_reports_typed_errors_for_each_mutation() {
    let _guard = lock();
    let program = program();
    let buf = gen_buffer(Shape::Strided, BASE_SEED ^ 0x5eed, 400);
    let dir = temp_dir("typed-errors");
    let opts = AnalyzeOptions::default();
    checkpointed(&program, &buf, &opts, &ckpt(&dir, 100, false));
    let (_, image) = snapshot_files(&dir).last().expect("snapshot").clone();
    assert!(snapshot_meta(&image).is_ok());

    // Magic: clobber the first byte.
    let mut bad_magic = image.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        snapshot_meta(&bad_magic),
        Err(SnapshotError::BadMagic)
    ));

    // Version: bump past what this reader supports (offset 6, LE u16).
    let mut skewed = image.clone();
    skewed[6] = (SNAPSHOT_VERSION + 1) as u8;
    skewed[7] = ((SNAPSHOT_VERSION + 1) >> 8) as u8;
    match snapshot_meta(&skewed) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("version skew not detected: {other:?}"),
    }

    // CRC: flip one bit anywhere past the frame headers.
    let mut corruptor = Corruptor::new(0xc0de);
    for round in 0..32 {
        let flipped = corruptor.flip_bytes(&image, 1);
        if flipped == image {
            continue;
        }
        let err = snapshot_meta(&flipped).expect_err("bit flip must be detected");
        assert!(
            matches!(
                err,
                SnapshotError::CrcMismatch { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::UnsupportedVersion { .. }
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::Corrupt { .. }
            ),
            "round {round}: flip produced untyped error {err:?}"
        );
    }

    // Truncation: every strict prefix is Truncated or a framing error —
    // never Ok, never a panic.
    for len in 0..image.len() {
        let err = snapshot_meta(&image[..len]).expect_err("prefix must be rejected");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::CrcMismatch { .. }
                    | SnapshotError::Corrupt { .. }
            ),
            "prefix of {len} bytes produced untyped error {err:?}"
        );
    }

    // Trailing garbage: bytes past the last frame are corruption, not
    // slack — a framing bug would otherwise hide there forever.
    let padded = corruptor.trailing_garbage(&image, 7);
    assert!(matches!(
        snapshot_meta(&padded),
        Err(SnapshotError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupted, version-skewed, and wrong-grain snapshot files planted in
/// the directory are all rejected during resume — the run falls back and
/// still reproduces the uninterrupted profiles, with the written /
/// resumed / rejected counters reconciling against the files on disk.
#[test]
fn resume_rejects_hostile_files_and_counters_reconcile() {
    let _guard = lock();
    let program = program();
    let buf = gen_buffer(Shape::PointerChasing, BASE_SEED ^ 0xfa11, 700);
    let opts = AnalyzeOptions::default();
    let serial = baseline(&program, &buf, &opts);
    let dir = temp_dir("hostile");
    let every = 128u64;

    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let got = checkpointed(&program, &buf, &opts, &ckpt(&dir, every, false));
    obs::uninstall();
    assert_eq!(serial, got);
    let files = snapshot_files(&dir);
    // Interior boundaries only: each grain snapshots at every multiple
    // of `every` strictly below the event count.
    let expected_written: u64 = GRAINS.len() as u64 * (buf.events().saturating_sub(1) / every);
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(Counter::CheckpointsWritten), expected_written);
    assert_eq!(files.len() as u64, expected_written);
    assert_eq!(snap.counter(Counter::CheckpointsResumed), 0);
    assert_eq!(snap.counter(Counter::CheckpointsRejected), 0);

    // Corrupt every grain's newest snapshot and plant a wrong-grain
    // image under a newer filename than any real one: resume must
    // reject all of them (counted), fall back, and still match.
    let mut corruptor = Corruptor::new(0x0bad_5eed);
    let mut planted_bad = 0u64;
    for &grain in &GRAINS {
        let grain_files: Vec<&(String, Vec<u8>)> = files
            .iter()
            .filter(|(name, _)| name.starts_with(&format!("ckpt-g{grain}-")))
            .collect();
        let (newest, bytes) = *grain_files.last().expect("grain snapshots");
        std::fs::write(dir.join(newest), corruptor.flip_bytes(bytes, 3))
            .expect("corrupt newest");
        planted_bad += 1;
        // A valid snapshot from grain 1 claiming to be this grain's most
        // advanced progress: internally consistent, but mismatched.
        if grain != 1 {
            let (_, foreign) = files
                .iter()
                .find(|(name, _)| name.starts_with("ckpt-g1-"))
                .expect("grain-1 snapshot")
                .clone();
            std::fs::write(dir.join(snapshot_file_name(grain, buf.events())), foreign)
                .expect("plant foreign snapshot");
            planted_bad += 1;
        }
    }
    let recorder = Arc::new(MetricsRecorder::new());
    obs::install(recorder.clone());
    let resumed = checkpointed(&program, &buf, &opts, &ckpt(&dir, u64::MAX, true));
    obs::uninstall();
    assert_eq!(
        serial, resumed,
        "resume across hostile snapshot files diverged from uninterrupted"
    );
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(Counter::CheckpointsRejected), planted_bad);
    // Every grain still had at least one older valid snapshot to resume
    // from (grain 1's newest was corrupted but its older files survive).
    assert_eq!(snap.counter(Counter::CheckpointsResumed), GRAINS.len() as u64);
    assert_eq!(snap.counter(Counter::CheckpointsWritten), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume against an empty or missing directory is a clean cold start,
/// and `every` larger than the trace writes no snapshots at all.
#[test]
fn cold_start_and_oversized_interval_edge_cases() {
    let _guard = lock();
    let program = program();
    let buf = gen_buffer(Shape::Strided, BASE_SEED ^ 0xc01d, 300);
    let opts = AnalyzeOptions::default();
    let serial = baseline(&program, &buf, &opts);
    // Missing directory + resume: created, nothing to resume, identical.
    let dir = temp_dir("cold");
    let got = checkpointed(&program, &buf, &opts, &ckpt(&dir, u64::MAX, true));
    assert_eq!(serial, got);
    assert!(snapshot_files(&dir).is_empty(), "oversized interval wrote snapshots");
    // every = 1 (snapshot at every event) still matches.
    let got = checkpointed(&program, &buf, &opts, &ckpt(&dir, 1, false));
    assert_eq!(serial, got);
    assert!(!snapshot_files(&dir).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
