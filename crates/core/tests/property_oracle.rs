//! Randomized differential suite: the tree-based analyzer versus the
//! brute-force LRU-stack oracle.
//!
//! Every case generates an address trace from a seeded [`SplitMix64`]
//! stream (strided, pointer-chasing, or clustered — the three access
//! shapes the paper's workloads exhibit), replays it through
//! [`ReuseAnalyzer`] at grains 1/64/4096, and checks, access by access,
//! that the analyzer's measured distance equals
//! [`oracle::stack_distances`]. The finished profile's merged histogram
//! and cold count must match the oracle's aggregates too, and a
//! [`MultiGrainAnalyzer`] over the same stream must produce profiles
//! bit-identical to the per-grain analyzers.
//!
//! Failures are deterministic: the panic message carries the case index,
//! seed, grain, and the smallest failing prefix length (found by a
//! fixed-seed shrink loop), so any failure reproduces exactly.

use reuselens_core::oracle;
use reuselens_core::{Histogram, MultiGrainAnalyzer, ReuseAnalyzer};
use reuselens_ir::{AccessKind, Program, ProgramBuilder, RefId};
use reuselens_prng::SplitMix64;
use reuselens_trace::TraceSink;

const GRAINS: [u64; 3] = [1, 64, 4096];
const CASES_PER_SHAPE: usize = 72;
const BASE_SEED: u64 = 0x0b5e_7e57_0000;

/// A one-reference program so the analyzer has a sink to attribute to;
/// the property suite drives the [`TraceSink`] interface directly.
fn one_ref_program() -> Program {
    let mut p = ProgramBuilder::new("property_oracle");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.for_("i", 0, 0, |r, i| {
            r.load(a, vec![i.into()]);
        });
    });
    p.finish()
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    /// Constant stride over a wrapped footprint (unit and non-unit).
    Strided,
    /// Uniform random addresses — worst case for any locality shortcut.
    PointerChasing,
    /// Bursts of nearby addresses with occasional far jumps.
    Clustered,
}

const SHAPES: [Shape; 3] = [Shape::Strided, Shape::PointerChasing, Shape::Clustered];

/// Generates one deterministic address trace for (shape, seed).
fn gen_trace(shape: Shape, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let len = rng.gen_range(50..400) as usize;
    match shape {
        Shape::Strided => {
            // Strides straddle the test grains: sub-block, exactly one
            // block, and block-misaligned.
            let strides = [1u64, 8, 64, 136, 4096, 4104];
            let stride = strides[rng.gen_range(0..strides.len() as u64) as usize];
            let footprint = stride * rng.gen_range(8..64);
            let base = rng.gen_range(0..1 << 20);
            (0..len as u64)
                .map(|i| base + (i * stride) % footprint)
                .collect()
        }
        Shape::PointerChasing => {
            let span = rng.gen_range(1 << 8..1 << 16);
            (0..len).map(|_| rng.gen_range(0..span)).collect()
        }
        Shape::Clustered => {
            let mut addrs = Vec::with_capacity(len);
            let mut cluster = rng.gen_range(0..1 << 20);
            for _ in 0..len {
                if rng.gen_f64() < 0.1 {
                    cluster = rng.gen_range(0..1 << 20);
                }
                addrs.push(cluster + rng.gen_range(0..256));
            }
            addrs
        }
    }
}

/// Replays `addrs` through a fresh analyzer at `grain` and diffs it
/// against the oracle, per access and in aggregate. Returns a mismatch
/// description, or `None` when everything agrees.
fn check(program: &Program, addrs: &[u64], grain: u64) -> Option<String> {
    let expected = oracle::stack_distances(addrs, grain);
    let mut analyzer = ReuseAnalyzer::new(program, grain);
    let mut want_hist = Histogram::new();
    let mut want_cold = 0u64;
    for (i, (&addr, want)) in addrs.iter().zip(&expected).enumerate() {
        analyzer.access(RefId(0), addr, 8, AccessKind::Load);
        let got = analyzer.last_distance();
        if got != *want {
            return Some(format!(
                "access {i} (addr {addr:#x}): analyzer says {got:?}, oracle says {want:?}"
            ));
        }
        match want {
            Some(d) => want_hist.add(*d),
            None => want_cold += 1,
        }
    }
    let profile = analyzer.finish();
    let mut got_hist = Histogram::new();
    for p in &profile.patterns {
        got_hist.merge(&p.histogram);
    }
    if got_hist != want_hist {
        return Some(format!(
            "merged histogram mismatch: {} reuses measured, {} expected",
            got_hist.total(),
            want_hist.total()
        ));
    }
    if profile.total_cold() != want_cold {
        return Some(format!(
            "cold mismatch: {} measured, {want_cold} expected",
            profile.total_cold()
        ));
    }
    if profile.total_accesses != addrs.len() as u64 {
        return Some(format!(
            "access count mismatch: {} measured, {} expected",
            profile.total_accesses,
            addrs.len()
        ));
    }
    None
}

/// Finds the smallest failing prefix of `addrs` — the shrunk repro. The
/// trace is fixed (same seed), so the search is deterministic.
fn shrink(program: &Program, addrs: &[u64], grain: u64) -> (usize, String) {
    for plen in 1..=addrs.len() {
        if let Some(msg) = check(program, &addrs[..plen], grain) {
            return (plen, msg);
        }
    }
    unreachable!("shrink called on a passing trace");
}

#[test]
fn analyzer_matches_oracle_on_random_traces() {
    let program = one_ref_program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..CASES_PER_SHAPE {
            let seed = BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let addrs = gen_trace(shape, seed);
            for grain in GRAINS {
                if check(&program, &addrs, grain).is_some() {
                    let (plen, msg) = shrink(&program, &addrs, grain);
                    panic!(
                        "case {case} ({shape:?}, seed {seed:#x}, grain {grain}): \
                         smallest failing prefix {plen}/{}: {msg}\n\
                         prefix: {:?}",
                        addrs.len(),
                        &addrs[..plen],
                    );
                }
            }
            case += 1;
        }
    }
    assert_eq!(case, SHAPES.len() * CASES_PER_SHAPE);
}

/// A [`MultiGrainAnalyzer`] over one stream must equal independent
/// per-grain analyzers — same fan-out the replay pipeline relies on.
#[test]
fn multi_grain_matches_independent_analyzers() {
    let program = one_ref_program();
    for case in 0..8usize {
        let seed = BASE_SEED ^ 0xfeed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let shape = SHAPES[case % SHAPES.len()];
        let addrs = gen_trace(shape, seed);
        let mut multi = MultiGrainAnalyzer::new(&program, &GRAINS);
        let mut singles: Vec<ReuseAnalyzer> = GRAINS
            .iter()
            .map(|&g| ReuseAnalyzer::new(&program, g))
            .collect();
        for &addr in &addrs {
            multi.access(RefId(0), addr, 8, AccessKind::Load);
            for s in &mut singles {
                s.access(RefId(0), addr, 8, AccessKind::Load);
            }
        }
        let multi_profiles = multi.finish();
        for (mp, s) in multi_profiles.iter().zip(singles) {
            let sp = s.finish();
            assert_eq!(
                mp, &sp,
                "case {case} (seed {seed:#x}): multi-grain profile at grain {} \
                 diverges from the standalone analyzer",
                sp.block_size
            );
        }
    }
}
