//! Cross-granularity invariants of the analyzer, checked on random
//! traces: the properties the paper relies on when it measures cache
//! (line) and TLB (page) behaviour in a single pass.

use proptest::prelude::*;
use reuselens_core::{MultiGrainAnalyzer, ReuseAnalyzer};
use reuselens_ir::{AccessKind, Expr, ProgramBuilder, RefId};
use reuselens_trace::TraceSink;

fn dummy_program() -> reuselens_ir::Program {
    let mut p = ProgramBuilder::new("dummy");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.load(a, vec![Expr::c(0)]);
    });
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coarser blocks can only merge lines: fewer (or equal) distinct
    /// blocks, identical access totals, fewer (or equal) cold misses.
    #[test]
    fn coarser_granularity_merges_blocks(
        addrs in proptest::collection::vec(0u64..1 << 16, 1..400),
    ) {
        let prog = dummy_program();
        let mut mg = MultiGrainAnalyzer::new(&prog, &[64, 4096]);
        for &a in &addrs {
            mg.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profiles = mg.finish();
        let (fine, coarse) = (&profiles[0], &profiles[1]);
        prop_assert_eq!(fine.total_accesses, coarse.total_accesses);
        prop_assert!(coarse.distinct_blocks <= fine.distinct_blocks);
        prop_assert!(coarse.total_cold() <= fine.total_cold());
        prop_assert!(fine.accesses_balance());
        prop_assert!(coarse.accesses_balance());
    }

    /// The multi-grain wrapper is exactly equivalent to running each
    /// analyzer separately over the same trace.
    #[test]
    fn multigrain_equals_independent_runs(
        addrs in proptest::collection::vec(0u64..1 << 14, 1..300),
    ) {
        let prog = dummy_program();
        let mut mg = MultiGrainAnalyzer::new(&prog, &[64, 1024]);
        let mut fine = ReuseAnalyzer::new(&prog, 64);
        let mut coarse = ReuseAnalyzer::new(&prog, 1024);
        for &a in &addrs {
            mg.access(RefId(0), a, 8, AccessKind::Load);
            fine.access(RefId(0), a, 8, AccessKind::Load);
            coarse.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profiles = mg.finish();
        prop_assert_eq!(&profiles[0], &fine.finish());
        prop_assert_eq!(&profiles[1], &coarse.finish());
    }

    /// At any granularity, a reuse distance never exceeds the number of
    /// other distinct blocks in the whole run.
    #[test]
    fn distances_bounded_by_footprint(
        addrs in proptest::collection::vec(0u64..1 << 12, 1..300),
    ) {
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        for &a in &addrs {
            an.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profile = an.finish();
        let bound = profile.distinct_blocks; // self excluded => strict
        for pat in &profile.patterns {
            if let Some(max) = pat.histogram.max_distance() {
                prop_assert!(max < bound.max(1) * 2,
                    "distance {max} vs {bound} distinct blocks");
            }
            // exact check on the histogram's mass at or above the bound
            prop_assert_eq!(pat.histogram.count_ge(bound), 0.0);
        }
    }
}

/// Determinism: the same program analyzed twice produces identical
/// profiles (the repro harnesses depend on this).
#[test]
fn analysis_is_deterministic() {
    let mut p = ProgramBuilder::new("det");
    let ix = p.index_array("ix", &[256]);
    let a = p.array("a", 8, &[4096]);
    p.routine("main", |r| {
        r.for_("t", 0, 2, |r, _| {
            r.for_("i", 0, 255, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
    });
    let prog = p.finish();
    let idx: Vec<i64> = (0..256).map(|k| (k * 37) % 4096).collect();
    let r1 =
        reuselens_core::analyze_program(&prog, &[64, 4096], vec![(ix, idx.clone())]).unwrap();
    let r2 = reuselens_core::analyze_program(&prog, &[64, 4096], vec![(ix, idx)]).unwrap();
    assert_eq!(r1.profiles, r2.profiles);
    assert_eq!(r1.exec, r2.exec);
}
