//! Cross-granularity invariants of the analyzer, checked on seeded random
//! traces: the properties the paper relies on when it measures cache
//! (line) and TLB (page) behaviour in a single pass.

use reuselens_core::{MultiGrainAnalyzer, ReuseAnalyzer};
use reuselens_ir::{AccessKind, Expr, ProgramBuilder, RefId};
use reuselens_prng::SplitMix64;
use reuselens_trace::TraceSink;

fn dummy_program() -> reuselens_ir::Program {
    let mut p = ProgramBuilder::new("dummy");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.load(a, vec![Expr::c(0)]);
    });
    p.finish()
}

/// Coarser blocks can only merge lines: fewer (or equal) distinct
/// blocks, identical access totals, fewer (or equal) cold misses.
#[test]
fn coarser_granularity_merges_blocks() {
    let mut rng = SplitMix64::seed_from_u64(0x6a41_0001);
    for _case in 0..48 {
        let addrs = rng.vec_u64(1..400, 0..1 << 16);
        let prog = dummy_program();
        let mut mg = MultiGrainAnalyzer::new(&prog, &[64, 4096]);
        for &a in &addrs {
            mg.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profiles = mg.finish();
        let (fine, coarse) = (&profiles[0], &profiles[1]);
        assert_eq!(fine.total_accesses, coarse.total_accesses);
        assert!(coarse.distinct_blocks <= fine.distinct_blocks);
        assert!(coarse.total_cold() <= fine.total_cold());
        assert!(fine.accesses_balance());
        assert!(coarse.accesses_balance());
    }
}

/// The multi-grain wrapper is exactly equivalent to running each
/// analyzer separately over the same trace.
#[test]
fn multigrain_equals_independent_runs() {
    let mut rng = SplitMix64::seed_from_u64(0x6a41_0002);
    for _case in 0..48 {
        let addrs = rng.vec_u64(1..300, 0..1 << 14);
        let prog = dummy_program();
        let mut mg = MultiGrainAnalyzer::new(&prog, &[64, 1024]);
        let mut fine = ReuseAnalyzer::new(&prog, 64);
        let mut coarse = ReuseAnalyzer::new(&prog, 1024);
        for &a in &addrs {
            mg.access(RefId(0), a, 8, AccessKind::Load);
            fine.access(RefId(0), a, 8, AccessKind::Load);
            coarse.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profiles = mg.finish();
        assert_eq!(&profiles[0], &fine.finish());
        assert_eq!(&profiles[1], &coarse.finish());
    }
}

/// At any granularity, a reuse distance never exceeds the number of
/// other distinct blocks in the whole run.
#[test]
fn distances_bounded_by_footprint() {
    let mut rng = SplitMix64::seed_from_u64(0x6a41_0003);
    for _case in 0..48 {
        let addrs = rng.vec_u64(1..300, 0..1 << 12);
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        for &a in &addrs {
            an.access(RefId(0), a, 8, AccessKind::Load);
        }
        let profile = an.finish();
        let bound = profile.distinct_blocks; // self excluded => strict
        for pat in &profile.patterns {
            if let Some(max) = pat.histogram.max_distance() {
                assert!(
                    max < bound.max(1) * 2,
                    "distance {max} vs {bound} distinct blocks"
                );
            }
            // exact check on the histogram's mass at or above the bound
            assert_eq!(pat.histogram.count_ge(bound), 0.0);
        }
    }
}

/// Capture + parallel replay is bit-identical to the online pass on a
/// random indirect-access trace, at every granularity.
#[test]
fn parallel_replay_equals_online_on_random_gather() {
    let mut rng = SplitMix64::seed_from_u64(0x6a41_0004);
    for _case in 0..8 {
        let n = rng.gen_range(16..128);
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[n]);
        let a = p.array("a", 8, &[8192]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![Expr::load(ix, vec![i.into()])]);
                });
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..n).map(|_| rng.gen_range(0..8192) as i64).collect();
        let online =
            reuselens_core::analyze_program(&prog, &[64, 4096], vec![(ix, idx.clone())]).unwrap();
        let (par, stats) =
            reuselens_core::analyze_program_parallel(&prog, &[64, 4096], vec![(ix, idx)])
                .unwrap();
        assert_eq!(online.profiles, par.profiles);
        assert_eq!(stats.buffer.accesses, online.exec.accesses);
    }
}

/// Determinism: the same program analyzed twice produces identical
/// profiles (the repro harnesses depend on this).
#[test]
fn analysis_is_deterministic() {
    let mut p = ProgramBuilder::new("det");
    let ix = p.index_array("ix", &[256]);
    let a = p.array("a", 8, &[4096]);
    p.routine("main", |r| {
        r.for_("t", 0, 2, |r, _| {
            r.for_("i", 0, 255, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
    });
    let prog = p.finish();
    let idx: Vec<i64> = (0..256).map(|k| (k * 37) % 4096).collect();
    let r1 =
        reuselens_core::analyze_program(&prog, &[64, 4096], vec![(ix, idx.clone())]).unwrap();
    let r2 = reuselens_core::analyze_program(&prog, &[64, 4096], vec![(ix, idx)]).unwrap();
    assert_eq!(r1.profiles, r2.profiles);
    assert_eq!(r1.exec, r2.exec);
}
