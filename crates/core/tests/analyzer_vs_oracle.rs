//! The tree-based online analyzer must agree exactly with the brute-force
//! LRU stack-distance oracle on arbitrary traces.

use proptest::prelude::*;
use reuselens_core::{oracle, Histogram, ReuseAnalyzer};
use reuselens_ir::{Expr, ProgramBuilder, RefId};
use reuselens_trace::TraceSink;

/// A minimal one-reference program so the analyzer has a reference table.
fn dummy_program() -> reuselens_ir::Program {
    let mut p = ProgramBuilder::new("dummy");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.load(a, vec![Expr::c(0)]);
    });
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyzer_distances_match_oracle(
        addrs in proptest::collection::vec(0u64..4096, 1..500),
        shift in 3u32..8,
    ) {
        let block = 1u64 << shift;
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, block);
        for &a in &addrs {
            an.access(RefId(0), a, 8, reuselens_ir::AccessKind::Load);
        }
        let profile = an.finish();

        let expected = oracle::stack_distances(&addrs, block);
        let cold = expected.iter().filter(|d| d.is_none()).count() as u64;
        prop_assert_eq!(profile.total_cold(), cold);

        let mut want = Histogram::new();
        for d in expected.into_iter().flatten() {
            want.add(d);
        }
        let mut got = Histogram::new();
        for p in &profile.patterns {
            got.merge(&p.histogram);
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fully_associative_misses_match_simulation(
        addrs in proptest::collection::vec(0u64..2048, 1..400),
        cap in 1usize..64,
    ) {
        let block = 64u64;
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, block);
        for &a in &addrs {
            an.access(RefId(0), a, 8, reuselens_ir::AccessKind::Load);
        }
        let profile = an.finish();
        // Reuse-distance prediction for a fully associative LRU cache:
        // misses = cold + reuses with distance >= capacity. The histogram's
        // linear range is exact below 256, and `cap` < 64, so no binning
        // error is possible here.
        let mut predicted = profile.total_cold() as f64;
        for p in &profile.patterns {
            predicted += p.histogram.count_ge(cap as u64);
        }
        let simulated = oracle::fully_associative_misses(&addrs, block, cap);
        prop_assert!((predicted - simulated as f64).abs() < 1e-9,
            "predicted {predicted} != simulated {simulated}");
    }
}
