//! The tree-based online analyzer must agree exactly with the brute-force
//! LRU stack-distance oracle on arbitrary traces (seeded randomized tests).

use reuselens_core::{oracle, Histogram, ReuseAnalyzer};
use reuselens_ir::{Expr, ProgramBuilder, RefId};
use reuselens_prng::SplitMix64;
use reuselens_trace::TraceSink;

/// A minimal one-reference program so the analyzer has a reference table.
fn dummy_program() -> reuselens_ir::Program {
    let mut p = ProgramBuilder::new("dummy");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.load(a, vec![Expr::c(0)]);
    });
    p.finish()
}

#[test]
fn analyzer_distances_match_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0x000a_c1e0);
    for _case in 0..64 {
        let addrs = rng.vec_u64(1..500, 0..4096);
        let shift = rng.gen_range(3..8) as u32;
        let block = 1u64 << shift;
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, block);
        for &a in &addrs {
            an.access(RefId(0), a, 8, reuselens_ir::AccessKind::Load);
        }
        let profile = an.finish();

        let expected = oracle::stack_distances(&addrs, block);
        let cold = expected.iter().filter(|d| d.is_none()).count() as u64;
        assert_eq!(profile.total_cold(), cold);

        let mut want = Histogram::new();
        for d in expected.into_iter().flatten() {
            want.add(d);
        }
        let mut got = Histogram::new();
        for p in &profile.patterns {
            got.merge(&p.histogram);
        }
        assert_eq!(got, want);
    }
}

#[test]
fn fully_associative_misses_match_simulation() {
    let mut rng = SplitMix64::seed_from_u64(0xfa11_a550c);
    for _case in 0..64 {
        let addrs = rng.vec_u64(1..400, 0..2048);
        let cap = rng.gen_range(1..64) as usize;
        let block = 64u64;
        let prog = dummy_program();
        let mut an = ReuseAnalyzer::new(&prog, block);
        for &a in &addrs {
            an.access(RefId(0), a, 8, reuselens_ir::AccessKind::Load);
        }
        let profile = an.finish();
        // Reuse-distance prediction for a fully associative LRU cache:
        // misses = cold + reuses with distance >= capacity. The histogram's
        // linear range is exact below 256, and `cap` < 64, so no binning
        // error is possible here.
        let mut predicted = profile.total_cold() as f64;
        for p in &profile.patterns {
            predicted += p.histogram.count_ge(cap as u64);
        }
        let simulated = oracle::fully_associative_misses(&addrs, block, cap);
        assert!(
            (predicted - simulated as f64).abs() < 1e-9,
            "predicted {predicted} != simulated {simulated}"
        );
    }
}
