//! Randomized differential suite for time-partitioned single-grain
//! replay: partitioned must equal serial **bit for bit**.
//!
//! Every case builds a seeded [`SplitMix64`] trace buffer directly —
//! strided, pointer-chasing, or clustered addresses, five sink
//! references, and a randomly nested scope structure so carrier
//! attribution is exercised across partition boundaries — then replays
//! it serially and partitioned at 1/2/3/8 partitions and diffs the full
//! `ReuseProfile` vectors. The identity must also hold under
//! `SamplingConfig::fixed` and under non-tripping `AnalysisBudget` caps;
//! tripping caps must surface the *same* `BudgetLimit` kind both ways,
//! and injected faults (corrupted buffer, panicking grain) must degrade
//! through `PartialAnalysis` without hanging or harming sibling grains.
//!
//! Failures are deterministic: the panic message carries the case index,
//! shape, seed, grain, and partition count.

use reuselens_core::{
    analyze_buffer_with, AnalysisBudget, AnalyzeOptions, BudgetLimit, GrainError, ReplayThreads,
    ReuseProfile, SamplingConfig,
};
use reuselens_ir::{AccessKind, Program, ProgramBuilder, RefId, ScopeId};
use reuselens_prng::SplitMix64;
use reuselens_trace::fault::Corruptor;
use reuselens_trace::{TraceBuffer, TraceSink};

const GRAINS: [u64; 3] = [1, 64, 4096];
const PARTS: [usize; 4] = [1, 2, 3, 8];
const CASES_PER_SHAPE: usize = 12;
const NREFS: u32 = 5;
const BASE_SEED: u64 = 0x9a27_11ce_0000;

/// A program with [`NREFS`] references so the buffer's `RefId`s resolve
/// to real sinks; the suite drives the buffer's [`TraceSink`] interface
/// directly, so the program body itself is never executed.
fn program() -> Program {
    let mut p = ProgramBuilder::new("partition_identity");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.for_("i", 0, 0, |r, i| {
            for _ in 0..NREFS {
                r.load(a, vec![i.into()]);
            }
        });
    });
    p.finish()
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    /// Constant stride over a wrapped footprint (unit and non-unit).
    Strided,
    /// Uniform random addresses — maximal cross-partition unknowns.
    PointerChasing,
    /// Bursts of nearby addresses with occasional far jumps.
    Clustered,
}

const SHAPES: [Shape; 3] = [Shape::Strided, Shape::PointerChasing, Shape::Clustered];

/// Next address for one step of `shape`, mutating the walker state.
fn next_addr(shape: Shape, rng: &mut SplitMix64, i: u64, walker: &mut u64) -> u64 {
    match shape {
        Shape::Strided => {
            // walker holds (base, stride, footprint) packed at gen time.
            let stride = (*walker >> 40) & 0xffff;
            let footprint = (*walker >> 20) & 0xf_ffff;
            let base = *walker & 0xf_ffff;
            base + (i * stride) % footprint.max(1)
        }
        Shape::PointerChasing => rng.gen_range(0..1 << 16),
        Shape::Clustered => {
            if rng.gen_f64() < 0.1 {
                *walker = rng.gen_range(0..1 << 20);
            }
            *walker + rng.gen_range(0..256)
        }
    }
}

/// Builds one deterministic trace buffer for (shape, seed): 400–2000
/// accesses over five references, with scopes entered and exited at
/// random so reuse arcs cross scope *and* partition boundaries.
fn gen_buffer(shape: Shape, seed: u64) -> TraceBuffer {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let len = rng.gen_range(400..2000);
    let mut walker = match shape {
        Shape::Strided => {
            let strides = [1u64, 8, 64, 136, 4096];
            let stride = strides[rng.gen_range(0..strides.len() as u64) as usize];
            let footprint = (stride * rng.gen_range(8..64)).min(0xf_ffff);
            let base = rng.gen_range(0..1 << 16);
            (stride << 40) | (footprint << 20) | base
        }
        _ => rng.gen_range(0..1 << 20),
    };
    let mut buf = TraceBuffer::new();
    let mut open: Vec<u32> = Vec::new();
    buf.enter(ScopeId(1));
    open.push(1);
    for i in 0..len {
        if rng.gen_f64() < 0.05 && open.len() < 6 {
            let id = 2 + open.len() as u32;
            buf.enter(ScopeId(id));
            open.push(id);
        } else if rng.gen_f64() < 0.05 && open.len() > 1 {
            let id = open.pop().unwrap();
            buf.exit(ScopeId(id));
        }
        let kind = if i % 3 == 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let addr = next_addr(shape, &mut rng, i, &mut walker);
        buf.access(RefId((rng.gen_range(0..NREFS as u64)) as u32), addr, 8, kind);
    }
    while let Some(id) = open.pop() {
        buf.exit(ScopeId(id));
    }
    buf
}

/// Runs the full grain set through `analyze_buffer_with`, strict.
fn profiles(program: &Program, buf: &TraceBuffer, opts: &AnalyzeOptions) -> Vec<ReuseProfile> {
    let (profiles, _timings) = analyze_buffer_with(program, buf, &GRAINS, opts)
        .into_strict()
        .expect("healthy replay must complete");
    profiles
}

fn case_seed(case: usize) -> u64 {
    BASE_SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The tentpole identity: partitioned replay at every partition count is
/// bit-identical to serial replay on every shape, seed, and grain.
#[test]
fn partitioned_replay_matches_serial_bit_for_bit() {
    let program = program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..CASES_PER_SHAPE {
            let seed = case_seed(case);
            let buf = gen_buffer(shape, seed);
            let serial = profiles(&program, &buf, &AnalyzeOptions::default());
            for parts in PARTS {
                let opts = AnalyzeOptions {
                    replay_threads: ReplayThreads::Fixed(parts),
                    ..AnalyzeOptions::default()
                };
                let part = profiles(&program, &buf, &opts);
                assert_eq!(
                    serial, part,
                    "case {case} ({shape:?}, seed {seed:#x}, parts {parts}): \
                     partitioned profiles diverge from serial"
                );
            }
            case += 1;
        }
    }
    assert_eq!(case, SHAPES.len() * CASES_PER_SHAPE);
}

/// The identity survives fixed-rate sampling: the spatial-hash gate is
/// clock-independent, so every partition admits exactly the blocks the
/// serial sampled replay admits, and the stitched scaled histograms must
/// match bit for bit — `SamplingInfo` annotations included.
#[test]
fn partitioned_sampled_replay_matches_serial_sampled() {
    let program = program();
    let mut case = 0usize;
    for shape in SHAPES {
        for _ in 0..CASES_PER_SHAPE / 2 {
            let seed = case_seed(case) ^ 0x5a11;
            let buf = gen_buffer(shape, seed);
            for rate in [0.5, 0.1] {
                let serial = profiles(
                    &program,
                    &buf,
                    &AnalyzeOptions {
                        sampling: SamplingConfig::fixed(rate),
                        ..AnalyzeOptions::default()
                    },
                );
                for parts in PARTS {
                    let opts = AnalyzeOptions {
                        sampling: SamplingConfig::fixed(rate),
                        replay_threads: ReplayThreads::Fixed(parts),
                        ..AnalyzeOptions::default()
                    };
                    let part = profiles(&program, &buf, &opts);
                    assert_eq!(
                        serial, part,
                        "case {case} ({shape:?}, seed {seed:#x}, rate {rate}, \
                         parts {parts}): sampled partitioned profiles diverge"
                    );
                }
            }
            case += 1;
        }
    }
}

/// Budgets that the workload fits inside change nothing; budgets it
/// exceeds trip the *same* limit kind partitioned as serial (single-cap
/// configs, so the kind is unambiguous).
#[test]
fn partitioned_replay_respects_budgets_like_serial() {
    let program = program();
    let buf = gen_buffer(Shape::PointerChasing, case_seed(99));
    let grains = [64u64];

    // Generous caps: identical profiles, no failures.
    let roomy = AnalysisBudget::unlimited().with_max_events(1 << 30);
    let serial_ok = analyze_buffer_with(
        &program,
        &buf,
        &grains,
        &AnalyzeOptions {
            budget: roomy,
            ..AnalyzeOptions::default()
        },
    )
    .into_strict()
    .expect("roomy budget must not trip");
    for parts in PARTS {
        let part_ok = analyze_buffer_with(
            &program,
            &buf,
            &grains,
            &AnalyzeOptions {
                budget: roomy,
                replay_threads: ReplayThreads::Fixed(parts),
                ..AnalyzeOptions::default()
            },
        )
        .into_strict()
        .expect("roomy budget must not trip partitioned");
        assert_eq!(serial_ok.0, part_ok.0, "parts {parts}: budgeted identity");
    }

    // Tripping caps, one axis each: same kind both ways, and the
    // partitioned run must terminate (drain, not hang) on every axis.
    let cases = [
        (
            AnalysisBudget::unlimited().with_max_events(100),
            BudgetLimit::Events,
        ),
        (
            AnalysisBudget::unlimited().with_max_distinct_blocks(8),
            BudgetLimit::DistinctBlocks,
        ),
        (
            AnalysisBudget::unlimited().with_max_tree_nodes(8),
            BudgetLimit::TreeNodes,
        ),
    ];
    for (budget, want) in cases {
        let serial = analyze_buffer_with(
            &program,
            &buf,
            &grains,
            &AnalyzeOptions {
                budget,
                ..AnalyzeOptions::default()
            },
        );
        let serial_fail = serial.failure_at(64).expect("serial budget must trip");
        match &serial_fail.error {
            GrainError::Budget(b) => assert_eq!(b.limit, want),
            other => panic!("expected serial budget trip, got {other}"),
        }
        for parts in PARTS {
            let part = analyze_buffer_with(
                &program,
                &buf,
                &grains,
                &AnalyzeOptions {
                    budget,
                    replay_threads: ReplayThreads::Fixed(parts),
                    ..AnalyzeOptions::default()
                },
            );
            let failure = part
                .failure_at(64)
                .unwrap_or_else(|| panic!("parts {parts}: partitioned budget must trip {want:?}"));
            match &failure.error {
                GrainError::Budget(b) => assert_eq!(
                    b.limit, want,
                    "parts {parts}: partitioned trip kind diverges from serial"
                ),
                other => panic!("parts {parts}: expected {want:?} trip, got {other}"),
            }
        }
    }
}

/// Fault injection: a corrupted buffer under partitioned replay degrades
/// through the same structured `PartialAnalysis` decode reports as
/// serial — every grain fails cleanly, nothing hangs — and a grain that
/// panics (block size 0) partitioned is isolated from healthy siblings
/// whose profiles stay bit-identical to a serial run.
#[test]
fn partitioned_replay_degrades_cleanly_under_faults() {
    let program = program();
    let buf = gen_buffer(Shape::Clustered, case_seed(7));

    let mut corruptor = Corruptor::new(0xbad_cafe);
    let corrupted = corruptor.truncate(&buf);
    let opts = AnalyzeOptions {
        validate: true,
        replay_threads: ReplayThreads::Fixed(3),
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&program, &corrupted, &[64, 4096], &opts);
    assert!(partial.profiles.is_empty());
    assert_eq!(partial.failures.len(), 2);
    for failure in &partial.failures {
        assert!(
            matches!(failure.error, GrainError::Decode(_)),
            "expected decode failure, got {}",
            failure.error
        );
    }

    // A panicking grain among healthy partitioned siblings.
    let opts = AnalyzeOptions {
        replay_threads: ReplayThreads::Fixed(3),
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&program, &buf, &[64, 0, 4096], &opts);
    assert_eq!(partial.failures.len(), 1);
    let failure = partial.failure_at(0).expect("grain 0 must fail");
    match &failure.error {
        GrainError::Panicked(msg) => {
            assert!(msg.contains("power of two"), "unexpected message: {msg}")
        }
        other => panic!("expected a panic report, got {other}"),
    }
    let healthy = profiles(&program, &buf, &AnalyzeOptions::default());
    assert_eq!(partial.profile_at(64), healthy.iter().find(|p| p.block_size == 64));
    assert_eq!(
        partial.profile_at(4096),
        healthy.iter().find(|p| p.block_size == 4096)
    );
}
