//! Graceful-degradation suite for the fault-tolerant replay engine:
//! a panicking, budget-tripping, or corrupted grain must never take its
//! sibling grains down, and every failure must come back as a structured
//! report rather than a process abort.

use reuselens_core::{
    analyze_buffer, analyze_buffer_with, analyze_program, analyze_program_degraded,
    capture_program, AnalysisBudget, AnalysisError, AnalyzeOptions, BudgetLimit, GrainError,
    SamplingConfig,
};
use reuselens_ir::{Program, ProgramBuilder};
use reuselens_trace::fault::Corruptor;

/// A two-sweep streaming workload: enough footprint to exercise the block
/// table and tree, deterministic shape for bit-identical comparisons.
fn workload(elems: u64) -> Program {
    let mut p = ProgramBuilder::new("stream");
    let a = p.array("a", 8, &[elems]);
    p.routine("main", |r| {
        r.for_("t", 0, 1, |r, _| {
            r.for_("i", 0, (elems - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
    });
    p.finish()
}

/// A block size of 0 is not a power of two, so `ReuseAnalyzer::new`
/// panics deterministically inside that grain's replay thread — the
/// injection vector for grain-level panics.
const PANICKING_GRAIN: u64 = 0;

/// One panicking grain among healthy ones: the survivors' profiles are
/// bit-identical to a fully healthy run, and the failure report names the
/// dead grain with its panic message and the retry flag set.
#[test]
fn single_grain_panic_leaves_siblings_bit_identical() {
    let prog = workload(2048);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let grains = [64u64, PANICKING_GRAIN, 4096];
    let partial = analyze_buffer_with(&prog, &buffer, &grains, &AnalyzeOptions::default());

    assert!(!partial.is_complete());
    assert_eq!(partial.profiles.len(), 2);
    assert_eq!(partial.failures.len(), 1);

    // Survivors match the online pipeline exactly.
    let online = analyze_program(&prog, &[64, 4096], vec![]).unwrap();
    assert_eq!(partial.profile_at(64), online.profile_at(64));
    assert_eq!(partial.profile_at(4096), online.profile_at(4096));
    assert_eq!(partial.replays.len(), 2);
    assert_eq!(partial.replays[0].block_size, 64);
    assert_eq!(partial.replays[1].block_size, 4096);

    // The failure report is fully populated.
    let failure = partial.failure_at(PANICKING_GRAIN).unwrap();
    assert!(failure.retried, "panicked grains get one sequential retry");
    match &failure.error {
        GrainError::Panicked(msg) => {
            assert!(msg.contains("power of two"), "unexpected message: {msg}")
        }
        other => panic!("expected a panic report, got {other}"),
    }
    assert!(failure.to_string().contains("after retry"));
    assert!(partial.failure_at(64).is_none());
}

/// The strict entry point surfaces the same failure as a typed error —
/// after joining every thread, not by aborting the process.
#[test]
fn strict_analyze_buffer_returns_grain_panicked() {
    let prog = workload(512);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let err = analyze_buffer(&prog, &buffer, &[64, PANICKING_GRAIN]).unwrap_err();
    match err {
        AnalysisError::GrainPanicked {
            block_size,
            message,
        } => {
            assert_eq!(block_size, PANICKING_GRAIN);
            assert!(message.contains("power of two"));
        }
        other => panic!("expected GrainPanicked, got {other}"),
    }
}

/// Retries can be disabled; the report then records that none happened.
#[test]
fn retry_can_be_disabled() {
    let prog = workload(256);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let opts = AnalyzeOptions {
        retry: false,
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&prog, &buffer, &[PANICKING_GRAIN], &opts);
    let failure = partial.failure_at(PANICKING_GRAIN).unwrap();
    assert!(!failure.retried);
}

/// Each budget axis trips with progress counters populated; the decode,
/// block-table, and tree footprints at abandonment are all reported.
#[test]
fn budgets_trip_with_progress_counters() {
    let prog = workload(4096); // 8192 accesses, 512 lines at 64 B
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();

    let cases = [
        (AnalysisBudget::unlimited().with_max_events(100), BudgetLimit::Events),
        (
            AnalysisBudget::unlimited().with_max_distinct_blocks(10),
            BudgetLimit::DistinctBlocks,
        ),
        (
            AnalysisBudget::unlimited().with_max_tree_nodes(10),
            BudgetLimit::TreeNodes,
        ),
    ];
    for (budget, want_limit) in cases {
        let opts = AnalyzeOptions {
            budget,
            ..AnalyzeOptions::default()
        };
        let partial = analyze_buffer_with(&prog, &buffer, &[64], &opts);
        let failure = partial.failure_at(64).expect("budget must trip");
        assert!(!failure.retried, "budget failures are deterministic, not retried");
        match &failure.error {
            GrainError::Budget(e) => {
                assert_eq!(e.limit, want_limit);
                assert!(e.progress.events > 0);
                assert!(e.progress.distinct_blocks > 0);
                assert!(e.progress.tree_nodes > 0);
            }
            other => panic!("expected a budget report, got {other}"),
        }
    }
}

/// A budget generous enough never trips, and the budgeted (validated)
/// replay path produces bit-identical profiles to the unchecked fast path.
#[test]
fn generous_budget_matches_fast_path() {
    let prog = workload(2048);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let fast = analyze_buffer(&prog, &buffer, &[64, 4096]).unwrap().0;
    let opts = AnalyzeOptions {
        budget: AnalysisBudget::unlimited()
            .with_max_events(1 << 40)
            .with_max_distinct_blocks(1 << 40)
            .with_max_tree_nodes(1 << 40),
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&prog, &buffer, &[64, 4096], &opts);
    assert!(partial.is_complete());
    assert_eq!(partial.profiles, fast);
}

/// A corrupted buffer under `validate` fails with a decode report in
/// every grain — never a panic — and deterministic failures skip the
/// retry pass.
#[test]
fn corrupted_buffer_with_validation_reports_decode_errors() {
    let prog = workload(1024);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let mut corruptor = Corruptor::new(0xbad_cafe);
    let corrupted = corruptor.truncate(&buffer);
    let opts = AnalyzeOptions {
        validate: true,
        ..AnalyzeOptions::default()
    };
    let partial = analyze_buffer_with(&prog, &corrupted, &[64, 4096], &opts);
    assert!(partial.profiles.is_empty());
    assert_eq!(partial.failures.len(), 2);
    for failure in &partial.failures {
        assert!(
            matches!(failure.error, GrainError::Decode(_)),
            "expected decode failure, got {}",
            failure.error
        );
        assert!(!failure.retried);
    }
}

/// Sampling composes with the fault path: a corrupted buffer under a
/// sampled replay degrades through the same structured decode reports, a
/// panicking sampled grain is isolated from its sampled siblings, and
/// the same options over the intact buffer complete with every profile
/// annotated — no panics escape in any case.
#[test]
fn corrupted_buffer_under_sampling_degrades_cleanly() {
    let prog = workload(1024);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let opts = AnalyzeOptions {
        validate: true,
        sampling: SamplingConfig::fixed(0.1),
        ..AnalyzeOptions::default()
    };

    let mut corruptor = Corruptor::new(0xbad_cafe);
    let corrupted = corruptor.truncate(&buffer);
    let partial = analyze_buffer_with(&prog, &corrupted, &[64, 4096], &opts);
    assert!(partial.profiles.is_empty());
    assert_eq!(partial.failures.len(), 2);
    for failure in &partial.failures {
        assert!(
            matches!(failure.error, GrainError::Decode(_)),
            "expected decode failure, got {}",
            failure.error
        );
        assert!(!failure.retried);
    }

    // The sampled analyzer rejects a non-power-of-two grain exactly like
    // the exact one; the panic stays inside that grain.
    let mixed = analyze_buffer_with(&prog, &buffer, &[64, PANICKING_GRAIN], &opts);
    assert_eq!(mixed.profiles.len(), 1);
    assert!(matches!(
        mixed.failure_at(PANICKING_GRAIN).unwrap().error,
        GrainError::Panicked(_)
    ));

    // And the same options over the intact buffer complete, annotated.
    let healthy = analyze_buffer_with(&prog, &buffer, &[64, 4096], &opts);
    assert!(healthy.is_complete());
    assert!(
        healthy.profiles.iter().all(|p| p.sampling.is_some()),
        "every surviving grain carries its sampling books"
    );
}

/// Without validation a grain panic caused by a hostile consumer is still
/// isolated — here both failure modes mix in one request: a dead grain, a
/// budget-limited grain, and a healthy one.
#[test]
fn mixed_failure_modes_in_one_request() {
    let prog = workload(2048);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let opts = AnalyzeOptions {
        budget: AnalysisBudget::unlimited().with_max_events(64),
        ..AnalyzeOptions::default()
    };
    // Grain 0 panics; the others trip the tiny event budget.
    let partial = analyze_buffer_with(&prog, &buffer, &[64, PANICKING_GRAIN], &opts);
    assert_eq!(partial.failures.len(), 2);
    assert!(matches!(
        partial.failure_at(PANICKING_GRAIN).unwrap().error,
        GrainError::Panicked(_)
    ));
    assert!(matches!(
        partial.failure_at(64).unwrap().error,
        GrainError::Budget(_)
    ));
}

/// The one-call degraded pipeline: capture + isolated replay + stats.
#[test]
fn analyze_program_degraded_end_to_end() {
    let prog = workload(1024);
    let grains = [64u64, PANICKING_GRAIN, 4096];
    let (partial, report, stats) =
        analyze_program_degraded(&prog, &grains, vec![], &AnalyzeOptions::default()).unwrap();
    assert_eq!(report.accesses, 2 * 1024);
    assert_eq!(partial.profiles.len(), 2);
    assert_eq!(partial.failures.len(), 1);
    assert_eq!(stats.replays.len(), 2, "timings cover surviving grains only");
    assert_eq!(stats.buffer.accesses, report.accesses);
}

/// `into_strict` converts failures into the typed error taxonomy.
#[test]
fn into_strict_maps_each_failure_kind() {
    let prog = workload(512);
    let (buffer, _) = capture_program(&prog, vec![]).unwrap();
    let opts = AnalyzeOptions {
        budget: AnalysisBudget::unlimited().with_max_events(10),
        ..AnalyzeOptions::default()
    };
    let err = analyze_buffer_with(&prog, &buffer, &[64], &opts)
        .into_strict()
        .unwrap_err();
    assert!(matches!(err, AnalysisError::Budget(_)));

    let ok = analyze_buffer_with(&prog, &buffer, &[64], &AnalyzeOptions::default())
        .into_strict()
        .unwrap();
    assert_eq!(ok.0.len(), 1);
}
