//! Calling-context-sensitive reuse collection — the §IV extension.
//!
//! The paper keeps patterns context-insensitive by default ("for most
//! scientific programs separating the data based on the calling context
//! may dilute the significance of some important reuse patterns") but
//! notes that "the data collection infrastructure can be extended to
//! include calling context as well". This analyzer is that extension:
//! every pattern is additionally keyed by the *call path* (the chain of
//! routine scopes active at the sink), so a helper routine invoked from
//! two phases reports its reuse separately per phase.

use crate::blocktable::BlockTable;
use crate::histogram::Histogram;
use crate::ostree::OrderStatTree;
use crate::scopestack::ScopeStack;
use reuselens_ir::{AccessKind, Program, RefId, ScopeId, ScopeKind};
use reuselens_trace::TraceSink;
use std::collections::HashMap;

/// Interned identifier of one calling context (a routine-scope call path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub u32);

/// A context-qualified reuse pattern key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxPatternKey {
    /// The destination reference.
    pub sink: RefId,
    /// Static scope of the previous access.
    pub source_scope: ScopeId,
    /// The carrying scope.
    pub carrier: ScopeId,
    /// The sink's calling context.
    pub context: ContextId,
}

/// One context-sensitive pattern with its histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct CtxPattern {
    /// The qualified key.
    pub key: CtxPatternKey,
    /// Reuse-distance histogram.
    pub histogram: Histogram,
}

/// The result of a context-sensitive run.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextProfile {
    /// Block size measured at.
    pub block_size: u64,
    /// All patterns, sorted by key.
    pub patterns: Vec<CtxPattern>,
    /// Interned call paths: `contexts[id.0]` is the chain of routine
    /// scopes, outermost first.
    pub contexts: Vec<Vec<ScopeId>>,
    /// Cold accesses per reference.
    pub cold: Vec<u64>,
    /// Total accesses.
    pub total_accesses: u64,
}

impl ContextProfile {
    /// Renders a context as a readable path.
    pub fn context_path(&self, program: &Program, ctx: ContextId) -> String {
        self.contexts[ctx.0 as usize]
            .iter()
            .map(|&s| program.scope(s).name().to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Contexts under which `sink` was observed.
    pub fn contexts_of_sink(&self, sink: RefId) -> Vec<ContextId> {
        let mut out: Vec<ContextId> = self
            .patterns
            .iter()
            .filter(|p| p.key.sink == sink)
            .map(|p| p.key.context)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Context-sensitive counterpart of
/// [`ReuseAnalyzer`](crate::ReuseAnalyzer).
///
/// # Examples
///
/// ```
/// use reuselens_core::ContextAnalyzer;
/// use reuselens_ir::{Expr, ProgramBuilder};
/// use reuselens_trace::Executor;
///
/// // One helper touching one array, called from two phases.
/// let mut p = ProgramBuilder::new("ctx");
/// let a = p.array("a", 8, &[64]);
/// let helper = p.declare_routine("helper");
/// let phase1 = p.declare_routine("phase1");
/// let phase2 = p.declare_routine("phase2");
/// let main = p.routine("main", |r| {
///     r.call(phase1);
///     r.call(phase2);
/// });
/// p.define_routine(phase1, |r| r.call(helper));
/// p.define_routine(phase2, |r| r.call(helper));
/// p.define_routine(helper, |r| {
///     r.for_("i", 0, 63, |r, i| {
///         r.load(a, vec![i.into()]);
///     });
/// });
/// p.set_entry(main);
/// let prog = p.finish();
///
/// let mut an = ContextAnalyzer::new(&prog, 64);
/// Executor::new(&prog).run(&mut an)?;
/// let profile = an.finish();
/// // The helper's load shows up under two distinct calling contexts.
/// let sink = prog.references()[0].id();
/// assert_eq!(profile.contexts_of_sink(sink).len(), 2);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug)]
pub struct ContextAnalyzer {
    block_shift: u32,
    clock: u64,
    table: BlockTable,
    tree: OrderStatTree,
    stack: ScopeStack,
    /// Routine scopes currently active (the call path).
    call_path: Vec<ScopeId>,
    /// Which scopes are routine scopes.
    is_routine: Vec<bool>,
    /// Interned call paths.
    context_ids: HashMap<Vec<ScopeId>, ContextId>,
    contexts: Vec<Vec<ScopeId>>,
    current_ctx: ContextId,
    patterns: HashMap<CtxPatternKey, Histogram>,
    cold: Vec<u64>,
    ref_scopes: Vec<ScopeId>,
}

impl ContextAnalyzer {
    /// Creates a context-sensitive analyzer at the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(program: &Program, block_size: u64) -> ContextAnalyzer {
        assert!(block_size.is_power_of_two(), "block size must be power of two");
        let is_routine = program
            .scopes()
            .iter()
            .map(|s| matches!(s.kind(), ScopeKind::Routine(_)))
            .collect();
        let mut a = ContextAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock: 0,
            table: BlockTable::new(),
            tree: OrderStatTree::new(),
            stack: ScopeStack::new(),
            call_path: Vec::new(),
            is_routine,
            context_ids: HashMap::new(),
            contexts: Vec::new(),
            current_ctx: ContextId(0),
            patterns: HashMap::new(),
            cold: vec![0; program.references().len()],
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
        };
        a.current_ctx = a.intern(Vec::new());
        a
    }

    fn intern(&mut self, path: Vec<ScopeId>) -> ContextId {
        if let Some(&id) = self.context_ids.get(&path) {
            return id;
        }
        let id = ContextId(self.contexts.len() as u32);
        self.contexts.push(path.clone());
        self.context_ids.insert(path, id);
        id
    }

    /// Consumes the analyzer, producing the context-sensitive profile.
    pub fn finish(self) -> ContextProfile {
        let mut patterns: Vec<CtxPattern> = self
            .patterns
            .into_iter()
            .map(|(key, histogram)| CtxPattern { key, histogram })
            .collect();
        patterns.sort_by_key(|p| p.key);
        ContextProfile {
            block_size: 1 << self.block_shift,
            patterns,
            contexts: self.contexts,
            cold: self.cold,
            total_accesses: self.clock,
        }
    }
}

impl TraceSink for ContextAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        let block = addr >> self.block_shift;
        self.clock += 1;
        let now = self.clock;
        match self.table.get(block) {
            Some(prev) => {
                let distance = self.tree.count_greater(prev.time);
                self.tree.remove(prev.time);
                self.tree.insert(now);
                let key = CtxPatternKey {
                    sink: r,
                    source_scope: self.ref_scopes[prev.ref_id as usize],
                    carrier: self.stack.carrier(prev.time),
                    context: self.current_ctx,
                };
                self.patterns.entry(key).or_default().add(distance);
            }
            None => {
                self.cold[r.index()] += 1;
                self.tree.insert(now);
            }
        }
        self.table.set(block, now, r.0);
    }

    fn enter(&mut self, scope: ScopeId) {
        self.stack.enter(scope, self.clock);
        if self.is_routine[scope.index()] {
            self.call_path.push(scope);
            self.current_ctx = self.intern(self.call_path.clone());
        }
    }

    fn exit(&mut self, scope: ScopeId) {
        self.stack.exit(scope);
        if self.is_routine[scope.index()] {
            let popped = self.call_path.pop();
            debug_assert_eq!(popped, Some(scope), "unbalanced routine exits");
            self.current_ctx = self.intern(self.call_path.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ReuseAnalyzer;
    use reuselens_ir::ProgramBuilder;
    use reuselens_trace::Executor;

    /// A helper called from two phases; its accesses must split by context.
    fn two_phase_program() -> reuselens_ir::Program {
        let mut p = ProgramBuilder::new("twophase");
        let a = p.array("a", 8, &[512]);
        let helper = p.declare_routine("helper");
        let phase1 = p.declare_routine("phase1");
        let phase2 = p.declare_routine("phase2");
        let main = p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.call(phase1);
                r.call(phase2);
            });
        });
        p.define_routine(phase1, |r| r.call(helper));
        p.define_routine(phase2, |r| r.call(helper));
        p.define_routine(helper, |r| {
            r.for_("i", 0, 511, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        p.set_entry(main);
        p.finish()
    }

    #[test]
    fn contexts_split_the_helpers_patterns() {
        let prog = two_phase_program();
        let mut an = ContextAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        let profile = an.finish();
        let sink = prog.references()[0].id();
        let ctxs = profile.contexts_of_sink(sink);
        assert_eq!(ctxs.len(), 2, "expected two calling contexts");
        // The rendered paths name the two phases.
        let paths: Vec<String> = ctxs
            .iter()
            .map(|&c| profile.context_path(&prog, c))
            .collect();
        assert!(paths.iter().any(|p| p.contains("phase1")));
        assert!(paths.iter().any(|p| p.contains("phase2")));
        for p in &paths {
            assert!(p.starts_with("main -> "));
            assert!(p.ends_with("-> helper"));
        }
    }

    #[test]
    fn context_sensitive_totals_match_context_insensitive() {
        let prog = two_phase_program();
        let mut ctx = ContextAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut ctx).unwrap();
        let cp = ctx.finish();

        let mut flat = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut flat).unwrap();
        let fp = flat.finish();

        assert_eq!(cp.total_accesses, fp.total_accesses);
        assert_eq!(cp.cold, fp.cold);
        let ctx_reuses: u64 = cp.patterns.iter().map(|p| p.histogram.total()).sum();
        assert_eq!(ctx_reuses, fp.total_reuses());
        // Merging context-split histograms recovers the flat ones.
        let mut merged = Histogram::new();
        for p in &cp.patterns {
            merged.merge(&p.histogram);
        }
        let mut flat_all = Histogram::new();
        for p in &fp.patterns {
            flat_all.merge(&p.histogram);
        }
        assert_eq!(merged, flat_all);
    }

    #[test]
    fn root_context_is_empty_path() {
        let prog = two_phase_program();
        let mut an = ContextAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        let profile = an.finish();
        assert!(profile.contexts[0].is_empty());
        assert_eq!(profile.context_path(&prog, ContextId(0)), "");
    }
}
