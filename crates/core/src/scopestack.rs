//! The dynamic scope stack and carrying-scope search.
//!
//! On scope entry the analyzer pushes `(scope, access clock)`; the scope
//! *carrying* a reuse is the most recent still-active scope entered before
//! the previous access to the block — the paper's "shallowest entry whose
//! access clock is less than the access clock value associated with the
//! previous access". Entry clocks increase monotonically toward the top of
//! the stack, so the search is a binary search rather than a linear
//! traversal.

use reuselens_ir::ScopeId;

/// Dynamic stack of active scopes with their entry clocks.
///
/// # Examples
///
/// ```
/// use reuselens_core::ScopeStack;
/// use reuselens_ir::ScopeId;
///
/// let mut s = ScopeStack::new();
/// s.enter(ScopeId(1), 0);   // routine entered before any access
/// s.enter(ScopeId(2), 10);  // loop entered after 10 accesses
/// // A reuse whose previous access happened at time 5 is carried by the
/// // routine: the loop was entered after that access.
/// assert_eq!(s.carrier(5), ScopeId(1));
/// assert_eq!(s.carrier(11), ScopeId(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeStack {
    entries: Vec<(ScopeId, u64)>,
}

impl Default for ScopeStack {
    fn default() -> ScopeStack {
        ScopeStack::new()
    }
}

impl ScopeStack {
    /// Creates a stack holding only the program root (entered at clock 0).
    pub fn new() -> ScopeStack {
        ScopeStack {
            entries: vec![(ScopeId::ROOT, 0)],
        }
    }

    /// Builds a stack with the program root plus the given already-open
    /// scopes and their entry clocks — how partitioned replay seeds each
    /// worker with the scope context at its segment boundary.
    pub(crate) fn with_open_scopes(scopes: &[(ScopeId, u64)]) -> ScopeStack {
        let mut entries = Vec::with_capacity(scopes.len() + 1);
        entries.push((ScopeId::ROOT, 0));
        entries.extend_from_slice(scopes);
        ScopeStack { entries }
    }

    /// The open scopes above the implicit root, with their entry clocks —
    /// the inverse of [`with_open_scopes`](Self::with_open_scopes), used
    /// to serialize the stack into a snapshot.
    pub(crate) fn open_scopes(&self) -> &[(ScopeId, u64)] {
        &self.entries[1..]
    }

    /// Pushes a scope entered when `clock` accesses had executed.
    pub fn enter(&mut self, scope: ScopeId, clock: u64) {
        debug_assert!(
            self.entries.last().map(|&(_, c)| c <= clock).unwrap_or(true),
            "entry clocks must be monotone"
        );
        self.entries.push((scope, clock));
    }

    /// Pops the top scope.
    ///
    /// # Panics
    ///
    /// Panics if the popped scope does not match `scope` (unbalanced
    /// enter/exit events) or only the root remains.
    pub fn exit(&mut self, scope: ScopeId) {
        let top = match self.entries.pop() {
            Some((top, _)) => top,
            None => panic!("scope stack underflow"),
        };
        assert_eq!(top, scope, "unbalanced scope exit");
        assert!(!self.entries.is_empty(), "program root popped");
    }

    /// Current nesting depth (root included).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// The innermost active scope.
    pub fn current(&self) -> ScopeId {
        match self.entries.last() {
            Some(&(scope, _)) => scope,
            None => panic!("stack never empty"),
        }
    }

    /// The scope carrying a reuse whose previous access happened at logical
    /// time `t_prev` (≥ 1): the topmost active scope entered strictly before
    /// that access.
    pub fn carrier(&self, t_prev: u64) -> ScopeId {
        // Short reuses dominate real streams, and for them the innermost
        // scope was entered before the previous access — answer those with
        // one comparison before falling back to the binary search.
        if let Some(&(scope, clock)) = self.entries.last() {
            if clock < t_prev {
                return scope;
            }
        }
        let idx = self.entries.partition_point(|&(_, clock)| clock < t_prev);
        // idx >= 1 because the root has entry clock 0 and t_prev >= 1.
        self.entries[idx - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;

    #[test]
    fn root_carries_everything_initially() {
        let s = ScopeStack::new();
        assert_eq!(s.carrier(1), ScopeId::ROOT);
        assert_eq!(s.carrier(u64::MAX), ScopeId::ROOT);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn scope_entered_at_t_prev_is_not_the_carrier() {
        let mut s = ScopeStack::new();
        s.enter(ScopeId(1), 0);
        s.enter(ScopeId(2), 5);
        // previous access at t=5 happened before scope 2 was pushed
        assert_eq!(s.carrier(5), ScopeId(1));
        assert_eq!(s.carrier(6), ScopeId(2));
    }

    #[test]
    fn exit_restores_outer_carrier() {
        let mut s = ScopeStack::new();
        s.enter(ScopeId(1), 0);
        s.enter(ScopeId(2), 3);
        s.exit(ScopeId(2));
        s.enter(ScopeId(3), 9);
        assert_eq!(s.carrier(4), ScopeId(1));
        assert_eq!(s.carrier(10), ScopeId(3));
        assert_eq!(s.current(), ScopeId(3));
    }

    #[test]
    #[should_panic(expected = "unbalanced scope exit")]
    fn mismatched_exit_panics() {
        let mut s = ScopeStack::new();
        s.enter(ScopeId(1), 0);
        s.exit(ScopeId(2));
    }

    /// Seeded randomized check: the binary-search carrier matches the
    /// paper's linear scan from the top of the stack.
    #[test]
    fn carrier_matches_linear_scan() {
        let mut rng = SplitMix64::seed_from_u64(0x5c0_9e57);
        for _case in 0..256 {
            let mut sorted = rng.vec_u64(1..20, 0..100);
            let t_prev = rng.gen_range(1..120);
            sorted.sort_unstable();
            let mut s = ScopeStack::new();
            for (i, &c) in sorted.iter().enumerate() {
                s.enter(ScopeId(i as u32 + 1), c);
            }
            // Linear scan from the top, as the paper describes.
            let mut expected = ScopeId::ROOT;
            let mut entries = vec![(ScopeId::ROOT, 0u64)];
            entries.extend(
                sorted
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (ScopeId(i as u32 + 1), c)),
            );
            for &(scope, clock) in entries.iter().rev() {
                if clock < t_prev {
                    expected = scope;
                    break;
                }
            }
            assert_eq!(s.carrier(t_prev), expected);
        }
    }
}
