//! Three-level hierarchical block table.
//!
//! The paper associates "the logical time of last access with every memory
//! block referenced by the program" using a three-level hierarchical table;
//! we extend each entry with the identity of the most recent accessing
//! reference, which is what lets reuse arcs be attributed to a
//! *(source scope, destination)* pair.
//!
//! The table is a radix trie over the block number: 12 + 10 + 10 bits,
//! covering 2³² blocks. Leaf pages are allocated lazily, so sparse address
//! spaces (a few arrays at distinct bases) cost memory proportional to the
//! touched footprint only.

const L1_BITS: u32 = 12;
const L2_BITS: u32 = 10;
const L3_BITS: u32 = 10;
const L1_SIZE: usize = 1 << L1_BITS;
const L2_SIZE: usize = 1 << L2_BITS;
const L3_SIZE: usize = 1 << L3_BITS;
/// Largest representable block number (exclusive).
pub const MAX_BLOCKS: u64 = 1 << (L1_BITS + L2_BITS + L3_BITS);

/// Last-access record for one memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Logical access-clock value of the most recent access.
    pub time: u64,
    /// The static reference that performed it.
    pub ref_id: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    time: u64, // 0 = never accessed
    ref_id: u32,
}

const EMPTY: Slot = Slot { time: 0, ref_id: 0 };

type Leaf = Vec<Slot>;
type Mid = Vec<Option<Box<Leaf>>>;

/// Maps block numbers to their [`BlockEntry`] with lazy, paged storage.
///
/// Times stored must be nonzero (the analyzer's clock starts at 1); zero is
/// reserved for "never accessed".
///
/// # Examples
///
/// ```
/// use reuselens_core::BlockTable;
///
/// let mut t = BlockTable::new();
/// assert!(t.get(42).is_none());
/// t.set(42, 7, 3);
/// let e = t.get(42).unwrap();
/// assert_eq!((e.time, e.ref_id), (7, 3));
/// assert_eq!(t.distinct_blocks(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BlockTable {
    l1: Vec<Option<Box<Mid>>>,
    distinct: u64,
}

impl BlockTable {
    /// Creates an empty table.
    pub fn new() -> BlockTable {
        let mut l1 = Vec::with_capacity(L1_SIZE);
        l1.resize_with(L1_SIZE, || None);
        BlockTable { l1, distinct: 0 }
    }

    /// Number of distinct blocks ever recorded (the `M` in the paper's
    /// `O(log M)` bound).
    pub fn distinct_blocks(&self) -> u64 {
        self.distinct
    }

    /// Looks up the last-access record for a block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= MAX_BLOCKS` (an address far outside the modeled
    /// address space).
    pub fn get(&self, block: u64) -> Option<BlockEntry> {
        let (i1, i2, i3) = split(block);
        let slot = self.l1[i1].as_ref()?.get(i2)?.as_ref()?[i3];
        if slot.time == 0 {
            None
        } else {
            Some(BlockEntry {
                time: slot.time,
                ref_id: slot.ref_id,
            })
        }
    }

    /// Records an access to `block` at logical time `time` by `ref_id`,
    /// replacing any previous record.
    ///
    /// # Panics
    ///
    /// Panics if `time` is zero or `block >= MAX_BLOCKS`.
    pub fn set(&mut self, block: u64, time: u64, ref_id: u32) {
        assert!(time != 0, "logical times start at 1");
        let (i1, i2, i3) = split(block);
        let mid = self.l1[i1].get_or_insert_with(|| {
            let mut v: Mid = Vec::with_capacity(L2_SIZE);
            v.resize_with(L2_SIZE, || None);
            Box::new(v)
        });
        let leaf = mid[i2].get_or_insert_with(|| Box::new(vec![EMPTY; L3_SIZE]));
        if leaf[i3].time == 0 {
            self.distinct += 1;
        }
        leaf[i3] = Slot { time, ref_id };
    }

    /// Visits every recorded block in ascending block-number order —
    /// how partitioned replay enumerates a worker's final last-access
    /// set when handing it to the stitch pass.
    pub fn for_each(&self, mut f: impl FnMut(u64, BlockEntry)) {
        for (i1, mid) in self.l1.iter().enumerate() {
            let Some(mid) = mid else { continue };
            for (i2, leaf) in mid.iter().enumerate() {
                let Some(leaf) = leaf else { continue };
                for (i3, slot) in leaf.iter().enumerate() {
                    if slot.time != 0 {
                        let block = ((i1 as u64) << (L2_BITS + L3_BITS))
                            | ((i2 as u64) << L3_BITS)
                            | i3 as u64;
                        f(
                            block,
                            BlockEntry {
                                time: slot.time,
                                ref_id: slot.ref_id,
                            },
                        );
                    }
                }
            }
        }
    }
}

#[inline]
fn split(block: u64) -> (usize, usize, usize) {
    assert!(
        block < MAX_BLOCKS,
        "block number {block} outside the modeled address space"
    );
    let i3 = (block & ((1 << L3_BITS) - 1)) as usize;
    let i2 = ((block >> L3_BITS) & ((1 << L2_BITS) - 1)) as usize;
    let i1 = (block >> (L3_BITS + L2_BITS)) as usize;
    (i1, i2, i3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn get_on_empty_table_is_none() {
        let t = BlockTable::new();
        assert!(t.get(0).is_none());
        assert!(t.get(MAX_BLOCKS - 1).is_none());
        assert_eq!(t.distinct_blocks(), 0);
    }

    #[test]
    fn set_then_get_round_trips() {
        let mut t = BlockTable::new();
        t.set(0, 1, 9);
        t.set(MAX_BLOCKS - 1, 2, 8);
        t.set(12345678, 3, 7);
        assert_eq!(t.get(0).unwrap().ref_id, 9);
        assert_eq!(t.get(MAX_BLOCKS - 1).unwrap().time, 2);
        assert_eq!(t.get(12345678).unwrap().ref_id, 7);
        assert_eq!(t.distinct_blocks(), 3);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut t = BlockTable::new();
        t.set(5, 1, 0);
        t.set(5, 2, 1);
        assert_eq!(t.distinct_blocks(), 1);
        assert_eq!(t.get(5).unwrap().time, 2);
    }

    #[test]
    #[should_panic(expected = "outside the modeled address space")]
    fn oversized_block_panics() {
        BlockTable::new().set(MAX_BLOCKS, 1, 0);
    }

    #[test]
    #[should_panic(expected = "logical times start at 1")]
    fn zero_time_panics() {
        BlockTable::new().set(0, 0, 0);
    }

    /// Randomized differential test against `HashMap` (seeded, offline).
    #[test]
    fn matches_hashmap_reference() {
        let mut rng = SplitMix64::seed_from_u64(0xb10c_7ab1e);
        for _case in 0..64 {
            let mut t = BlockTable::new();
            let mut map: HashMap<u64, (u64, u32)> = HashMap::new();
            for _ in 0..rng.gen_range(1..300) {
                let block = rng.gen_range(0..1 << 20);
                let time = rng.gen_range(1..1000);
                let rid = rng.gen_range(0..16) as u32;
                t.set(block, time, rid);
                map.insert(block, (time, rid));
                let got = t.get(block).unwrap();
                assert_eq!((got.time, got.ref_id), map[&block]);
            }
            assert_eq!(t.distinct_blocks(), map.len() as u64);
        }
    }
}
