//! Dynamic spatial-utilization measurement.
//!
//! The paper's *static* fragmentation analysis (§III) reasons about
//! strides; it explicitly cannot detect cases like GTC's `ring`/`indexp`
//! arrays, where unit-stride loops simply stop short of each column's end
//! ("our static analysis for cache fragmentation cannot detect such cases
//! at this time"). This sink measures utilization *dynamically*: for every
//! cache line it records exactly which bytes were ever touched, then
//! reports per-array the fraction of fetched bytes that were used. Static
//! says *why* lines are wasted; this says *that* they are — together they
//! cover both of the paper's fragmentation scenarios.

use reuselens_ir::{AccessKind, ArrayId, Program, RefId, ScopeId};
use reuselens_trace::TraceSink;
use std::collections::HashMap;

/// Measures which bytes of each cache line are ever touched.
///
/// # Examples
///
/// ```
/// use reuselens_core::SpatialSink;
/// use reuselens_ir::{Expr, ProgramBuilder};
/// use reuselens_trace::Executor;
///
/// // Read one 8-byte field out of every 56-byte record.
/// let mut p = ProgramBuilder::new("aos");
/// let zion = p.array("zion", 8, &[7, 512]);
/// p.routine("main", |r| {
///     r.for_("i", 0, 511, |r, i| {
///         r.load(zion, vec![Expr::c(2), i.into()]);
///     });
/// });
/// let prog = p.finish();
/// let mut sink = SpatialSink::new(&prog, 128);
/// Executor::new(&prog).run(&mut sink)?;
/// let profile = sink.finish();
/// let u = profile.utilization_of(prog.array_by_name("zion").unwrap()).unwrap();
/// // Only ~1/7 of each fetched line is ever used.
/// assert!(u > 0.10 && u < 0.20, "utilization {u}");
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug)]
pub struct SpatialSink {
    line_shift: u32,
    line_size: u64,
    /// line number -> touched-byte bitmap (one u64 word per 64 bytes).
    lines: HashMap<u64, Vec<u64>>,
    /// Sorted (base, end, array) ranges for address→array attribution.
    ranges: Vec<(u64, u64, ArrayId)>,
}

impl SpatialSink {
    /// Creates a sink for the given line size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(program: &Program, line_size: u64) -> SpatialSink {
        assert!(line_size.is_power_of_two(), "line size must be power of two");
        let mut ranges: Vec<(u64, u64, ArrayId)> = program
            .arrays()
            .iter()
            .enumerate()
            .map(|(i, a)| (a.base(), a.base() + a.size_bytes(), ArrayId(i as u32)))
            .collect();
        ranges.sort_unstable();
        SpatialSink {
            line_shift: line_size.trailing_zeros(),
            line_size,
            lines: HashMap::new(),
            ranges,
        }
    }

    /// Consumes the sink, producing per-array utilization numbers.
    pub fn finish(self) -> SpatialProfile {
        let narrays = self.ranges.len();
        let mut per_array = vec![
            ArraySpatial {
                lines: 0,
                bytes_touched: 0,
                bytes_fetched: 0,
            };
            narrays
        ];
        let mut orphan_lines = 0u64;
        for (&line, bitmap) in &self.lines {
            let addr = line << self.line_shift;
            let touched: u64 = bitmap.iter().map(|w| w.count_ones() as u64).sum();
            match self.array_of(addr) {
                Some(arr) => {
                    let s = &mut per_array[arr.index()];
                    s.lines += 1;
                    s.bytes_touched += touched;
                    s.bytes_fetched += self.line_size;
                }
                None => orphan_lines += 1,
            }
        }
        SpatialProfile {
            line_size: self.line_size,
            per_array,
            orphan_lines,
        }
    }

    fn array_of(&self, addr: u64) -> Option<ArrayId> {
        // Last range with base <= addr.
        let idx = self.ranges.partition_point(|&(base, _, _)| base <= addr);
        if idx == 0 {
            return None;
        }
        let (base, end, arr) = self.ranges[idx - 1];
        (addr >= base && addr < end).then_some(arr)
    }
}

impl TraceSink for SpatialSink {
    fn access(&mut self, _r: RefId, addr: u64, size: u32, _kind: AccessKind) {
        let mask = self.line_size - 1;
        let mut pos = addr;
        let mut remaining = size as u64;
        while remaining > 0 {
            let line = pos >> self.line_shift;
            let offset = pos & mask;
            let in_line = remaining.min(self.line_size - offset);
            let words = (self.line_size / 64).max(1) as usize;
            let bitmap = self
                .lines
                .entry(line)
                .or_insert_with(|| vec![0u64; words]);
            for b in offset..offset + in_line {
                bitmap[(b / 64) as usize] |= 1 << (b % 64);
            }
            pos += in_line;
            remaining -= in_line;
        }
    }
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

/// Executes `program` once and measures per-array spatial utilization at
/// the given line size.
///
/// # Errors
///
/// Propagates executor errors.
///
/// # Examples
///
/// ```
/// use reuselens_core::measure_spatial;
/// use reuselens_ir::{Expr, ProgramBuilder};
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[7, 256]);
/// p.routine("main", |r| {
///     r.for_("i", 0, 255, |r, i| {
///         r.load(a, vec![Expr::c(0), i.into()]);
///     });
/// });
/// let prog = p.finish();
/// let profile = measure_spatial(&prog, 128, vec![])?;
/// assert!(profile.utilization_of(a).unwrap() < 0.2);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn measure_spatial(
    program: &Program,
    line_size: u64,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<SpatialProfile, reuselens_trace::ExecError> {
    let mut sink = SpatialSink::new(program, line_size);
    let mut exec = reuselens_trace::Executor::new(program);
    for (a, d) in index_arrays {
        exec.set_index_array(a, d);
    }
    exec.run(&mut sink)?;
    Ok(sink.finish())
}

/// Per-array spatial statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpatial {
    /// Distinct lines of this array ever fetched.
    pub lines: u64,
    /// Distinct bytes ever touched.
    pub bytes_touched: u64,
    /// Bytes fetched (`lines × line size`).
    pub bytes_fetched: u64,
}

impl ArraySpatial {
    /// Fraction of fetched bytes that were used (1.0 = perfect).
    pub fn utilization(&self) -> f64 {
        if self.bytes_fetched == 0 {
            1.0
        } else {
            self.bytes_touched as f64 / self.bytes_fetched as f64
        }
    }

    /// The dynamic counterpart of the paper's fragmentation factor:
    /// the wasted fraction of fetched bytes.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.utilization()
    }
}

/// Result of a [`SpatialSink`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialProfile {
    /// Line size the measurement used.
    pub line_size: u64,
    /// Per-array statistics, indexed by [`ArrayId`].
    pub per_array: Vec<ArraySpatial>,
    /// Lines that fell outside every declared array (should be zero).
    pub orphan_lines: u64,
}

impl SpatialProfile {
    /// Utilization of one array, `None` if it was never touched.
    pub fn utilization_of(&self, array: ArrayId) -> Option<f64> {
        let s = self.per_array.get(array.index())?;
        (s.lines > 0).then(|| s.utilization())
    }

    /// Arrays sorted by wasted bytes (fetched − touched), descending.
    pub fn most_wasteful(&self) -> Vec<(ArrayId, u64, f64)> {
        let mut rows: Vec<(ArrayId, u64, f64)> = self
            .per_array
            .iter()
            .enumerate()
            .filter(|(_, s)| s.lines > 0)
            .map(|(i, s)| {
                (
                    ArrayId(i as u32),
                    s.bytes_fetched - s.bytes_touched,
                    s.utilization(),
                )
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};
    use reuselens_trace::Executor;

    fn run(prog: &Program, index: Vec<(ArrayId, Vec<i64>)>) -> SpatialProfile {
        let mut sink = SpatialSink::new(prog, 128);
        let mut exec = Executor::new(prog);
        for (a, d) in index {
            exec.set_index_array(a, d);
        }
        exec.run(&mut sink).unwrap();
        sink.finish()
    }

    #[test]
    fn dense_sweep_has_full_utilization() {
        let mut p = ProgramBuilder::new("dense");
        let a = p.array("a", 8, &[1024]);
        p.routine("main", |r| {
            r.for_("i", 0, 1023, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let profile = run(&prog, vec![]);
        assert_eq!(profile.utilization_of(a), Some(1.0));
        assert_eq!(profile.orphan_lines, 0);
        assert_eq!(profile.per_array[a.index()].lines, 64);
    }

    #[test]
    fn aos_field_access_shows_low_utilization() {
        let n = 512u64;
        let mut p = ProgramBuilder::new("aos");
        let zion = p.array("zion", 8, &[7, n]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(zion, vec![Expr::c(0), i.into()]);
                r.load(zion, vec![Expr::c(1), i.into()]);
            });
        });
        let prog = p.finish();
        let profile = run(&prog, vec![]);
        let u = profile.utilization_of(zion).unwrap();
        // 2 of 7 fields used.
        assert!((u - 2.0 / 7.0).abs() < 0.02, "utilization {u}");
        let s = profile.per_array[zion.index()];
        assert!((s.fragmentation() - 5.0 / 7.0).abs() < 0.02);
    }

    /// The paper's poisson case: unit-stride columns that stop short of
    /// their allocated length. The *static* analysis reports no
    /// fragmentation (stride 1); the *dynamic* measurement sees the unused
    /// tails.
    #[test]
    fn short_columns_are_invisible_to_static_but_visible_here() {
        let (mmax, mgrid) = (16u64, 64u64);
        let mut p = ProgramBuilder::new("poisson-like");
        let nring = p.index_array("nring", &[mgrid]);
        let ring = p.array("ring", 8, &[mmax, mgrid]);
        p.routine("main", |r| {
            r.for_("ig", 0, (mgrid - 1) as i64, |r, ig| {
                let count = Expr::load(nring, vec![ig.into()]) - 1;
                r.for_("m", 0, count, |r, m| {
                    r.load(ring, vec![m.into(), ig.into()]);
                });
            });
        });
        let prog = p.finish();
        // Every column uses only half its entries.
        let profile = run(&prog, vec![(nring, vec![mmax as i64 / 2; mgrid as usize])]);
        let u = profile.utilization_of(ring).unwrap();
        // Static analysis cannot attribute a fragmentation factor here:
        // the inner loop's trip count is data-dependent and the stride is
        // a clean 8 bytes — but the dynamic measurement sees the waste.
        assert!((u - 0.5).abs() < 0.05, "utilization {u}");
    }

    #[test]
    fn multi_line_spanning_access_touches_both_lines() {
        let mut p = ProgramBuilder::new("wide");
        let a = p.array_with(
            "a",
            256, // 256-byte elements span two 128 B lines
            &[4],
            reuselens_ir::Layout::ColumnMajor,
            reuselens_ir::ArrayKind::Data,
        );
        p.routine("main", |r| {
            r.load(a, vec![Expr::c(0)]);
        });
        let prog = p.finish();
        let profile = run(&prog, vec![]);
        let s = profile.per_array[a.index()];
        assert_eq!(s.lines, 2);
        assert_eq!(s.bytes_touched, 256);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn most_wasteful_ranks_by_wasted_bytes() {
        let mut p = ProgramBuilder::new("two");
        let sparse = p.array("sparse", 8, &[7, 512]);
        let dense = p.array("dense", 8, &[512]);
        p.routine("main", |r| {
            r.for_("i", 0, 511, |r, i| {
                r.load(sparse, vec![Expr::c(0), i.into()]);
                r.load(dense, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let profile = run(&prog, vec![]);
        let rows = profile.most_wasteful();
        assert_eq!(rows[0].0, sparse);
        assert!(rows[0].2 < 0.2); // sparse utilization
        // dense wastes nothing; it may not even appear after sparse.
        if let Some(dense_row) = rows.iter().find(|r| r.0 == dense) {
            assert_eq!(dense_row.1, 0);
        }
    }
}
