//! The pre-optimization serial analyzer, kept as a measurement baseline.
//!
//! [`ReferenceAnalyzer`] is the reuse-distance engine exactly as it stood
//! before the batch-vectorized serial core landed: a radix
//! [`BlockTable`] probe on every access, a *separate* `count_greater`
//! descent followed by a `reinsert` descent on the order-statistic tree,
//! and the per-record `access_batch` replay path (no struct-of-arrays
//! lane streaming, no recent-access window). It exists for two reasons:
//!
//! * the differential test suite pins the optimized
//!   [`ReuseAnalyzer`](crate::ReuseAnalyzer) — window hot path, fused
//!   single-descent tree ops, SoA decode — to this known-good
//!   implementation, bit for bit;
//! * the bench runner measures `single_grain_speedup_ratio` against it,
//!   so the recorded speedup is the honest "this PR vs the algorithm it
//!   replaced" number rather than a thread-scaling artifact.
//!
//! It is deliberately *not* maintained for speed; do not grow features
//! onto it.

use crate::analyzer::SinkPatterns;
use crate::blocktable::BlockTable;
use crate::ostree::OrderStatTree;
use crate::patterns::{PatternKey, ReusePattern, ReuseProfile};
use crate::scopestack::ScopeStack;
use reuselens_ir::{AccessKind, Program, RefId, ScopeId};
use reuselens_trace::TraceSink;

/// The frozen pre-optimization reuse-distance analyzer (see the module
/// docs). Produces profiles bit-identical to
/// [`ReuseAnalyzer`](crate::ReuseAnalyzer), two tree descents and one
/// radix probe per access slower.
#[derive(Debug)]
pub struct ReferenceAnalyzer {
    block_shift: u32,
    clock: u64,
    table: BlockTable,
    tree: OrderStatTree,
    stack: ScopeStack,
    per_sink: Vec<SinkPatterns>,
    cold: Vec<u64>,
    ref_scopes: Vec<ScopeId>,
    last_distance: Option<u64>,
}

impl ReferenceAnalyzer {
    /// Creates a baseline analyzer at the given block size (must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(program: &Program, block_size: u64) -> ReferenceAnalyzer {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let nrefs = program.references().len();
        ReferenceAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock: 0,
            table: BlockTable::new(),
            tree: OrderStatTree::new(),
            stack: ScopeStack::new(),
            per_sink: (0..nrefs).map(|_| SinkPatterns::default()).collect(),
            cold: vec![0; nrefs],
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
            last_distance: None,
        }
    }

    /// Distance of the most recent access (`None` for a cold miss).
    pub fn last_distance(&self) -> Option<u64> {
        self.last_distance
    }

    /// Consumes the analyzer and produces the measured profile.
    pub fn finish(self) -> ReuseProfile {
        let mut patterns = Vec::new();
        for (sink_idx, sp) in self.per_sink.into_iter().enumerate() {
            for (source_scope, carrier, histogram) in sp.entries {
                patterns.push(ReusePattern {
                    key: PatternKey {
                        sink: RefId(sink_idx as u32),
                        source_scope,
                        carrier,
                    },
                    histogram,
                });
            }
        }
        patterns.sort_by_key(|p| p.key);
        ReuseProfile {
            block_size: 1 << self.block_shift,
            patterns,
            cold: self.cold,
            total_accesses: self.clock,
            distinct_blocks: self.table.distinct_blocks(),
            sampling: None,
        }
    }
}

impl TraceSink for ReferenceAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        let block = addr >> self.block_shift;
        self.clock += 1;
        let now = self.clock;
        match self.table.get(block) {
            Some(prev) => {
                // The unfused pair the optimized core replaced: one full
                // descent to count, a second to re-key.
                let distance = self.tree.count_greater(prev.time);
                self.tree.reinsert(prev.time, now);
                let carrier = self.stack.carrier(prev.time);
                let source = self.ref_scopes[prev.ref_id as usize];
                self.per_sink[r.index()].record(source, carrier, distance);
                self.last_distance = Some(distance);
            }
            None => {
                self.cold[r.index()] += 1;
                self.tree.insert(now);
                self.last_distance = None;
            }
        }
        self.table.set(block, now, r.0);
    }

    fn enter(&mut self, scope: ScopeId) {
        self.stack.enter(scope, self.clock);
    }

    fn exit(&mut self, scope: ScopeId) {
        self.stack.exit(scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ReuseAnalyzer;
    use reuselens_ir::ProgramBuilder;
    use reuselens_trace::Executor;

    /// The optimized analyzer must reproduce the frozen baseline bit for
    /// bit on a scope-rich mixed workload.
    #[test]
    fn optimized_analyzer_matches_reference_bit_for_bit() {
        let n = 1024u64;
        let mut p = ProgramBuilder::new("mixed");
        let a = p.array("a", 8, &[n]);
        let b = p.array("b", 8, &[n / 2]);
        p.routine("main", |r| {
            r.for_("t", 0, 3, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
                r.for_("j", 0, (n / 2 - 1) as i64, |r, j| {
                    r.store(b, vec![j.into()]);
                    r.load(a, vec![j.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut reference = ReferenceAnalyzer::new(&prog, 64);
        let mut optimized = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut reference).unwrap();
        Executor::new(&prog).run(&mut optimized).unwrap();
        assert_eq!(reference.finish(), optimized.finish());
    }
}
