//! Constant-space sampled reuse-distance analysis.
//!
//! The exact analyzer pays `O(log M)` tree work per access over the full
//! block set `M`. On large runs most of that work is statistically
//! redundant: a spatially hashed *sample* of the blocks recovers the same
//! reuse-distance histogram shape at a fraction of the cost (the SHARDS
//! construction — see also Razzak et al. and Fauzia et al. on how much
//! approximation locality profiles tolerate).
//!
//! ## Construction
//!
//! Every block number is hashed once with a fixed 64-bit mixer. A block is
//! **sampled** iff `hash(block) <= u64::MAX / inv`, where `inv` is the
//! integer inverse sampling rate (`inv = 100` samples ~1% of blocks).
//! Only sampled blocks enter the block table and the order-statistic
//! tree, so:
//!
//! * an unsampled access costs one hash + compare — no tree, no table;
//! * the logical clock ticks only on sampled accesses, so a measured
//!   distance `d` counts *sampled* distinct blocks in the reuse interval;
//!   the estimate of the true distance is `d * inv`, and each observed
//!   reuse stands for `inv` reuses, recorded as `add_n(d * inv, inv)`;
//! * cold (first-touch) counts and the distinct-block footprint are
//!   scaled the same way.
//!
//! ## Adaptive mode
//!
//! [`SamplingConfig::adaptive`] holds the tracked-block set at a fixed
//! budget: when it would grow past the budget, `inv` doubles (the hash
//! threshold halves) and every tracked block whose hash exceeds the new
//! threshold is evicted — the drop-highest-threshold policy. Because the
//! hash is fixed per block, the surviving set is exactly the set that a
//! fixed run at the new rate would have tracked, so the stream remains a
//! consistent spatial sample. Reuses are scaled by the `inv` in force
//! when they are *recorded*; distances measured across a rate drop use
//! the tree as it exists then (evicted blocks no longer count), which
//! biases those few distances low by at most the evicted fraction —
//! the error model the accuracy harness bounds.

use crate::analyzer::{
    decode_scope_stack, decode_sink_patterns, encode_scope_stack, encode_sink_patterns,
    SinkPatterns,
};
use crate::ostree::OrderStatTree;
use crate::patterns::{PatternKey, ReusePattern, ReuseProfile};
use crate::scopestack::ScopeStack;
use crate::snapshot::{Dec, Enc, SnapshotError};
use reuselens_ir::{AccessKind, Program, RefId, ScopeId};
use reuselens_trace::TraceSink;
use std::collections::HashMap;

/// How (and whether) to sample the block stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingConfig {
    /// Track every block — the bit-identical pre-sampling pipeline.
    #[default]
    Exact,
    /// Sample blocks at a fixed rate `1/inv`.
    Fixed {
        /// Integer inverse sampling rate (`1` = every block).
        inv: u64,
    },
    /// Start at rate 1 and halve the rate whenever the tracked-block set
    /// would exceed `budget`, keeping memory `O(budget)`.
    Adaptive {
        /// Maximum number of concurrently tracked blocks.
        budget: u64,
    },
}

impl SamplingConfig {
    /// Exact (unsampled) analysis — the default.
    pub fn exact() -> SamplingConfig {
        SamplingConfig::Exact
    }

    /// Fixed-rate sampling at the given rate in `(0, 1]`; the rate is
    /// rounded to the nearest integer inverse (`0.01` → `inv = 100`).
    /// Rates `>= 1.0` sample every block (but still run the sampled
    /// engine; use [`SamplingConfig::exact`] for the exact pipeline).
    pub fn fixed(rate: f64) -> SamplingConfig {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate.min(1.0)
        } else {
            1.0
        };
        SamplingConfig::Fixed {
            inv: ((1.0 / rate).round() as u64).max(1),
        }
    }

    /// Adaptive sampling holding at most `budget` tracked blocks
    /// (minimum 1).
    pub fn adaptive(budget: u64) -> SamplingConfig {
        SamplingConfig::Adaptive {
            budget: budget.max(1),
        }
    }

    /// True for the exact (unsampled) configuration.
    pub fn is_exact(&self) -> bool {
        matches!(self, SamplingConfig::Exact)
    }
}

/// What the sampled analyzer actually did, attached to every sampled
/// [`ReuseProfile`] and reconciled against the observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingInfo {
    /// Inverse sampling rate in force at the end of the run.
    pub inv: u64,
    /// Distinct blocks that were ever sampled (including later-evicted
    /// ones) — the unscaled count of blocks the analyzer touched.
    pub blocks_sampled: u64,
    /// Tracked blocks evicted by adaptive rate drops (0 in fixed mode).
    pub blocks_evicted: u64,
    /// Number of times the adaptive policy halved the rate.
    pub rate_drops: u64,
}

impl SamplingInfo {
    /// The effective sampling rate `1/inv`.
    pub fn rate(&self) -> f64 {
        1.0 / self.inv as f64
    }
}

/// Fixed 64-bit block-number mixer (the SplitMix64 finalizer). A block's
/// sampling fate must be a pure function of its number so the sampled set
/// is consistent across the whole run and across rate drops.
#[inline]
pub(crate) fn spatial_hash(block: u64) -> u64 {
    let mut z = block.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tracked (sampled) block's last access.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    time: u64,
    ref_id: u32,
    hash: u64,
}

/// Constant-space sampled counterpart of
/// [`ReuseAnalyzer`](crate::ReuseAnalyzer).
///
/// Implements [`TraceSink`], so it drops into the same capture/replay
/// pipeline; [`finish`](SampledAnalyzer::finish) produces a
/// [`ReuseProfile`] whose histogram and cold counts are scaled estimates
/// and whose `sampling` field records the run's [`SamplingInfo`].
///
/// # Examples
///
/// ```
/// use reuselens_core::{ReuseAnalyzer, SampledAnalyzer, SamplingConfig};
/// use reuselens_ir::ProgramBuilder;
/// use reuselens_trace::Executor;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[4096]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 1, |r, _| {
///         r.for_("i", 0, 4095, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
///
/// // Rate 1.0 tracks every block: same measurements as the exact engine.
/// let mut full = SampledAnalyzer::new(&prog, 64, SamplingConfig::fixed(1.0));
/// Executor::new(&prog).run(&mut full)?;
/// let mut exact = ReuseAnalyzer::new(&prog, 64);
/// Executor::new(&prog).run(&mut exact)?;
/// let (full, exact) = (full.finish(), exact.finish());
/// assert_eq!(full.patterns, exact.patterns);
/// assert_eq!(full.sampling.unwrap().inv, 1);
///
/// // Rate 0.1 tracks ~10% of the blocks but estimates the same totals.
/// let mut tenth = SampledAnalyzer::new(&prog, 64, SamplingConfig::fixed(0.1));
/// Executor::new(&prog).run(&mut tenth)?;
/// let tenth = tenth.finish();
/// assert!(tenth.sampling.unwrap().blocks_sampled < exact.distinct_blocks);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug)]
pub struct SampledAnalyzer {
    block_shift: u32,
    /// Logical clock over *sampled* accesses only.
    clock: u64,
    /// True total of all accesses observed, sampled or not.
    total_accesses: u64,
    /// Current integer inverse sampling rate.
    inv: u64,
    /// Blocks with `hash <= threshold` are sampled; always
    /// `u64::MAX / inv`.
    threshold: u64,
    /// Adaptive tracked-block budget (`u64::MAX` in fixed mode).
    budget: u64,
    table: HashMap<u64, Tracked>,
    tree: OrderStatTree,
    stack: ScopeStack,
    per_sink: Vec<SinkPatterns>,
    cold: Vec<u64>,
    ref_scopes: Vec<ScopeId>,
    /// Scaled estimate of the distinct-block footprint (Σ inv at first
    /// touch, SHARDS-style).
    est_distinct: u64,
    blocks_sampled: u64,
    blocks_evicted: u64,
    rate_drops: u64,
}

impl SampledAnalyzer {
    /// Creates a sampled analyzer at the given block size (must be a power
    /// of two). [`SamplingConfig::Exact`] is accepted and behaves like
    /// `fixed(1.0)`; callers wanting the exact engine should construct a
    /// [`ReuseAnalyzer`](crate::ReuseAnalyzer) instead.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(program: &Program, block_size: u64, config: SamplingConfig) -> SampledAnalyzer {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let (inv, budget) = match config {
            SamplingConfig::Exact => (1, u64::MAX),
            SamplingConfig::Fixed { inv } => (inv.max(1), u64::MAX),
            SamplingConfig::Adaptive { budget } => (1, budget.max(1)),
        };
        let nrefs = program.references().len();
        SampledAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock: 0,
            total_accesses: 0,
            inv,
            threshold: u64::MAX / inv,
            budget,
            table: HashMap::new(),
            tree: OrderStatTree::new(),
            stack: ScopeStack::new(),
            per_sink: (0..nrefs).map(|_| SinkPatterns::default()).collect(),
            cold: vec![0; nrefs],
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
            est_distinct: 0,
            blocks_sampled: 0,
            blocks_evicted: 0,
            rate_drops: 0,
        }
    }

    /// Block size this analyzer measures at.
    pub fn block_size(&self) -> u64 {
        1 << self.block_shift
    }

    /// Accesses observed so far (sampled or not).
    pub fn accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Blocks currently tracked (bounded by the budget in adaptive mode).
    pub fn tracked_blocks(&self) -> u64 {
        self.table.len() as u64
    }

    /// Current size of the order-statistic tree (one node per tracked
    /// block).
    pub fn tree_nodes(&self) -> usize {
        self.tree.len()
    }

    /// Inverse sampling rate currently in force.
    pub fn current_inv(&self) -> u64 {
        self.inv
    }

    /// Sampling statistics as they stand now (the run's final
    /// [`SamplingInfo`] once the stream ends).
    pub fn sampling_info(&self) -> SamplingInfo {
        SamplingInfo {
            inv: self.inv,
            blocks_sampled: self.blocks_sampled,
            blocks_evicted: self.blocks_evicted,
            rate_drops: self.rate_drops,
        }
    }

    /// Halves the sampling rate until the tracked set fits the budget,
    /// evicting every tracked block whose hash falls above the new
    /// threshold (drop-highest-threshold).
    fn drop_rate(&mut self) {
        while self.table.len() as u64 > self.budget {
            // `inv` doubling cannot overflow in practice: the budget is at
            // least 1, so inv doubles at most 64 times before the
            // threshold reaches 0 and no new block can enter.
            self.inv = self.inv.saturating_mul(2);
            self.threshold = u64::MAX / self.inv;
            self.rate_drops += 1;
            let threshold = self.threshold;
            let mut evicted_times: Vec<u64> = Vec::new();
            self.table.retain(|_, t| {
                if t.hash > threshold {
                    evicted_times.push(t.time);
                    false
                } else {
                    true
                }
            });
            for time in evicted_times {
                let removed = self.tree.remove(time);
                debug_assert!(removed, "every tracked block has a tree node");
                self.blocks_evicted += 1;
            }
        }
    }

    /// Serializes the full mid-stream sampling state — clock, rate, the
    /// books, every tracked block, scopes, patterns, cold counts. The
    /// tracked set is written sorted by block number so the encoding is
    /// independent of `HashMap` iteration order; per-block hashes, the
    /// hash threshold, and the order-statistic tree are derived state and
    /// rebuilt on decode.
    pub(crate) fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.clock);
        e.u64(self.total_accesses);
        e.u64(self.inv);
        e.u64(self.budget);
        e.u64(self.est_distinct);
        e.u64(self.blocks_sampled);
        e.u64(self.blocks_evicted);
        e.u64(self.rate_drops);
        let mut rows: Vec<(u64, u64, u32)> = self
            .table
            .iter()
            .map(|(&block, t)| (block, t.time, t.ref_id))
            .collect();
        rows.sort_unstable_by_key(|r| r.0);
        e.u64(rows.len() as u64);
        for (block, time, ref_id) in rows {
            e.u64(block);
            e.u64(time);
            e.u32(ref_id);
        }
        encode_scope_stack(e, &self.stack);
        encode_sink_patterns(e, &self.per_sink);
        e.u64(self.cold.len() as u64);
        for &c in &self.cold {
            e.u64(c);
        }
    }

    /// Rebuilds a mid-stream sampled analyzer from
    /// [`snapshot_encode`](Self::snapshot_encode) output. Validates the
    /// rate, the books balance (`sampled == tracked + evicted`), and —
    /// via the recomputed spatial hash — that every tracked block really
    /// belongs to the sample at the recorded rate; a typed
    /// [`SnapshotError`] on any violation, never a panic.
    pub(crate) fn snapshot_decode(
        program: &Program,
        block_size: u64,
        d: &mut Dec<'_>,
    ) -> Result<SampledAnalyzer, SnapshotError> {
        debug_assert!(block_size.is_power_of_two());
        let nrefs = program.references().len();
        let clock = d.u64()?;
        let at = d.offset();
        let total_accesses = d.u64()?;
        if clock > total_accesses {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: format!("sampled clock {clock} exceeds {total_accesses} total accesses"),
            });
        }
        let at = d.offset();
        let inv = d.u64()?;
        if inv == 0 {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: "inverse sampling rate is zero".to_string(),
            });
        }
        let threshold = u64::MAX / inv;
        let budget = d.u64()?;
        let est_distinct = d.u64()?;
        let blocks_sampled = d.u64()?;
        let blocks_evicted = d.u64()?;
        let rate_drops = d.u64()?;
        let at = d.offset();
        let n = d.len(20)?;
        if blocks_sampled != n as u64 + blocks_evicted {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: format!(
                    "sampling books do not balance: {blocks_sampled} sampled != \
                     {n} tracked + {blocks_evicted} evicted"
                ),
            });
        }
        let mut table = HashMap::with_capacity(n);
        let mut tree = OrderStatTree::with_capacity(n);
        let mut prev_block = None;
        for _ in 0..n {
            let at = d.offset();
            let block = d.u64()?;
            let time = d.u64()?;
            let ref_id = d.u32()?;
            let hash = spatial_hash(block);
            if prev_block.is_some_and(|p| block <= p)
                || time == 0
                || time > clock
                || ref_id as usize >= nrefs
                || hash > threshold
            {
                return Err(SnapshotError::Corrupt {
                    offset: at,
                    what: format!(
                        "tracked block (block {block}, time {time}, ref {ref_id}) \
                         violates sampling invariants at clock {clock}, inv {inv}"
                    ),
                });
            }
            if !tree.insert(time) {
                return Err(SnapshotError::Corrupt {
                    offset: at,
                    what: format!("duplicate last-access time {time} in the tracked set"),
                });
            }
            prev_block = Some(block);
            table.insert(block, Tracked { time, ref_id, hash });
        }
        let stack = decode_scope_stack(d, clock)?;
        let per_sink = decode_sink_patterns(d, nrefs)?;
        let clen = d.len(8)?;
        if clen != nrefs {
            return Err(SnapshotError::Mismatch {
                what: format!("snapshot has {clen} cold counters, the program has {nrefs}"),
            });
        }
        let mut cold = Vec::with_capacity(clen);
        for _ in 0..clen {
            cold.push(d.u64()?);
        }
        Ok(SampledAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock,
            total_accesses,
            inv,
            threshold,
            budget,
            table,
            tree,
            stack,
            per_sink,
            cold,
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
            est_distinct,
            blocks_sampled,
            blocks_evicted,
            rate_drops,
        })
    }

    /// Consumes the analyzer and produces the scaled profile.
    pub fn finish(self) -> ReuseProfile {
        let info = self.sampling_info();
        let mut patterns = Vec::new();
        for (sink_idx, sp) in self.per_sink.into_iter().enumerate() {
            for (source_scope, carrier, histogram) in sp.entries {
                patterns.push(ReusePattern {
                    key: PatternKey {
                        sink: RefId(sink_idx as u32),
                        source_scope,
                        carrier,
                    },
                    histogram,
                });
            }
        }
        patterns.sort_by_key(|p| p.key);
        ReuseProfile {
            block_size: 1 << self.block_shift,
            patterns,
            cold: self.cold,
            total_accesses: self.total_accesses,
            distinct_blocks: self.est_distinct,
            sampling: Some(info),
        }
    }
}

impl TraceSink for SampledAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        self.total_accesses += 1;
        let block = addr >> self.block_shift;
        let hash = spatial_hash(block);
        if hash > self.threshold {
            return; // unsampled: one hash + compare, nothing else
        }
        // The clock ticks only on sampled accesses, so tree distances
        // count *sampled* distinct blocks and scale back up by `inv`.
        self.clock += 1;
        let now = self.clock;
        let inv = self.inv;
        match self.table.get_mut(&block) {
            Some(prev) => {
                let (prev_time, prev_ref) = (prev.time, prev.ref_id);
                prev.time = now;
                prev.ref_id = r.0;
                // One fused descent: count pre-state keys above
                // `prev_time` and re-key it to `now` (the new maximum).
                let (_, distance) = self.tree.count_reinsert(prev_time, now);
                let carrier = self.stack.carrier(prev_time);
                let source = self.ref_scopes[prev_ref as usize];
                self.per_sink[r.index()].record_n(
                    source,
                    carrier,
                    distance.saturating_mul(inv),
                    inv,
                );
            }
            None => {
                self.cold[r.index()] += inv;
                self.est_distinct += inv;
                self.blocks_sampled += 1;
                self.tree.insert(now);
                self.table.insert(
                    block,
                    Tracked {
                        time: now,
                        ref_id: r.0,
                        hash,
                    },
                );
                if self.table.len() as u64 > self.budget {
                    self.drop_rate();
                }
            }
        }
    }

    fn access_soa(&mut self, batch: &reuselens_trace::SoaBatch) {
        // Only the ref and address lanes matter; skip the bridge's
        // record materialization entirely.
        for (&r, &addr) in batch.refs.iter().zip(&batch.addrs) {
            self.access(RefId(r), addr, 0, AccessKind::Load);
        }
    }

    fn enter(&mut self, scope: ScopeId) {
        self.stack.enter(scope, self.clock);
    }

    fn exit(&mut self, scope: ScopeId) {
        self.stack.exit(scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ReuseAnalyzer;
    use reuselens_ir::ProgramBuilder;
    use reuselens_trace::Executor;

    fn sweep_program(elems: u64, sweeps: i64) -> reuselens_ir::Program {
        let mut p = ProgramBuilder::new("sweep");
        let a = p.array("a", 8, &[elems]);
        p.routine("main", |r| {
            r.for_("t", 0, sweeps - 1, |r, _| {
                r.for_("i", 0, (elems - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        p.finish()
    }

    fn run_sampled(prog: &reuselens_ir::Program, config: SamplingConfig) -> ReuseProfile {
        let mut an = SampledAnalyzer::new(prog, 64, config);
        Executor::new(prog).run(&mut an).unwrap();
        an.finish()
    }

    fn run_exact(prog: &reuselens_ir::Program) -> ReuseProfile {
        let mut an = ReuseAnalyzer::new(prog, 64);
        Executor::new(prog).run(&mut an).unwrap();
        an.finish()
    }

    /// At rate 1.0 every block is sampled, so every field the exact
    /// analyzer measures must come back identical.
    #[test]
    fn rate_one_matches_exact_bit_for_bit() {
        let prog = sweep_program(2048, 3);
        let exact = run_exact(&prog);
        let sampled = run_sampled(&prog, SamplingConfig::fixed(1.0));
        assert_eq!(sampled.patterns, exact.patterns);
        assert_eq!(sampled.cold, exact.cold);
        assert_eq!(sampled.total_accesses, exact.total_accesses);
        assert_eq!(sampled.distinct_blocks, exact.distinct_blocks);
        let info = sampled.sampling.unwrap();
        assert_eq!(info.inv, 1);
        assert_eq!(info.blocks_sampled, exact.distinct_blocks);
        assert_eq!(info.blocks_evicted, 0);
        assert_eq!(info.rate_drops, 0);
        assert!(exact.sampling.is_none());
    }

    /// Fixed 10% sampling: scaled totals land near the exact totals while
    /// the analyzer tracks only ~10% of the blocks.
    #[test]
    fn fixed_rate_estimates_totals() {
        let prog = sweep_program(8192, 3);
        let exact = run_exact(&prog);
        let sampled = run_sampled(&prog, SamplingConfig::fixed(0.1));
        let info = sampled.sampling.unwrap();
        assert_eq!(info.inv, 10);
        // ~10% of 1024 lines tracked; generous 3x band on the binomial.
        assert!(info.blocks_sampled < exact.distinct_blocks / 3);
        // Scaled estimates within 30% of truth on this footprint.
        let est = sampled.distinct_blocks as f64;
        let truth = exact.distinct_blocks as f64;
        assert!((est - truth).abs() / truth < 0.3, "est {est} truth {truth}");
        let est = sampled.total_reuses() as f64;
        let truth = exact.total_reuses() as f64;
        assert!((est - truth).abs() / truth < 0.3, "est {est} truth {truth}");
        // Every access was still counted, even unsampled ones.
        assert_eq!(sampled.total_accesses, exact.total_accesses);
    }

    /// The spatial hash makes sampling consistent: the same rate always
    /// picks the same blocks, so two runs agree exactly.
    #[test]
    fn sampling_is_deterministic() {
        let prog = sweep_program(4096, 2);
        let a = run_sampled(&prog, SamplingConfig::fixed(0.1));
        let b = run_sampled(&prog, SamplingConfig::fixed(0.1));
        assert_eq!(a, b);
    }

    /// Adaptive mode keeps the tracked set at the budget by halving the
    /// rate, and the evictions reconcile: sampled = tracked + evicted.
    #[test]
    fn adaptive_mode_holds_budget() {
        let prog = sweep_program(16384, 2); // 2048 lines
        let budget = 64u64;
        let mut an = SampledAnalyzer::new(&prog, 64, SamplingConfig::adaptive(budget));
        Executor::new(&prog).run(&mut an).unwrap();
        assert!(an.tracked_blocks() <= budget);
        assert_eq!(an.tree_nodes() as u64, an.tracked_blocks());
        let info = an.sampling_info();
        assert!(info.rate_drops > 0);
        assert!(info.inv > 1);
        assert_eq!(info.blocks_sampled, an.tracked_blocks() + info.blocks_evicted);
        let profile = an.finish();
        // The footprint estimate stays in the right ballpark even across
        // rate drops (each first touch is scaled by the inv of its time).
        let truth = 2048.0;
        let est = profile.distinct_blocks as f64;
        assert!((est - truth).abs() / truth < 0.5, "est {est} truth {truth}");
    }

    /// A fixed-rate run never drops rate or evicts.
    #[test]
    fn fixed_mode_never_evicts() {
        let prog = sweep_program(16384, 2);
        let sampled = run_sampled(&prog, SamplingConfig::fixed(0.01));
        let info = sampled.sampling.unwrap();
        assert_eq!(info.inv, 100);
        assert_eq!(info.blocks_evicted, 0);
        assert_eq!(info.rate_drops, 0);
    }

    #[test]
    fn config_constructors_clamp() {
        assert_eq!(SamplingConfig::fixed(0.01), SamplingConfig::Fixed { inv: 100 });
        assert_eq!(SamplingConfig::fixed(1.0), SamplingConfig::Fixed { inv: 1 });
        assert_eq!(SamplingConfig::fixed(7.0), SamplingConfig::Fixed { inv: 1 });
        assert_eq!(SamplingConfig::fixed(f64::NAN), SamplingConfig::Fixed { inv: 1 });
        assert_eq!(SamplingConfig::fixed(-3.0), SamplingConfig::Fixed { inv: 1 });
        assert_eq!(SamplingConfig::adaptive(0), SamplingConfig::Adaptive { budget: 1 });
        assert!(SamplingConfig::exact().is_exact());
        assert_eq!(SamplingConfig::default(), SamplingConfig::Exact);
        let info = SamplingInfo {
            inv: 100,
            blocks_sampled: 5,
            blocks_evicted: 0,
            rate_drops: 0,
        };
        assert!((info.rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_panics() {
        let prog = sweep_program(16, 1);
        let _ = SampledAnalyzer::new(&prog, 48, SamplingConfig::exact());
    }
}
