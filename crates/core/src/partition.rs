//! Time-partitioned parallel replay of a single grain.
//!
//! The multi-grain pipeline is embarrassingly parallel across grains, but
//! one grain's replay is a serial chain: every distance depends on the
//! block table and tree state left by every earlier access. This module
//! breaks that chain with the classic PARDA decomposition (Niu et al.;
//! see also "Beyond Reuse Distance Analysis" in PAPERS.md), adapted to
//! this codebase's scope-attributed patterns:
//!
//! 1. **Partition.** [`TraceBuffer::segment_states`] splits the captured
//!    event stream into `p` contiguous time segments and yields the exact
//!    decoder state (byte offsets, delta bases, access clock, open-scope
//!    stack) at each boundary, fast-forwarded through capture-time
//!    checkpoints.
//! 2. **Replay.** Each segment replays on its own worker thread through a
//!    [`PartitionWorker`]: the same window + order-statistic-tree engine
//!    as the serial analyzer, but starting from an empty block set. The
//!    first local access to each block cannot be resolved locally — it is
//!    appended to the worker's ordered **unknown list** (with its sink
//!    reference and the live prefix of boundary scopes at that moment)
//!    and then treated as a local cold miss. All later accesses to the
//!    block resolve exactly, because their whole reuse interval lies
//!    inside the segment and global/local distinct counts agree there.
//! 3. **Stitch.** Workers are folded left to right. A cumulative table
//!    `C` maps every block to its last access (global clock, reference)
//!    in any earlier segment, with a companion order-statistic tree over
//!    `C`'s times. The `i`-th unknown of a segment that hits `C` at time
//!    `t` has distance `i + |{times in C} > t|`: the `i` earlier local
//!    distinct blocks, plus the blocks last touched after `t` before the
//!    boundary *that the segment has not seen* — maintained lazily by
//!    removing each hit's old time from the companion tree as it
//!    resolves ([`OrderStatTree::remove_counting`], one descent for the
//!    count and the removal). An unknown that misses `C` is the block's
//!    true global first touch: a cold miss. Per-worker histograms then
//!    merge bin-wise into one profile.
//!
//! The result is **bit-identical** to serial replay — same patterns, same
//! histograms, same cold counts — which the seeded property suite checks
//! shape × partition-count. Carrying scopes survive partitioning because
//! segment boundaries carry the open-scope stack with entry clocks: a
//! cross-partition reuse's carrier must have been entered strictly before
//! the previous access (which predates the boundary), so it is always one
//! of the boundary scopes still live at the unknown access — never a
//! locally entered scope.
//!
//! **Sampling** composes in fixed-rate mode: whether a block is sampled
//! is a pure function of its number, and both distances (key counts) and
//! carrier search depend only on the relative order of clocks, so workers
//! tick the *global access clock* where the serial sampled engine ticks
//! its sampled-access clock and produce the same scaled profile.
//! Adaptive mode's rate drops depend on the running tracked-set size and
//! are not partitionable; the caller falls back to serial replay.
//!
//! **Budgets** are enforced in two layers: each worker checks the event
//! cap against its global event offset and the block/tree caps against
//! its (necessarily smaller) local footprint per batch, so memory stays
//! bounded while replaying; the exact global footprint is re-checked
//! after the stitch. A budgeted partitioned run trips the same
//! [`BudgetLimit`](crate::BudgetLimit) kind as the serial guarded path.

use crate::analyze::GrainError;
use crate::analyzer::{SinkPatterns, WinEntry, WINDOW};
use crate::blocktable::BlockTable;
use crate::budget::{AnalysisBudget, BudgetProgress};
use crate::ostree::OrderStatTree;
use crate::timebits::TimeBits;
use crate::patterns::{PatternKey, ReusePattern, ReuseProfile};
use crate::sampling::{spatial_hash, SamplingConfig, SamplingInfo};
use crate::scopestack::ScopeStack;
use reuselens_ir::{AccessKind, Program, RefId, ScopeId};
use reuselens_obs as obs;
use reuselens_trace::{AccessRecord, SoaBatch, TraceBuffer, TraceSink};
use std::collections::HashMap;
use std::panic;

/// How many worker threads a single grain's replay may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayThreads {
    /// One thread — the classic serial replay (the default).
    #[default]
    Serial,
    /// Exactly this many time partitions (values < 2 mean serial).
    Fixed(usize),
    /// One partition per available hardware thread.
    Auto,
}

impl ReplayThreads {
    /// The partition count this setting resolves to on this machine.
    pub fn resolve(self) -> usize {
        match self {
            ReplayThreads::Serial => 1,
            ReplayThreads::Fixed(n) => n.max(1),
            ReplayThreads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// A block's first local access within one segment: unresolvable until
/// the stitch pass sees every earlier segment's last-access table.
#[derive(Debug, Clone, Copy)]
struct Unknown {
    block: u64,
    /// Sink reference of the access.
    r: u32,
    /// How many boundary-seeded scopes were still open at this access —
    /// the carrier of a cross-partition reuse is searched among exactly
    /// these (plus the root).
    live_seed: usize,
}

/// What one worker hands to the stitch pass.
struct WorkerResult {
    per_sink: Vec<SinkPatterns>,
    unknowns: Vec<Unknown>,
    /// Every locally seen (sampled) block with its final local access
    /// `(block, global clock, reference)`.
    finals: Vec<(u64, u64, u32)>,
    /// Accesses decoded in this segment (sampled or not).
    accesses: u64,
}

/// One time segment's replay engine: the serial window/tree/table hot
/// path, restarted from an empty block set at the segment boundary, with
/// unknown-prefix bookkeeping for blocks first seen locally.
struct PartitionWorker<'p> {
    block_shift: u32,
    /// Global access clock (total accesses, sampled or not).
    clock: u64,
    inv: u64,
    threshold: u64,
    table: BlockTable,
    tree: TimeBits,
    window: Vec<WinEntry>,
    stack: ScopeStack,
    /// Boundary-seeded scopes still on the stack (never regrows).
    live_seed: usize,
    per_sink: Vec<SinkPatterns>,
    ref_scopes: &'p [ScopeId],
    unknowns: Vec<Unknown>,
    /// Distinct local (sampled) blocks seen so far.
    local_distinct: u64,
    budget: &'p AnalysisBudget,
    /// Events preceding this segment — the worker's global event offset.
    base_event: u64,
    events_seen: u64,
    error: Option<GrainError>,
}

impl<'p> PartitionWorker<'p> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &Program,
        block_shift: u32,
        inv: u64,
        boundary_accesses: u64,
        boundary_scopes: &[(ScopeId, u64)],
        base_event: u64,
        budget: &'p AnalysisBudget,
        ref_scopes: &'p [ScopeId],
    ) -> PartitionWorker<'p> {
        let nrefs = program.references().len();
        PartitionWorker {
            block_shift,
            clock: boundary_accesses,
            inv,
            threshold: u64::MAX / inv,
            table: BlockTable::new(),
            tree: TimeBits::new(),
            window: Vec::with_capacity(WINDOW + 1),
            stack: ScopeStack::with_open_scopes(boundary_scopes),
            live_seed: boundary_scopes.len(),
            per_sink: (0..nrefs).map(|_| SinkPatterns::default()).collect(),
            ref_scopes,
            unknowns: Vec::new(),
            local_distinct: 0,
            budget,
            base_event,
            events_seen: 0,
            error: None,
        }
    }

    /// Per-batch budget check: the event count is exact (global offset +
    /// local), the footprint checks are conservative (local ≤ global), so
    /// a worker never trips a cap a serial run would not — the exact
    /// global footprint is re-checked after the stitch.
    fn check_budget(&mut self) {
        if self.error.is_some() || self.budget.is_unlimited() {
            return;
        }
        let progress = BudgetProgress {
            events: self.base_event + self.events_seen,
            distinct_blocks: self.local_distinct,
            tree_nodes: self.local_distinct,
        };
        if let Err(e) = self.budget.check(progress) {
            self.error = Some(GrainError::Budget(e));
        }
    }

    #[inline]
    fn access_block(&mut self, r: u32, block: u64) {
        self.clock += 1;
        // Exact replay (inv == 1) admits every block; only sampled runs
        // pay for the spatial hash.
        if self.inv != 1 && spatial_hash(block) > self.threshold {
            return;
        }
        let now = self.clock;
        let inv = self.inv;
        let len = self.window.len();
        // Distance-0 fast path, mirroring the serial analyzer: a repeat
        // of the most recent block updates the tail entry in place.
        if len > 0 && self.window[len - 1].block == block {
            let e = self.window[len - 1];
            self.window[len - 1] = WinEntry { block, time: now, ref_id: r };
            let carrier = self.stack.carrier(e.time);
            let source = self.ref_scopes[e.ref_id as usize];
            self.per_sink[r as usize].record_n(source, carrier, 0, inv);
            return;
        }
        for i in (0..len.saturating_sub(1)).rev() {
            if self.window[i].block == block {
                let e = self.window.remove(i);
                let distance = (len - 1 - i) as u64;
                let carrier = self.stack.carrier(e.time);
                let source = self.ref_scopes[e.ref_id as usize];
                self.per_sink[r as usize].record_n(
                    source,
                    carrier,
                    distance.saturating_mul(inv),
                    inv,
                );
                self.window.push(WinEntry { block, time: now, ref_id: r });
                return;
            }
        }
        match self.table.get(block) {
            Some(prev) => {
                let e = self.window.remove(0);
                let (_, count) = self.tree.count_reinsert(prev.time, e.time);
                self.table.set(e.block, e.time, e.ref_id);
                let distance = len as u64 + count;
                let carrier = self.stack.carrier(prev.time);
                let source = self.ref_scopes[prev.ref_id as usize];
                self.per_sink[r as usize].record_n(
                    source,
                    carrier,
                    distance.saturating_mul(inv),
                    inv,
                );
            }
            None => {
                // First local touch: defer to the stitch pass, then track
                // the block exactly like a cold miss.
                self.unknowns.push(Unknown {
                    block,
                    r,
                    live_seed: self.live_seed,
                });
                self.local_distinct += 1;
            }
        }
        self.window.push(WinEntry { block, time: now, ref_id: r });
        if self.window.len() > WINDOW {
            let e = self.window.remove(0);
            self.tree.insert(e.time);
            self.table.set(e.block, e.time, e.ref_id);
        }
    }

    fn into_result(self) -> Result<WorkerResult, GrainError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        // Final last-access per local block: table entries, overridden by
        // the window (whose entries are newer and may shadow a stale
        // table slot left behind when a block re-entered the window).
        let mut table = self.table;
        for e in &self.window {
            table.set(e.block, e.time, e.ref_id);
        }
        let mut finals = Vec::with_capacity(table.distinct_blocks() as usize);
        table.for_each(|b, ent| finals.push((b, ent.time, ent.ref_id)));
        Ok(WorkerResult {
            per_sink: self.per_sink,
            unknowns: self.unknowns,
            finals,
            // `clock` started at the boundary access count and ticked
            // once per decoded access, so it ends at the global count.
            accesses: self.clock,
        })
    }
}

impl TraceSink for PartitionWorker<'_> {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        if self.error.is_some() {
            return;
        }
        self.events_seen += 1;
        self.access_block(r.0, addr >> self.block_shift);
        self.check_budget();
    }

    fn access_batch(&mut self, batch: &[AccessRecord]) {
        if self.error.is_some() {
            return;
        }
        self.events_seen += batch.len() as u64;
        for a in batch {
            self.access_block(a.r.0, a.addr >> self.block_shift);
        }
        self.check_budget();
    }

    fn access_soa(&mut self, batch: &SoaBatch) {
        if self.error.is_some() {
            return;
        }
        self.events_seen += batch.len() as u64;
        for (&r, &addr) in batch.refs.iter().zip(&batch.addrs) {
            self.access_block(r, addr >> self.block_shift);
        }
        self.check_budget();
    }

    fn enter(&mut self, scope: ScopeId) {
        if self.error.is_some() {
            return;
        }
        self.events_seen += 1;
        self.stack.enter(scope, self.clock);
        self.check_budget();
    }

    fn exit(&mut self, scope: ScopeId) {
        if self.error.is_some() {
            return;
        }
        self.events_seen += 1;
        self.stack.exit(scope);
        // Exiting below the seeded depth permanently retires boundary
        // scopes as carrier candidates for later unknowns.
        self.live_seed = self.live_seed.min(self.stack.depth() - 1);
        self.check_budget();
    }
}

/// The carrier of a cross-partition reuse whose previous access happened
/// at global clock `t_prev`: the topmost scope among the root and the
/// boundary scopes still live at the unknown access that was entered
/// strictly before `t_prev`. (Locally entered scopes are never
/// candidates: their entry clocks are at or after the boundary, hence
/// never before `t_prev`.)
fn stitch_carrier(seed: &[(ScopeId, u64)], live_seed: usize, t_prev: u64) -> ScopeId {
    let live = &seed[..live_seed.min(seed.len())];
    let idx = live.partition_point(|&(_, clock)| clock < t_prev);
    if idx == 0 {
        ScopeId::ROOT
    } else {
        live[idx - 1].0
    }
}

/// Replays one grain across `parts` time partitions and stitches the
/// result, bit-identical to serial replay. `sampling` must be
/// [`SamplingConfig::Exact`] or fixed-rate (the caller routes adaptive
/// configurations to the serial engine). Returns the profile plus the
/// final tracked-block count (the quantity the serial path reports as
/// its tree size).
///
/// # Errors
///
/// Returns [`GrainError::Budget`] when a budget cap is crossed, either
/// inside a worker (conservative local check) or by the exact
/// post-stitch check. Worker panics (e.g. decoding a corrupted segment)
/// propagate and are caught by the caller's panic isolation.
pub(crate) fn replay_partitioned(
    program: &Program,
    buffer: &TraceBuffer,
    block_size: u64,
    parts: usize,
    sampling: SamplingConfig,
    budget: &AnalysisBudget,
) -> Result<(ReuseProfile, u64), GrainError> {
    assert!(
        block_size.is_power_of_two(),
        "block size must be a power of two"
    );
    let inv = match sampling {
        SamplingConfig::Exact => 1,
        SamplingConfig::Fixed { inv } => inv.max(1),
        SamplingConfig::Adaptive { .. } => {
            unreachable!("adaptive sampling is not partitionable; caller must route serially")
        }
    };
    let block_shift = block_size.trailing_zeros();
    let ref_scopes: Vec<ScopeId> = program.references().iter().map(|r| r.scope()).collect();
    let states = buffer.segment_states(parts);
    let total_events = buffer.events();
    obs::add(obs::Counter::PartitionsSpawned, states.len() as u64);

    let outcomes: Vec<Result<WorkerResult, GrainError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..states.len())
            .map(|k| {
                let from = &states[k];
                let to = states.get(k + 1).map_or(total_events, |next| next.event);
                let ref_scopes = &ref_scopes;
                s.spawn(move || {
                    let mut span = obs::span_with(obs::Stage::Partition, || obs::TimelineArgs {
                        grain: Some(block_size),
                        events: Some(to - from.event),
                        ..obs::TimelineArgs::default()
                    });
                    let mut worker = PartitionWorker::new(
                        program,
                        block_shift,
                        inv,
                        from.accesses,
                        &from.scopes,
                        from.event,
                        budget,
                        ref_scopes,
                    );
                    buffer.replay_segment(from, to, &mut worker);
                    span.record(|args| {
                        args.distinct_blocks = Some(worker.local_distinct);
                    });
                    worker.into_result()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // Re-raise into the caller's catch_unwind so a corrupted
                // segment degrades exactly like a serial decode panic.
                Err(payload) => panic::resume_unwind(payload),
            })
            .collect()
    });

    // ---- Stitch, left to right. ----
    let nrefs = program.references().len();
    let mut per_sink: Vec<SinkPatterns> = (0..nrefs).map(|_| SinkPatterns::default()).collect();
    let mut cold = vec![0u64; nrefs];
    let mut c_map: HashMap<u64, (u64, u32)> = HashMap::new();
    let mut c_tree = OrderStatTree::new();
    let mut est_distinct = 0u64;
    let mut blocks_sampled = 0u64;
    let mut total_accesses = 0u64;
    let mut stitched = 0u64;
    for (k, outcome) in outcomes.into_iter().enumerate() {
        let w = outcome?;
        total_accesses = total_accesses.max(w.accesses);
        let seed = &states[k].scopes;
        for (i, u) in w.unknowns.iter().enumerate() {
            match c_map.get(&u.block) {
                Some(&(prev_time, prev_ref)) => {
                    let (removed, count) = c_tree.remove_counting(prev_time);
                    debug_assert!(removed, "cumulative tree must hold every last-access time");
                    let distance = i as u64 + count;
                    let carrier = stitch_carrier(seed, u.live_seed, prev_time);
                    let source = ref_scopes[prev_ref as usize];
                    per_sink[u.r as usize].record_n(
                        source,
                        carrier,
                        distance.saturating_mul(inv),
                        inv,
                    );
                    stitched += 1;
                }
                None => {
                    cold[u.r as usize] += inv;
                    est_distinct += inv;
                    blocks_sampled += 1;
                }
            }
        }
        for &(block, time, ref_id) in &w.finals {
            // A hit's old time was already removed lazily above; a cold
            // block had none. Either way the new time is a fresh key.
            c_tree.insert(time);
            c_map.insert(block, (time, ref_id));
        }
        for (sink, patterns) in w.per_sink.into_iter().enumerate() {
            for (source, carrier, histogram) in patterns.entries {
                per_sink[sink].merge(source, carrier, &histogram);
            }
        }
    }
    obs::add(obs::Counter::PartitionStitch, stitched);
    obs::emit(obs::EventKind::PartitionStitched {
        grain: block_size,
        partitions: states.len() as u64,
        resolved: stitched,
    });

    let tracked = c_map.len() as u64;
    if !budget.is_unlimited() {
        budget
            .check(BudgetProgress {
                events: total_events,
                distinct_blocks: tracked,
                tree_nodes: tracked,
            })
            .map_err(GrainError::Budget)?;
    }

    let mut patterns = Vec::new();
    for (sink_idx, sp) in per_sink.into_iter().enumerate() {
        for (source_scope, carrier, histogram) in sp.entries {
            patterns.push(ReusePattern {
                key: PatternKey {
                    sink: RefId(sink_idx as u32),
                    source_scope,
                    carrier,
                },
                histogram,
            });
        }
    }
    patterns.sort_by_key(|p| p.key);
    let sampling_info = match sampling {
        SamplingConfig::Exact => None,
        _ => Some(SamplingInfo {
            inv,
            blocks_sampled,
            blocks_evicted: 0,
            rate_drops: 0,
        }),
    };
    Ok((
        ReuseProfile {
            block_size,
            patterns,
            cold,
            total_accesses,
            distinct_blocks: est_distinct,
            sampling: sampling_info,
        },
        tracked,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_threads_resolution() {
        assert_eq!(ReplayThreads::Serial.resolve(), 1);
        assert_eq!(ReplayThreads::Fixed(0).resolve(), 1);
        assert_eq!(ReplayThreads::Fixed(8).resolve(), 8);
        assert!(ReplayThreads::Auto.resolve() >= 1);
        assert_eq!(ReplayThreads::default(), ReplayThreads::Serial);
    }

    #[test]
    fn stitch_carrier_respects_live_prefix_and_clocks() {
        let seed = [(ScopeId(4), 0), (ScopeId(7), 3), (ScopeId(9), 8)];
        // Previous access at t=1: only scope 4 (entered at 0) predates it.
        assert_eq!(stitch_carrier(&seed, 3, 1), ScopeId(4));
        // t=5: scope 7 entered at 3 is the topmost predating scope.
        assert_eq!(stitch_carrier(&seed, 3, 5), ScopeId(7));
        assert_eq!(stitch_carrier(&seed, 3, 9), ScopeId(9));
        // Scope 9 no longer live at the unknown: falls back to scope 7.
        assert_eq!(stitch_carrier(&seed, 2, 9), ScopeId(7));
        // Nothing live predates t_prev=0 ... impossible for real clocks,
        // but the root backstop keeps the search total.
        assert_eq!(stitch_carrier(&seed, 0, 1), ScopeId::ROOT);
    }
}
