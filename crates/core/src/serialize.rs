//! Plain-text persistence for reuse profiles.
//!
//! The paper's modeling workflow is *train then predict*: collect reuse
//! distance on a few small inputs, fit the scaling model, predict larger
//! ones. That requires profiles to outlive a process. The format here is a
//! line-oriented text file (no external serialization dependency), lossless
//! at histogram-bin granularity, and versioned.
//!
//! ```text
//! reuselens-profiles v1
//! name <program name>
//! size <problem size the run used>
//! profile <block_size> <total_accesses> <distinct_blocks>
//! sampling <inv> <blocks_sampled> <blocks_evicted> <rate_drops>
//! cold <c0> <c1> ...
//! pattern <sink> <source_scope> <carrier> <lo:count> <lo:count> ...
//! ...
//! end
//! ```
//!
//! The `sampling` line appears only for profiles measured by the sampled
//! analyzer; exact profiles serialize exactly as they did before sampling
//! existed, so old files still read back bit-identically.

use crate::histogram::Histogram;
use crate::patterns::{PatternKey, ReusePattern, ReuseProfile};
use crate::sampling::SamplingInfo;
use reuselens_ir::{RefId, ScopeId};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// A saved set of profiles: one program run measured at several
/// granularities, tagged with the problem size for scaling models.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedProfiles {
    /// The program name the run came from.
    pub name: String,
    /// The problem size (mesh extent, particles per cell, ...) — the
    /// x-coordinate for [`ProfileModel::fit`](../reuselens_model/struct.ProfileModel.html).
    pub size: f64,
    /// One profile per measured block size.
    pub profiles: Vec<ReuseProfile>,
}

impl SavedProfiles {
    /// The profile measured at a given block size.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }
}

/// Error from [`read_profiles`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The text did not parse; the message names the offending line.
    Parse(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading profile: {e}"),
            ReadError::Parse(msg) => write!(f, "malformed profile: {msg}"),
        }
    }
}

impl Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Writes saved profiles in the versioned text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_profiles<W: Write>(saved: &SavedProfiles, mut w: W) -> io::Result<()> {
    writeln!(w, "reuselens-profiles v1")?;
    writeln!(w, "name {}", saved.name)?;
    writeln!(w, "size {}", saved.size)?;
    for p in &saved.profiles {
        writeln!(
            w,
            "profile {} {} {}",
            p.block_size, p.total_accesses, p.distinct_blocks
        )?;
        if let Some(s) = &p.sampling {
            writeln!(
                w,
                "sampling {} {} {} {}",
                s.inv, s.blocks_sampled, s.blocks_evicted, s.rate_drops
            )?;
        }
        write!(w, "cold")?;
        for c in &p.cold {
            write!(w, " {c}")?;
        }
        writeln!(w)?;
        for pat in &p.patterns {
            write!(
                w,
                "pattern {} {} {}",
                pat.key.sink.0, pat.key.source_scope.0, pat.key.carrier.0
            )?;
            for (lo, _hi, count) in pat.histogram.iter() {
                write!(w, " {lo}:{count}")?;
            }
            writeln!(w)?;
        }
    }
    writeln!(w, "end")
}

/// Reads saved profiles written by [`write_profiles`].
///
/// # Errors
///
/// Returns [`ReadError::Parse`] on malformed input, [`ReadError::Io`] on
/// reader failure.
pub fn read_profiles<R: BufRead>(r: R) -> Result<SavedProfiles, ReadError> {
    let mut lines = r.lines();
    let mut next = || -> Result<Option<String>, ReadError> {
        match lines.next() {
            None => Ok(None),
            Some(l) => Ok(Some(l?)),
        }
    };
    let header = next()?.ok_or_else(|| ReadError::Parse("empty file".into()))?;
    if header.trim() != "reuselens-profiles v1" {
        return Err(ReadError::Parse(format!("bad header '{header}'")));
    }
    let name_line = next()?.ok_or_else(|| ReadError::Parse("missing name".into()))?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or_else(|| ReadError::Parse(format!("expected 'name', got '{name_line}'")))?
        .to_string();
    let size_line = next()?.ok_or_else(|| ReadError::Parse("missing size".into()))?;
    let size: f64 = size_line
        .strip_prefix("size ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ReadError::Parse(format!("bad size line '{size_line}'")))?;

    let mut profiles = Vec::new();
    let mut current: Option<ReuseProfile> = None;
    loop {
        let Some(line) = next()? else {
            return Err(ReadError::Parse("missing 'end'".into()));
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            if let Some(p) = current.take() {
                profiles.push(p);
            }
            break;
        }
        if let Some(rest) = line.strip_prefix("profile ") {
            if let Some(p) = current.take() {
                profiles.push(p);
            }
            let mut it = rest.split_ascii_whitespace();
            let block_size = parse_field(&mut it, "block_size")?;
            let total_accesses = parse_field(&mut it, "total_accesses")?;
            let distinct_blocks = parse_field(&mut it, "distinct_blocks")?;
            current = Some(ReuseProfile {
                block_size,
                patterns: Vec::new(),
                cold: Vec::new(),
                total_accesses,
                distinct_blocks,
                sampling: None,
            });
        } else if let Some(rest) = line.strip_prefix("sampling ") {
            let p = current
                .as_mut()
                .ok_or_else(|| ReadError::Parse("'sampling' before 'profile'".into()))?;
            let mut it = rest.split_ascii_whitespace();
            p.sampling = Some(SamplingInfo {
                inv: parse_field(&mut it, "inv")?,
                blocks_sampled: parse_field(&mut it, "blocks_sampled")?,
                blocks_evicted: parse_field(&mut it, "blocks_evicted")?,
                rate_drops: parse_field(&mut it, "rate_drops")?,
            });
        } else if let Some(rest) = line.strip_prefix("cold") {
            let p = current
                .as_mut()
                .ok_or_else(|| ReadError::Parse("'cold' before 'profile'".into()))?;
            p.cold = rest
                .split_ascii_whitespace()
                .map(|t| {
                    t.parse::<u64>()
                        .map_err(|_| ReadError::Parse(format!("bad cold count '{t}'")))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(rest) = line.strip_prefix("pattern ") {
            let p = current
                .as_mut()
                .ok_or_else(|| ReadError::Parse("'pattern' before 'profile'".into()))?;
            let mut it = rest.split_ascii_whitespace();
            let sink: u32 = parse_field(&mut it, "sink")?;
            let source: u32 = parse_field(&mut it, "source")?;
            let carrier: u32 = parse_field(&mut it, "carrier")?;
            let mut histogram = Histogram::new();
            for tok in it {
                let (lo, count) = tok
                    .split_once(':')
                    .ok_or_else(|| ReadError::Parse(format!("bad bin '{tok}'")))?;
                let lo: u64 = lo
                    .parse()
                    .map_err(|_| ReadError::Parse(format!("bad bin distance '{tok}'")))?;
                let count: u64 = count
                    .parse()
                    .map_err(|_| ReadError::Parse(format!("bad bin count '{tok}'")))?;
                histogram.add_n(lo, count);
            }
            p.patterns.push(ReusePattern {
                key: PatternKey {
                    sink: RefId(sink),
                    source_scope: ScopeId(source),
                    carrier: ScopeId(carrier),
                },
                histogram,
            });
        } else {
            return Err(ReadError::Parse(format!("unrecognized line '{line}'")));
        }
    }
    Ok(SavedProfiles {
        name,
        size,
        profiles,
    })
}

fn parse_field<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, ReadError> {
    it.next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ReadError::Parse(format!("missing or bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_program;
    use reuselens_prng::SplitMix64;
    use reuselens_ir::{Expr, ProgramBuilder};

    fn sample() -> SavedProfiles {
        let mut p = ProgramBuilder::new("roundtrip");
        let ix = p.index_array("ix", &[64]);
        let a = p.array("a", 8, &[4096]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 63, |r, i| {
                    r.load(a, vec![Expr::load(ix, vec![i.into()])]);
                });
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..64).map(|k| (k * 61) % 4096).collect();
        let analysis = analyze_program(&prog, &[64, 4096], vec![(ix, idx)]).unwrap();
        SavedProfiles {
            name: prog.name().to_string(),
            size: 64.0,
            profiles: analysis.profiles,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let saved = sample();
        let mut buf = Vec::new();
        write_profiles(&saved, &mut buf).unwrap();
        let loaded = read_profiles(buf.as_slice()).unwrap();
        assert_eq!(saved, loaded);
        assert!(loaded.profile_at(64).is_some());
        assert!(loaded.profile_at(4096).is_some());
        assert!(loaded.profile_at(128).is_none());
    }

    /// A sampled profile round-trips with its `sampling` line, and the
    /// line never appears for exact profiles (old readers stay happy).
    #[test]
    fn sampled_profiles_round_trip() {
        let mut saved = sample();
        saved.profiles[0].sampling = Some(SamplingInfo {
            inv: 128,
            blocks_sampled: 7,
            blocks_evicted: 3,
            rate_drops: 2,
        });
        let mut buf = Vec::new();
        write_profiles(&saved, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.matches("sampling ").count(), 1);
        let loaded = read_profiles(buf.as_slice()).unwrap();
        assert_eq!(saved, loaded);
        assert!(loaded.profiles[1].sampling.is_none());
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            read_profiles("".as_bytes()),
            Err(ReadError::Parse(_))
        ));
        assert!(matches!(
            read_profiles("not a profile\n".as_bytes()),
            Err(ReadError::Parse(_))
        ));
        let missing_end = "reuselens-profiles v1\nname x\nsize 1\nprofile 64 0 0\ncold\n";
        assert!(matches!(
            read_profiles(missing_end.as_bytes()),
            Err(ReadError::Parse(_))
        ));
        let bad_bin =
            "reuselens-profiles v1\nname x\nsize 1\nprofile 64 0 0\ncold\npattern 0 0 0 zz\nend\n";
        assert!(matches!(
            read_profiles(bad_bin.as_bytes()),
            Err(ReadError::Parse(_))
        ));
    }

    /// Histograms round-trip exactly because serialized bin lows fall
    /// back into the same bins (seeded randomized check).
    #[test]
    fn histogram_bins_round_trip() {
        let mut rng = SplitMix64::seed_from_u64(0x5e71_a112e);
        for _case in 0..128 {
            let ds = rng.vec_u64(0..100, 0..1 << 30);
            let h: Histogram = ds.iter().copied().collect();
            let mut rebuilt = Histogram::new();
            for (lo, _hi, c) in h.iter() {
                rebuilt.add_n(lo, c);
            }
            assert_eq!(h, rebuilt);
        }
    }
}
