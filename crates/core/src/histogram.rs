//! Reuse-distance histograms with logarithmic binning.
//!
//! The paper keeps *many small histograms* — one per reuse pattern — instead
//! of few large ones. Distances below [`LINEAR_LIMIT`] get exact unit bins;
//! larger distances share power-of-two octaves split into
//! [`SUBBINS_PER_OCTAVE`] linear sub-bins, so space per histogram is bounded
//! regardless of the program's footprint while relative error stays under
//! `1/SUBBINS_PER_OCTAVE`.

use std::fmt;

/// Distances below this are binned exactly.
const LINEAR_LIMIT: u64 = 256;
/// Sub-bins per power-of-two octave above the linear range.
const SUBBINS_PER_OCTAVE: u64 = 16;

/// Maps a distance to its bin index.
fn bin_of(distance: u64) -> u32 {
    if distance < LINEAR_LIMIT {
        return distance as u32;
    }
    let octave = 63 - distance.leading_zeros() as u64; // floor(log2 d), >= 8
    let lo = 1u64 << octave;
    let sub = (distance - lo) * SUBBINS_PER_OCTAVE / lo;
    (LINEAR_LIMIT + (octave - LINEAR_LIMIT.trailing_zeros() as u64) * SUBBINS_PER_OCTAVE + sub)
        as u32
}

/// Returns the `[low, high)` distance range covered by a bin.
fn range_of(bin: u32) -> (u64, u64) {
    let bin = bin as u64;
    if bin < LINEAR_LIMIT {
        return (bin, bin + 1);
    }
    let rel = bin - LINEAR_LIMIT;
    let octave = rel / SUBBINS_PER_OCTAVE + LINEAR_LIMIT.trailing_zeros() as u64;
    let sub = rel % SUBBINS_PER_OCTAVE;
    let lo = 1u64 << octave;
    let width = lo / SUBBINS_PER_OCTAVE;
    (lo + sub * width, lo + (sub + 1) * width)
}

/// A histogram of memory-reuse distances.
///
/// # Examples
///
/// ```
/// use reuselens_core::Histogram;
///
/// let mut h = Histogram::new();
/// h.add(3);
/// h.add(3);
/// h.add(100_000);
/// assert_eq!(h.total(), 3);
/// // Everything at distance >= 1024 would miss in a 1024-block cache:
/// assert_eq!(h.count_ge(1024), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Occupied bins, sorted by bin index. Patterns occupy a handful of
    /// bins, so a sorted vector beats a tree map and keeps iteration a
    /// linear scan over one allocation.
    bins: Vec<(u32, u64)>,
    total: u64,
    /// Index of the last bin touched by [`add_n`](Self::add_n) — a pure
    /// hint for the hot path (real access streams record long runs of
    /// identical distances). Never consulted without re-checking the bin
    /// id, and deliberately excluded from equality.
    hot: u32,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Histogram) -> bool {
        self.bins == other.bins && self.total == other.total
    }
}

impl Eq for Histogram {}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one reuse at the given distance (number of distinct blocks
    /// accessed between the pair of accesses).
    pub fn add(&mut self, distance: u64) {
        self.add_n(distance, 1);
    }

    /// Records `count` reuses at the same distance.
    #[inline]
    pub fn add_n(&mut self, distance: u64, count: u64) {
        if count == 0 {
            return;
        }
        let bin = bin_of(distance);
        self.total += count;
        // Hot path: consecutive accesses overwhelmingly land in the same
        // bin (unit-stride sweeps hit distance 0 seven times out of
        // eight), so one equality check replaces the search.
        if let Some(e) = self.bins.get_mut(self.hot as usize) {
            if e.0 == bin {
                e.1 += count;
                return;
            }
        }
        match self.bins.binary_search_by_key(&bin, |e| e.0) {
            Ok(i) => {
                self.bins[i].1 += count;
                self.hot = i as u32;
            }
            Err(i) => {
                self.bins.insert(i, (bin, count));
                self.hot = i as u32;
            }
        }
    }

    /// Total recorded reuses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of occupied bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Iterates `(low, high, count)` over occupied bins in increasing
    /// distance order; each bin covers distances in `[low, high)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.bins.iter().map(|&(b, c)| {
            let (lo, hi) = range_of(b);
            (lo, hi, c)
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for &(b, c) in &other.bins {
            match self.bins.binary_search_by_key(&b, |e| e.0) {
                Ok(i) => self.bins[i].1 += c,
                Err(i) => self.bins.insert(i, (b, c)),
            }
        }
        self.total += other.total;
    }

    /// Number of reuses with distance `>= threshold`, interpolating linearly
    /// inside the bin that straddles the threshold. This is the
    /// fully-associative-LRU miss count for a cache of `threshold` blocks.
    pub fn count_ge(&self, threshold: u64) -> f64 {
        let mut count = 0.0;
        for (lo, hi, c) in self.iter() {
            if lo >= threshold {
                count += c as f64;
            } else if hi > threshold {
                // straddling bin: assume uniform distribution inside it
                let frac = (hi - threshold) as f64 / (hi - lo) as f64;
                count += c as f64 * frac;
            }
        }
        count
    }

    /// Expected miss count for this histogram under an arbitrary
    /// distance-to-miss-probability function (used by the set-associative
    /// model). `miss_prob` receives a representative distance per bin.
    pub fn expected_misses(&self, mut miss_prob: impl FnMut(u64) -> f64) -> f64 {
        self.iter()
            .map(|(lo, hi, c)| {
                let mid = lo + (hi - lo) / 2;
                c as f64 * miss_prob(mid)
            })
            .sum()
    }

    /// Mean reuse distance (bin midpoints weighted by counts); `None` when
    /// empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self
            .iter()
            .map(|(lo, hi, c)| (lo + (hi - lo) / 2) as f64 * c as f64)
            .sum();
        Some(sum / self.total as f64)
    }

    /// The distance below which fraction `q` of reuses fall
    /// (`0.0 <= q <= 1.0`); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut seen = 0.0;
        let mut last = 0;
        for (lo, hi, c) in self.iter() {
            seen += c as f64;
            last = hi - 1;
            if seen >= target {
                return Some(lo + (hi - 1 - lo) / 2);
            }
        }
        Some(last)
    }

    /// Splits the histogram mass into `n` equal-count slices and returns a
    /// representative distance per slice (used by the cross-input scaling
    /// model). Empty histograms give an empty vector.
    pub fn quantile_slices(&self, n: usize) -> Vec<f64> {
        if self.total == 0 || n == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let q = (k as f64 + 0.5) / n as f64;
            out.push(self.quantile(q).unwrap_or(0) as f64);
        }
        out
    }

    /// Largest recorded distance (upper bound of the top bin), or `None`.
    pub fn max_distance(&self) -> Option<u64> {
        self.bins.last().map(|&(b, _)| range_of(b).1 - 1)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist[n={}", self.total)?;
        for (lo, hi, c) in self.iter() {
            write!(f, " {lo}..{hi}:{c}")?;
        }
        write!(f, "]")
    }
}

impl<'a> Extend<&'a u64> for Histogram {
    fn extend<T: IntoIterator<Item = &'a u64>>(&mut self, iter: T) {
        for &d in iter {
            self.add(d);
        }
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for d in iter {
            self.add(d);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Histogram {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;

    #[test]
    fn small_distances_are_exact() {
        for d in 0..LINEAR_LIMIT {
            let b = bin_of(d);
            assert_eq!(range_of(b), (d, d + 1));
        }
    }

    #[test]
    fn bins_tile_the_line() {
        // Consecutive bins cover adjacent, non-overlapping ranges.
        let mut prev_hi = 0;
        let mut b = 0;
        while prev_hi < 1 << 24 {
            let (lo, hi) = range_of(b);
            assert_eq!(lo, prev_hi, "gap before bin {b}");
            assert!(hi > lo);
            prev_hi = hi;
            b += 1;
        }
    }

    /// Seeded randomized checks replacing the former property tests.
    #[test]
    fn bin_of_is_consistent_with_range() {
        let mut rng = SplitMix64::seed_from_u64(0x4151);
        for _ in 0..4096 {
            let d = rng.gen_range(0..1 << 40);
            let (lo, hi) = range_of(bin_of(d));
            assert!(lo <= d && d < hi, "d={d} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn relative_bin_width_is_bounded() {
        let mut rng = SplitMix64::seed_from_u64(0x4152);
        for _ in 0..4096 {
            let d = rng.gen_range(LINEAR_LIMIT..1 << 40);
            let (lo, hi) = range_of(bin_of(d));
            assert!(((hi - lo) as f64) <= lo as f64 / SUBBINS_PER_OCTAVE as f64 + 1.0);
        }
    }

    #[test]
    fn count_ge_matches_naive_within_bin_error() {
        let mut rng = SplitMix64::seed_from_u64(0x4153);
        for _case in 0..64 {
            let mut ds = rng.vec_u64(1..200, 0..100_000);
            let thr = rng.gen_range(0..100_000);
            let h: Histogram = ds.iter().copied().collect();
            ds.sort_unstable();
            let naive = ds.iter().filter(|&&d| d >= thr).count() as f64;
            let approx = h.count_ge(thr);
            // error bounded by the count in the straddling bin
            let (lo, hi) = range_of(bin_of(thr.min(99_999)));
            let straddle = ds.iter().filter(|&&d| d >= lo && d < hi).count() as f64;
            assert!((approx - naive).abs() <= straddle + 1e-9);
        }
    }

    #[test]
    fn merge_preserves_totals() {
        let mut rng = SplitMix64::seed_from_u64(0x4154);
        for _case in 0..64 {
            let a = rng.vec_u64(0..100, 0..1_000_000);
            let b = rng.vec_u64(0..100, 0..1_000_000);
            let ha: Histogram = a.iter().copied().collect();
            let hb: Histogram = b.iter().copied().collect();
            let mut merged = ha.clone();
            merged.merge(&hb);
            assert_eq!(merged.total(), ha.total() + hb.total());
            let all: Histogram = a.iter().chain(b.iter()).copied().collect();
            assert_eq!(merged, all);
        }
    }

    #[test]
    fn count_ge_interpolates_inside_bin() {
        let mut h = Histogram::new();
        // 16 values in one bin [4096, 4352): put them all at 4096
        for _ in 0..16 {
            h.add(4096);
        }
        let (lo, hi) = range_of(bin_of(4096));
        let mid = lo + (hi - lo) / 2;
        let c = h.count_ge(mid);
        assert!((c - 8.0).abs() < 1.0, "expected ~8, got {c}");
    }

    #[test]
    fn mean_and_quantiles() {
        let h: Histogram = [10u64, 20, 30, 40].into_iter().collect();
        assert!((h.mean().unwrap() - 25.0).abs() < 1.0);
        assert_eq!(h.quantile(0.0), Some(10));
        assert!(h.quantile(1.0).unwrap() >= 40);
        assert!(Histogram::new().mean().is_none());
        assert!(Histogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn quantile_slices_cover_distribution() {
        let h: Histogram = (0..1000u64).collect();
        let slices = h.quantile_slices(4);
        assert_eq!(slices.len(), 4);
        assert!(slices.windows(2).all(|w| w[0] <= w[1]));
        assert!(slices[0] < 300.0 && slices[3] > 700.0);
    }

    #[test]
    fn display_lists_bins() {
        let h: Histogram = [1u64, 1, 2].into_iter().collect();
        assert_eq!(h.to_string(), "hist[n=3 1..2:2 2..3:1]");
    }

    /// The batched path must be indistinguishable from the unit path:
    /// `add_n(d, n)` and `n` repeated `add(d)` calls interleaved in any
    /// order produce bit-identical bins and totals. The sampled analyzer
    /// and the static estimator both lean on this equivalence.
    #[test]
    fn add_n_is_bit_identical_to_repeated_add() {
        let mut rng = SplitMix64::seed_from_u64(0x4155);
        for _case in 0..64 {
            let mut batched = Histogram::new();
            let mut unit = Histogram::new();
            let ops = rng.gen_range(1..40);
            for _ in 0..ops {
                let d = rng.gen_range(0..1 << 34);
                let n = rng.gen_range(0..9); // include n == 0
                batched.add_n(d, n);
                for _ in 0..n {
                    unit.add(d);
                }
            }
            assert_eq!(batched, unit);
            assert_eq!(batched.total(), unit.total());
            assert_eq!(batched.bin_count(), unit.bin_count());
            assert!(batched.iter().eq(unit.iter()), "bin contents diverged");
            // The equivalence must survive the hot-bin fast path: replay
            // the same distances in sorted order (long same-bin runs).
            let mut sorted_b = Histogram::new();
            let mut sorted_u = Histogram::new();
            let mut ds: Vec<(u64, u64)> = Vec::new();
            for _ in 0..ops {
                ds.push((rng.gen_range(0..4096), rng.gen_range(1..5)));
            }
            ds.sort_unstable();
            for &(d, n) in &ds {
                sorted_b.add_n(d, n);
                for _ in 0..n {
                    sorted_u.add(d);
                }
            }
            assert_eq!(sorted_b, sorted_u);
        }
    }

    #[test]
    fn expected_misses_applies_probability() {
        let h: Histogram = [100u64; 10].into_iter().collect();
        let m = h.expected_misses(|_| 0.25);
        assert!((m - 2.5).abs() < 1e-9);
    }
}
