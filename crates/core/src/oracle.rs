//! Brute-force reference implementations used to validate the analyzer.
//!
//! These are `O(N·M)` and exist so that property tests can compare the
//! tree-based analyzer against an obviously correct implementation of
//! LRU stack distance.

/// Computes the reuse distance of every access in an address trace at the
/// given block size: `None` for first touches (cold), otherwise the number
/// of distinct blocks accessed since the previous access to the same block.
///
/// # Examples
///
/// ```
/// use reuselens_core::oracle::stack_distances;
///
/// // blocks: A B A  (block size 64)
/// let d = stack_distances(&[0, 64, 0], 64);
/// assert_eq!(d, vec![None, None, Some(1)]);
/// ```
pub fn stack_distances(addresses: &[u64], block_size: u64) -> Vec<Option<u64>> {
    assert!(block_size.is_power_of_two());
    let shift = block_size.trailing_zeros();
    // LRU stack of blocks, most recent first.
    let mut stack: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(addresses.len());
    for &addr in addresses {
        let block = addr >> shift;
        match stack.iter().position(|&b| b == block) {
            Some(pos) => {
                out.push(Some(pos as u64));
                stack.remove(pos);
                stack.insert(0, block);
            }
            None => {
                out.push(None);
                stack.insert(0, block);
            }
        }
    }
    out
}

/// Simulates a fully associative LRU cache of `capacity_blocks` blocks over
/// an address trace, returning the number of misses (cold included).
pub fn fully_associative_misses(addresses: &[u64], block_size: u64, capacity_blocks: usize) -> u64 {
    stack_distances(addresses, block_size)
        .into_iter()
        .filter(|d| match d {
            None => true,
            Some(d) => *d as usize >= capacity_blocks,
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_count_distinct_intervening_blocks() {
        // blocks: A B C B A
        let addrs = [0u64, 64, 128, 64, 0];
        let d = stack_distances(&addrs, 64);
        assert_eq!(
            d,
            vec![None, None, None, Some(1), Some(2)]
        );
    }

    #[test]
    fn repeated_block_is_distance_zero() {
        let d = stack_distances(&[8, 16, 24], 64);
        assert_eq!(d, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn fa_misses_equal_distance_threshold() {
        // A B A with capacity 1: second A misses (distance 1 >= 1).
        assert_eq!(fully_associative_misses(&[0, 64, 0], 64, 1), 3);
        // capacity 2: second A hits.
        assert_eq!(fully_associative_misses(&[0, 64, 0], 64, 2), 2);
    }
}
