//! Order-statistic balanced tree over last-access timestamps.
//!
//! This is the paper's "balanced binary tree with a node for each memory
//! block referenced by the program", keyed by the logical time of the
//! block's last access. On every access the analyzer asks *how many
//! distinct blocks were accessed after time t* — [`OrderStatTree::count_greater`]
//! answers in `O(log M)` — then moves the touched block's node to the
//! current time.
//!
//! The implementation is an arena-allocated AVL tree with subtree sizes;
//! freed nodes are recycled so long executions do not grow the arena past
//! the footprint's block count.

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    left: u32,
    right: u32,
    size: u32,
    height: u8,
}

/// A set of unique `u64` keys supporting `O(log n)` insert, remove, and
/// count-greater queries.
///
/// # Examples
///
/// ```
/// use reuselens_core::OrderStatTree;
///
/// let mut t = OrderStatTree::new();
/// for k in [5u64, 1, 9, 3] {
///     t.insert(k);
/// }
/// assert_eq!(t.count_greater(3), 2); // 5 and 9
/// assert!(t.remove(5));
/// assert_eq!(t.count_greater(3), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OrderStatTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

impl OrderStatTree {
    /// Creates an empty tree.
    pub fn new() -> OrderStatTree {
        OrderStatTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Creates an empty tree with capacity for `n` keys.
    pub fn with_capacity(n: usize) -> OrderStatTree {
        OrderStatTree {
            nodes: Vec::with_capacity(n),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.size(self.root) as usize
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Inserts a key. Returns `false` (and changes nothing) if the key was
    /// already present.
    pub fn insert(&mut self, key: u64) -> bool {
        let (root, inserted) = self.insert_at(self.root, key);
        self.root = root;
        inserted
    }

    /// Removes a key. Returns `false` if it was absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        removed
    }

    /// Removes `old` and inserts `new` in one traversal. Returns whether
    /// `old` was present.
    ///
    /// This fuses the analyzer's per-access `remove(prev) + insert(now)`
    /// pair. The analyzer's `now` is always the new maximum key, so both
    /// root-to-leaf paths share the prefix of the right spine above `old`'s
    /// position — and when `old` *is* the current maximum (the previous
    /// access was the most recent one, the common case for spatial reuse
    /// inside a block), the node is re-keyed in place with no rotation, no
    /// free, and no allocation at all.
    ///
    /// The method is correct for arbitrary `old`/`new` (including
    /// `old == new` and an absent `old`); only the fast paths assume the
    /// analyzer's monotone-clock pattern.
    pub fn reinsert(&mut self, old: u64, new: u64) -> bool {
        let (root, removed) = self.reinsert_at(self.root, old, new);
        self.root = root;
        removed
    }

    fn reinsert_at(&mut self, n: u32, old: u64, new: u64) -> (u32, bool) {
        if n == NIL {
            // `old` is absent below an empty slot; just insert `new` here.
            return (self.alloc(new), false);
        }
        let nk = self.nodes[n as usize].key;
        if old > nk && new > nk {
            // Both paths continue into the right subtree: fused descent.
            let right = self.nodes[n as usize].right;
            let (child, removed) = self.reinsert_at(right, old, new);
            self.nodes[n as usize].right = child;
            return (self.rebalance(n), removed);
        }
        if old == nk {
            if new == old {
                // Remove-then-insert of the same present key is a no-op.
                return (n, true);
            }
            if new > nk && self.nodes[n as usize].right == NIL {
                // `old` is the subtree maximum (every ancestor on the fused
                // path was smaller): re-key in place.
                self.nodes[n as usize].key = new;
                return (n, true);
            }
        }
        // Paths diverge: finish the removal within this subtree, then
        // insert into the rebalanced result. Sequencing the two keeps the
        // AVL invariant (each step changes subtree heights by at most one).
        let (mid, removed) = self.remove_at(n, old);
        let (root, _) = self.insert_at(mid, new);
        (root, removed)
    }

    /// Removes `key` while counting, in the same descent, how many keys
    /// strictly greater than `key` the tree held *before* the removal.
    /// Returns `(was_present, count)`; `key` need not be present (the
    /// count is still exact, matching [`count_greater`](Self::count_greater)).
    ///
    /// The stitch phase of partitioned replay uses this to lazily retire a
    /// predecessor's last-access entry and read its rank in one traversal.
    pub fn remove_counting(&mut self, key: u64) -> (bool, u64) {
        let mut count = 0u64;
        let (root, removed) = self.remove_counting_at(self.root, key, &mut count);
        self.root = root;
        (removed, count)
    }

    fn remove_counting_at(&mut self, n: u32, key: u64, count: &mut u64) -> (u32, bool) {
        if n == NIL {
            return (NIL, false);
        }
        let (nk, left, right) = {
            let node = &self.nodes[n as usize];
            (node.key, node.left, node.right)
        };
        let removed;
        if key < nk {
            *count += self.size(right) as u64 + 1;
            let (child, rem) = self.remove_counting_at(left, key, count);
            self.nodes[n as usize].left = child;
            removed = rem;
        } else if key > nk {
            let (child, rem) = self.remove_counting_at(right, key, count);
            self.nodes[n as usize].right = child;
            removed = rem;
        } else {
            *count += self.size(right) as u64;
            self.free.push(n);
            if left == NIL {
                return (right, true);
            }
            if right == NIL {
                return (left, true);
            }
            let succ_key = self.min_key(right);
            let (new_right, _) = self.remove_at(right, succ_key);
            let replacement = self.alloc(succ_key);
            self.nodes[replacement as usize].left = left;
            self.nodes[replacement as usize].right = new_right;
            return (self.rebalance(replacement), true);
        }
        (self.rebalance(n), removed)
    }

    /// Fuses the analyzer's per-access triple — `count_greater(old)`,
    /// `remove(old)`, `insert(new)` — into a single operation. Returns
    /// `(old_was_present, count)` where `count` is the number of keys
    /// strictly greater than `old` in the tree *before* the operation
    /// (i.e. the reuse distance the unfused pair would have measured).
    ///
    /// When `new` is the running maximum — the analyzer's monotone-clock
    /// pattern — both the counting and the structural edit complete in one
    /// root-to-leaf descent: every key greater than `old` lives on the
    /// right-spine path shared by both keys, and when `old` is the subtree
    /// maximum the node is re-keyed in place with no rotation or
    /// allocation. Arbitrary `old`/`new` remain correct via the sequenced
    /// counting-removal + insert fallback.
    pub fn count_reinsert(&mut self, old: u64, new: u64) -> (bool, u64) {
        let mut count = 0u64;
        let (root, removed) = self.count_reinsert_at(self.root, old, new, &mut count);
        self.root = root;
        (removed, count)
    }

    fn count_reinsert_at(&mut self, n: u32, old: u64, new: u64, count: &mut u64) -> (u32, bool) {
        if n == NIL {
            // `old` is absent below an empty slot and no key here exceeds
            // it; just insert `new`.
            return (self.alloc(new), false);
        }
        let (nk, right) = {
            let node = &self.nodes[n as usize];
            (node.key, node.right)
        };
        if old > nk && new > nk {
            // Both paths continue right, and nothing in this node or its
            // left subtree exceeds `old`: fused descent.
            let (child, removed) = self.count_reinsert_at(right, old, new, count);
            self.nodes[n as usize].right = child;
            return (self.rebalance(n), removed);
        }
        if old == nk {
            if new == old {
                // Remove-then-insert of the same present key is a no-op.
                *count += self.size(right) as u64;
                return (n, true);
            }
            if new > old && right == NIL {
                // `old` is the subtree maximum: nothing exceeds it, and the
                // node can be re-keyed in place.
                self.nodes[n as usize].key = new;
                return (n, true);
            }
        }
        // Paths diverge: finish the removal (folding the count into its
        // descent), then insert into the rebalanced result.
        let (mid, removed) = self.remove_counting_at(n, old, count);
        let (root, _) = self.insert_at(mid, new);
        (root, removed)
    }

    /// Counts keys strictly greater than `key` (which need not be present).
    pub fn count_greater(&self, key: u64) -> u64 {
        let mut n = self.root;
        let mut count = 0u64;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if key < node.key {
                count += self.size(node.right) as u64 + 1;
                n = node.left;
            } else if key > node.key {
                n = node.right;
            } else {
                count += self.size(node.right) as u64;
                break;
            }
        }
        count
    }

    /// Visits every stored key in ascending order. This is the tree's
    /// snapshot surface: a rebuild from the visited sequence reproduces
    /// an equivalent tree (shape aside), so derived structure never needs
    /// to be serialized.
    pub fn for_each_key(&self, mut f: impl FnMut(u64)) {
        // Iterative in-order walk; the explicit stack holds one entry per
        // level of the AVL tree.
        let mut stack: Vec<u32> = Vec::new();
        let mut n = self.root;
        while n != NIL || !stack.is_empty() {
            while n != NIL {
                stack.push(n);
                n = self.nodes[n as usize].left;
            }
            let top = match stack.pop() {
                Some(top) => top,
                None => return,
            };
            let node = &self.nodes[top as usize];
            f(node.key);
            n = node.right;
        }
    }

    /// True when the key is present.
    pub fn contains(&self, key: u64) -> bool {
        let mut n = self.root;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if key < node.key {
                n = node.left;
            } else if key > node.key {
                n = node.right;
            } else {
                return true;
            }
        }
        false
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn height(&self, n: u32) -> i32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].height as i32
        }
    }

    fn alloc(&mut self, key: u64) -> u32 {
        let node = Node {
            key,
            left: NIL,
            right: NIL,
            size: 1,
            height: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn update(&mut self, n: u32) {
        let (l, r) = {
            let node = &self.nodes[n as usize];
            (node.left, node.right)
        };
        let size = 1 + self.size(l) + self.size(r);
        let height = 1 + self.height(l).max(self.height(r)) as u8;
        let node = &mut self.nodes[n as usize];
        node.size = size;
        node.height = height;
    }

    fn balance_factor(&self, n: u32) -> i32 {
        let node = &self.nodes[n as usize];
        self.height(node.left) - self.height(node.right)
    }

    fn rotate_right(&mut self, n: u32) -> u32 {
        let l = self.nodes[n as usize].left;
        let lr = self.nodes[l as usize].right;
        self.nodes[n as usize].left = lr;
        self.nodes[l as usize].right = n;
        self.update(n);
        self.update(l);
        l
    }

    fn rotate_left(&mut self, n: u32) -> u32 {
        let r = self.nodes[n as usize].right;
        let rl = self.nodes[r as usize].left;
        self.nodes[n as usize].right = rl;
        self.nodes[r as usize].left = n;
        self.update(n);
        self.update(r);
        r
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.update(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes[n as usize].left) < 0 {
                let new_left = self.rotate_left(self.nodes[n as usize].left);
                self.nodes[n as usize].left = new_left;
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[n as usize].right) > 0 {
                let new_right = self.rotate_right(self.nodes[n as usize].right);
                self.nodes[n as usize].right = new_right;
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn insert_at(&mut self, n: u32, key: u64) -> (u32, bool) {
        if n == NIL {
            return (self.alloc(key), true);
        }
        let nk = self.nodes[n as usize].key;
        let inserted = if key < nk {
            let (child, ins) = self.insert_at(self.nodes[n as usize].left, key);
            self.nodes[n as usize].left = child;
            ins
        } else if key > nk {
            let (child, ins) = self.insert_at(self.nodes[n as usize].right, key);
            self.nodes[n as usize].right = child;
            ins
        } else {
            return (n, false);
        };
        (self.rebalance(n), inserted)
    }

    fn remove_at(&mut self, n: u32, key: u64) -> (u32, bool) {
        if n == NIL {
            return (NIL, false);
        }
        let nk = self.nodes[n as usize].key;
        let removed;
        if key < nk {
            let (child, rem) = self.remove_at(self.nodes[n as usize].left, key);
            self.nodes[n as usize].left = child;
            removed = rem;
        } else if key > nk {
            let (child, rem) = self.remove_at(self.nodes[n as usize].right, key);
            self.nodes[n as usize].right = child;
            removed = rem;
        } else {
            let (left, right) = {
                let node = &self.nodes[n as usize];
                (node.left, node.right)
            };
            self.free.push(n);
            if left == NIL {
                return (right, true);
            }
            if right == NIL {
                return (left, true);
            }
            // Replace with successor (min of right subtree).
            let succ_key = self.min_key(right);
            let (new_right, _) = self.remove_at(right, succ_key);
            let replacement = self.alloc(succ_key);
            self.nodes[replacement as usize].left = left;
            self.nodes[replacement as usize].right = new_right;
            return (self.rebalance(replacement), true);
        }
        (self.rebalance(n), removed)
    }

    fn min_key(&self, mut n: u32) -> u64 {
        loop {
            let node = &self.nodes[n as usize];
            if node.left == NIL {
                return node.key;
            }
            n = node.left;
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn rec(t: &OrderStatTree, n: u32, lo: Option<u64>, hi: Option<u64>) -> (u32, i32) {
            if n == NIL {
                return (0, 0);
            }
            let node = &t.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.key > lo, "bst order violated");
            }
            if let Some(hi) = hi {
                assert!(node.key < hi, "bst order violated");
            }
            let (ls, lh) = rec(t, node.left, lo, Some(node.key));
            let (rs, rh) = rec(t, node.right, Some(node.key), hi);
            assert_eq!(node.size, 1 + ls + rs, "size invariant violated");
            assert_eq!(node.height as i32, 1 + lh.max(rh), "height invariant");
            assert!((lh - rh).abs() <= 1, "avl balance violated");
            (node.size, node.height as i32)
        }
        rec(self, self.root, None, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;
    use std::collections::BTreeSet;

    #[test]
    fn basic_insert_count_remove() {
        let mut t = OrderStatTree::new();
        assert!(t.is_empty());
        for k in [10u64, 5, 20, 1, 7] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(10));
        assert_eq!(t.len(), 5);
        assert_eq!(t.count_greater(0), 5);
        assert_eq!(t.count_greater(5), 3);
        assert_eq!(t.count_greater(6), 3); // absent key
        assert_eq!(t.count_greater(20), 0);
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_greater(1), 3);
        assert!(t.contains(7));
        assert!(!t.contains(5));
        t.check_invariants();
    }

    #[test]
    fn monotone_insert_then_random_removes() {
        // The analyzer's access pattern: keys inserted in increasing order,
        // removed in arbitrary order.
        let mut t = OrderStatTree::new();
        for k in 0..1000u64 {
            t.insert(k);
        }
        t.check_invariants();
        assert_eq!(t.count_greater(499), 500);
        let mut k = 0;
        while k < 1000 {
            assert!(t.remove(k));
            k += 3;
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000 - 334);
    }

    #[test]
    fn arena_recycles_freed_nodes() {
        let mut t = OrderStatTree::new();
        for round in 0..10u64 {
            for k in 0..100 {
                t.insert(round * 100 + k);
            }
            for k in 0..100 {
                t.remove(round * 100 + k);
            }
        }
        // Steady-state churn should not grow the arena without bound.
        assert!(t.nodes.len() <= 220, "arena grew to {}", t.nodes.len());
    }

    /// Randomized differential test against `BTreeSet` (seeded, offline).
    #[test]
    fn matches_btreeset_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x0517_ee01);
        for _case in 0..64 {
            let mut t = OrderStatTree::new();
            let mut set = BTreeSet::new();
            let nops = rng.gen_range(1..400);
            for _ in 0..nops {
                let key = rng.gen_range(0..500);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(t.insert(key), set.insert(key)),
                    1 => assert_eq!(t.remove(key), set.remove(&key)),
                    _ => {
                        let expected = set.range(key + 1..).count() as u64;
                        assert_eq!(t.count_greater(key), expected);
                    }
                }
                assert_eq!(t.len(), set.len());
            }
            t.check_invariants();
        }
    }

    #[test]
    fn reinsert_on_empty_tree_inserts_new() {
        let mut t = OrderStatTree::new();
        assert!(!t.reinsert(7, 9)); // old absent
        assert!(t.contains(9));
        assert!(!t.contains(7));
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn reinsert_single_node_rekeys_in_place() {
        let mut t = OrderStatTree::new();
        t.insert(5);
        let arena_before = t.nodes.len();
        assert!(t.reinsert(5, 8)); // old is the max: fast path
        assert!(t.contains(8) && !t.contains(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.nodes.len(), arena_before, "fast path must not allocate");
        t.check_invariants();
    }

    #[test]
    fn reinsert_key_collisions() {
        let mut t = OrderStatTree::new();
        t.insert(3);
        t.insert(5);
        // old == new, present: no-op, reports presence.
        assert!(t.reinsert(5, 5));
        assert_eq!(t.len(), 2);
        // old == new, absent: inserts.
        assert!(!t.reinsert(9, 9));
        assert!(t.contains(9));
        // new collides with an existing key: old removed, set unchanged
        // otherwise (mirrors remove(3); insert(9)).
        assert!(t.reinsert(3, 9));
        assert!(!t.contains(3) && t.contains(9));
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    /// `remove_counting` must agree with the unfused
    /// `count_greater` + `remove` pair on random key mixes (present and
    /// absent), against a `BTreeSet` reference.
    #[test]
    fn remove_counting_matches_unfused_pair() {
        let mut rng = SplitMix64::seed_from_u64(0x5eed_c0de);
        for _case in 0..64 {
            let mut t = OrderStatTree::new();
            let mut set = BTreeSet::new();
            for _ in 0..rng.gen_range(1..200) {
                let k = rng.gen_range(0..300);
                t.insert(k);
                set.insert(k);
            }
            for _ in 0..rng.gen_range(1..200) {
                let k = rng.gen_range(0..300);
                let expected_count = set.range(k + 1..).count() as u64;
                let expected_removed = set.remove(&k);
                let (removed, count) = t.remove_counting(k);
                assert_eq!(removed, expected_removed);
                assert_eq!(count, expected_count);
                assert_eq!(t.len(), set.len());
            }
            t.check_invariants();
        }
    }

    /// `count_reinsert` must agree with the unfused
    /// `count_greater(old)` + `reinsert(old, new)` sequence for arbitrary
    /// old/new pairs, including absent `old`, colliding `new`, and
    /// `old == new`.
    #[test]
    fn count_reinsert_matches_unfused_sequence() {
        let mut rng = SplitMix64::seed_from_u64(0xc0_0217_abcd);
        for _case in 0..64 {
            let mut fused = OrderStatTree::new();
            let mut unfused = OrderStatTree::new();
            let mut set = BTreeSet::new();
            for _ in 0..rng.gen_range(1..100) {
                let k = rng.gen_range(0..200);
                fused.insert(k);
                unfused.insert(k);
                set.insert(k);
            }
            for _ in 0..rng.gen_range(1..300) {
                let old = rng.gen_range(0..200);
                let new = rng.gen_range(0..200);
                let expected_count = set.range(old + 1..).count() as u64;
                assert_eq!(unfused.count_greater(old), expected_count);
                let expected_removed = unfused.reinsert(old, new);
                set.remove(&old);
                set.insert(new);
                let (removed, count) = fused.count_reinsert(old, new);
                assert_eq!(removed, expected_removed, "old {old} new {new}");
                assert_eq!(count, expected_count, "old {old} new {new}");
                assert_eq!(fused.len(), set.len());
            }
            fused.check_invariants();
            let live: Vec<u64> = set.iter().copied().collect();
            for &k in &live {
                assert!(fused.contains(k));
            }
        }
    }

    /// The partitioned stitch's exact pattern: monotone clock, `new` is
    /// always the running maximum, `old` is a live key. The fused op must
    /// never allocate on the right-spine rekey path.
    #[test]
    fn count_reinsert_monotone_clock_pattern() {
        let mut rng = SplitMix64::seed_from_u64(0x9a17_0b5e);
        let mut t = OrderStatTree::new();
        let mut set = BTreeSet::new();
        let mut clock = 0u64;
        for _ in 0..48 {
            clock += 1;
            t.insert(clock);
            set.insert(clock);
        }
        for _ in 0..2000 {
            clock += 1;
            let live: Vec<u64> = set.iter().copied().collect();
            let old = live[rng.gen_range(0..live.len() as u64) as usize];
            let expected = set.range(old + 1..).count() as u64;
            let (removed, count) = t.count_reinsert(old, clock);
            assert!(removed);
            assert_eq!(count, expected);
            set.remove(&old);
            set.insert(clock);
        }
        t.check_invariants();
        assert_eq!(t.len(), set.len());
    }

    /// The analyzer's exact pattern: clock-ordered inserts, reinsert moves
    /// an arbitrary live key to the new maximum. Sizes and AVL balance must
    /// survive an arbitrary interleaving, and the result must match the
    /// unfused remove+insert on a reference set.
    #[test]
    fn randomized_reinsert_sequence_keeps_invariants() {
        let mut rng = SplitMix64::seed_from_u64(0xfeed_beef);
        for _case in 0..32 {
            let mut t = OrderStatTree::new();
            let mut set = BTreeSet::new();
            let mut clock = 0u64;
            let cold = rng.gen_range(1..40);
            for _ in 0..cold {
                clock += 1;
                t.insert(clock);
                set.insert(clock);
            }
            for _ in 0..rng.gen_range(1..300) {
                clock += 1;
                let live: Vec<u64> = set.iter().copied().collect();
                let old = live[rng.gen_range(0..live.len() as u64) as usize];
                assert!(t.reinsert(old, clock), "live key {old} must be found");
                set.remove(&old);
                set.insert(clock);
                assert_eq!(t.len(), set.len());
                assert_eq!(t.count_greater(0), set.len() as u64);
            }
            t.check_invariants();
            let live: Vec<u64> = set.iter().copied().collect();
            for &k in &live {
                assert!(t.contains(k));
                assert_eq!(
                    t.count_greater(k),
                    set.range(k + 1..).count() as u64
                );
            }
        }
    }
}
