//! The online reuse-distance analyzer — the paper's event handler.
//!
//! For every memory access the analyzer advances a logical clock, finds the
//! block's previous access in the [block table](crate::BlockTable), counts
//! the distinct blocks touched in between with the
//! [order-statistic tree](crate::OrderStatTree), locates the carrying scope
//! on the [dynamic scope stack](crate::ScopeStack), and records the distance
//! in the histogram of the *(sink reference, source scope, carrying scope)*
//! pattern.

use crate::blocktable::{BlockTable, MAX_BLOCKS};
use crate::histogram::Histogram;
use crate::snapshot::{Dec, Enc, SnapshotError};
use crate::timebits::TimeBits;
use crate::patterns::{PatternKey, ReusePattern, ReuseProfile};
use crate::scopestack::ScopeStack;
use reuselens_ir::{AccessKind, Program, RefId, ScopeId};
use reuselens_trace::{AccessRecord, SoaBatch, TraceSink};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Pattern count above which a sink switches from linear scan to a hash map.
const SMALL_MAP_LIMIT: usize = 8;

/// Capacity of the recent-access window: the number of most-recently-used
/// distinct blocks kept out of the tree and the block table entirely.
///
/// Real access streams are dominated by short reuses — the paper's sweeps
/// spend 7 of every 8 accesses on within-line spatial reuse at distance 0 —
/// so the hot path resolves any reuse with distance `< WINDOW` by scanning a
/// tiny array from its most-recent end and never touches the radix table or
/// the order-statistic tree. Only evictions from the window (one per *cold*
/// miss once the window is full) pay for tree and table maintenance, and the
/// reuse path that does reach the tree folds lookup and reinsert into a
/// single fused operation ([`TimeBits::count_reinsert`]).
pub(crate) const WINDOW: usize = 32;

/// One entry of the recent-access window (see [`WINDOW`]): a distinct block
/// plus the clock and static reference of its last access. Entries are kept
/// in ascending time order, and every entry's time is greater than every key
/// in the tree — that invariant is what makes window distances exact.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WinEntry {
    pub(crate) block: u64,
    pub(crate) time: u64,
    pub(crate) ref_id: u32,
}

/// Per-sink pattern storage. The paper observes that each reference sees a
/// small, fixed set of (source, carrier) combinations, so a short linear
/// vector beats a hash map on the hot path. Pathological sinks (many
/// carriers, e.g. deep non-perfect nests or indirection) would degrade the
/// scan to O(patterns) per access, so past [`SMALL_MAP_LIMIT`] entries a
/// hash index over the same vector takes over.
#[derive(Debug, Default)]
pub(crate) struct SinkPatterns {
    pub(crate) entries: Vec<(ScopeId, ScopeId, Histogram)>,
    pub(crate) index: Option<HashMap<(ScopeId, ScopeId), usize>>,
    /// Last entry hit — a hint only (re-checked before use). Reuse streams
    /// record long runs of the same (source, carrier) pair, so this turns
    /// the common record into one comparison.
    hot: u32,
}

impl SinkPatterns {
    #[inline]
    pub(crate) fn record(&mut self, source: ScopeId, carrier: ScopeId, distance: u64) {
        self.record_n(source, carrier, distance, 1);
    }

    /// Records `count` reuses at once — the sampled analyzer's scaled
    /// recording path (`count` = inverse sampling rate). `record` is the
    /// `count == 1` case and compiles to the same code it always did.
    #[inline]
    pub(crate) fn record_n(&mut self, source: ScopeId, carrier: ScopeId, distance: u64, count: u64) {
        if let Some((s, c, h)) = self.entries.get_mut(self.hot as usize) {
            if *s == source && *c == carrier {
                h.add_n(distance, count);
                return;
            }
        }
        if let Some(index) = &mut self.index {
            match index.entry((source, carrier)) {
                Entry::Occupied(e) => {
                    self.hot = *e.get() as u32;
                    self.entries[*e.get()].2.add_n(distance, count);
                }
                Entry::Vacant(e) => {
                    self.hot = self.entries.len() as u32;
                    e.insert(self.entries.len());
                    let mut h = Histogram::new();
                    h.add_n(distance, count);
                    self.entries.push((source, carrier, h));
                }
            }
            return;
        }
        for (i, (s, c, h)) in self.entries.iter_mut().enumerate() {
            if *s == source && *c == carrier {
                self.hot = i as u32;
                h.add_n(distance, count);
                return;
            }
        }
        self.hot = self.entries.len() as u32;
        let mut h = Histogram::new();
        h.add_n(distance, count);
        self.entries.push((source, carrier, h));
        self.maybe_index();
    }

    /// Merges a whole histogram into the `(source, carrier)` pattern —
    /// the stitch path of partitioned replay folding one worker's
    /// measurements into the master set.
    pub(crate) fn merge(&mut self, source: ScopeId, carrier: ScopeId, h: &Histogram) {
        if let Some(index) = &mut self.index {
            match index.entry((source, carrier)) {
                Entry::Occupied(e) => self.entries[*e.get()].2.merge(h),
                Entry::Vacant(e) => {
                    e.insert(self.entries.len());
                    self.entries.push((source, carrier, h.clone()));
                }
            }
            return;
        }
        for (s, c, existing) in &mut self.entries {
            if *s == source && *c == carrier {
                existing.merge(h);
                return;
            }
        }
        self.entries.push((source, carrier, h.clone()));
        self.maybe_index();
    }

    fn maybe_index(&mut self) {
        if self.entries.len() > SMALL_MAP_LIMIT {
            self.index = Some(
                self.entries
                    .iter()
                    .enumerate()
                    .map(|(i, (s, c, _))| ((*s, *c), i))
                    .collect(),
            );
        }
    }
}

/// Serializes a scope stack's open scopes (the root is implicit) for a
/// snapshot. Shared by the exact and sampled analyzers.
pub(crate) fn encode_scope_stack(e: &mut Enc, stack: &ScopeStack) {
    let open = stack.open_scopes();
    e.u64(open.len() as u64);
    for &(scope, clock) in open {
        e.u32(scope.0);
        e.u64(clock);
    }
}

/// Decodes a scope stack, validating that entry clocks are monotone and
/// no later than the analyzer clock `max_clock`.
pub(crate) fn decode_scope_stack(
    d: &mut Dec<'_>,
    max_clock: u64,
) -> Result<ScopeStack, SnapshotError> {
    let n = d.len(12)?;
    let mut open = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let scope = d.u32()?;
        let at = d.offset();
        let clock = d.u64()?;
        if clock < prev || clock > max_clock {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: format!(
                    "scope entry clock {clock} breaks monotonicity \
                     (previous {prev}, analyzer clock {max_clock})"
                ),
            });
        }
        prev = clock;
        open.push((ScopeId(scope), clock));
    }
    Ok(ScopeStack::with_open_scopes(&open))
}

/// Serializes every sink's pattern set for a snapshot. Histograms are
/// written as `(low, count)` pairs in bin order — the same canonical form
/// the profile serializer proved round-trips through `iter`/`add_n` —
/// and the hash index and hot-entry hints, being derived state, are
/// skipped and rebuilt on decode.
pub(crate) fn encode_sink_patterns(e: &mut Enc, per_sink: &[SinkPatterns]) {
    e.u64(per_sink.len() as u64);
    for sp in per_sink {
        e.u64(sp.entries.len() as u64);
        for (source, carrier, h) in &sp.entries {
            e.u32(source.0);
            e.u32(carrier.0);
            e.u64(h.bin_count() as u64);
            for (lo, _, count) in h.iter() {
                e.u64(lo);
                e.u64(count);
            }
        }
    }
}

/// Decodes every sink's pattern set, validating the sink count against
/// the program and each histogram's canonical form (ascending bins,
/// nonzero counts).
pub(crate) fn decode_sink_patterns(
    d: &mut Dec<'_>,
    nrefs: usize,
) -> Result<Vec<SinkPatterns>, SnapshotError> {
    let n = d.len(8)?;
    if n != nrefs {
        return Err(SnapshotError::Mismatch {
            what: format!("snapshot has {n} sinks, the program has {nrefs} references"),
        });
    }
    let mut per_sink = Vec::with_capacity(n);
    for _ in 0..n {
        let nentries = d.len(24)?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let source = ScopeId(d.u32()?);
            let carrier = ScopeId(d.u32()?);
            let nbins = d.len(16)?;
            let mut h = Histogram::new();
            let mut prev_lo = None;
            for _ in 0..nbins {
                let at = d.offset();
                let lo = d.u64()?;
                let count = d.u64()?;
                if count == 0 || prev_lo.is_some_and(|p| lo <= p) {
                    return Err(SnapshotError::Corrupt {
                        offset: at,
                        what: format!("histogram bin ({lo}, {count}) is not in canonical form"),
                    });
                }
                prev_lo = Some(lo);
                h.add_n(lo, count);
            }
            entries.push((source, carrier, h));
        }
        let mut sp = SinkPatterns {
            entries,
            index: None,
            hot: 0,
        };
        sp.maybe_index();
        per_sink.push(sp);
    }
    Ok(per_sink)
}

/// Measures reuse distances at one block granularity while a program
/// executes.
///
/// Implements [`TraceSink`], so it can be plugged directly into
/// [`Executor::run`](reuselens_trace::Executor::run) — alone, teed with
/// other sinks, or grouped in a [`MultiGrainAnalyzer`].
///
/// # Examples
///
/// ```
/// use reuselens_core::ReuseAnalyzer;
/// use reuselens_ir::ProgramBuilder;
/// use reuselens_trace::Executor;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[64]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 1, |r, _| {
///         r.for_("i", 0, 63, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let mut analyzer = ReuseAnalyzer::new(&prog, 64);
/// Executor::new(&prog).run(&mut analyzer)?;
/// let profile = analyzer.finish();
/// // 64 elements * 8 B = 8 cache lines; the second sweep reuses each at
/// // distance 7 (the 7 other lines touched in between), carried by `t`.
/// assert!(profile.accesses_balance());
/// // Two patterns: short spatial reuse inside a line carried by `i`, and
/// // the cross-sweep temporal reuse carried by `t`.
/// let t = prog.scope_by_name("t").unwrap();
/// assert_eq!(profile.patterns.len(), 2);
/// assert_eq!(profile.patterns_carried_by(t).count(), 1);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
#[derive(Debug)]
pub struct ReuseAnalyzer {
    block_shift: u32,
    clock: u64,
    table: BlockTable,
    tree: TimeBits,
    window: Vec<WinEntry>,
    distinct: u64,
    stack: ScopeStack,
    per_sink: Vec<SinkPatterns>,
    cold: Vec<u64>,
    ref_scopes: Vec<ScopeId>,
    last_distance: Option<u64>,
}

impl ReuseAnalyzer {
    /// Creates an analyzer at the given block size (must be a power of
    /// two): cache-line size for cache studies, page size for TLB studies.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(program: &Program, block_size: u64) -> ReuseAnalyzer {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let nrefs = program.references().len();
        ReuseAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock: 0,
            table: BlockTable::new(),
            tree: TimeBits::new(),
            window: Vec::with_capacity(WINDOW + 1),
            distinct: 0,
            stack: ScopeStack::new(),
            per_sink: (0..nrefs).map(|_| SinkPatterns::default()).collect(),
            cold: vec![0; nrefs],
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
            last_distance: None,
        }
    }

    /// Block size this analyzer measures at.
    pub fn block_size(&self) -> u64 {
        1 << self.block_shift
    }

    /// Accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.clock
    }

    /// Distinct blocks observed so far (whether currently held in the
    /// recent-access window or already evicted into the block table).
    pub fn distinct_blocks(&self) -> u64 {
        self.distinct
    }

    /// Live blocks tracked for distance counting: order-statistic tree
    /// nodes plus recent-access window entries (one per distinct block).
    pub fn tree_nodes(&self) -> usize {
        self.tree.len() + self.window.len()
    }

    /// Distance the most recent access was measured at: `Some(d)` for a
    /// reuse, `None` for a cold first touch (or before any access). This
    /// per-access view is what the randomized property suite compares
    /// against the brute-force [`oracle`](crate::oracle), access by access.
    pub fn last_distance(&self) -> Option<u64> {
        self.last_distance
    }

    /// Consumes the analyzer and produces the measured profile.
    pub fn finish(self) -> ReuseProfile {
        let mut patterns = Vec::new();
        for (sink_idx, sp) in self.per_sink.into_iter().enumerate() {
            for (source_scope, carrier, histogram) in sp.entries {
                patterns.push(ReusePattern {
                    key: PatternKey {
                        sink: RefId(sink_idx as u32),
                        source_scope,
                        carrier,
                    },
                    histogram,
                });
            }
        }
        patterns.sort_by_key(|p| p.key);
        ReuseProfile {
            block_size: 1 << self.block_shift,
            patterns,
            cold: self.cold,
            total_accesses: self.clock,
            distinct_blocks: self.distinct,
            sampling: None,
        }
    }

    /// Serializes the full mid-stream analyzer state into a snapshot
    /// frame. Everything live is written verbatim (window order, stale
    /// block-table entries included); everything derivable — the Fenwick
    /// tree, pattern hash indexes, hot hints, `ref_scopes` — is skipped
    /// and rebuilt on decode, so the encoding of a given state is unique.
    pub(crate) fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.clock);
        e.u64(self.distinct);
        match self.last_distance {
            None => e.u8(0),
            Some(dist) => {
                e.u8(1);
                e.u64(dist);
            }
        }
        e.u64(self.window.len() as u64);
        for w in &self.window {
            e.u64(w.block);
            e.u64(w.time);
            e.u32(w.ref_id);
        }
        encode_scope_stack(e, &self.stack);
        encode_sink_patterns(e, &self.per_sink);
        e.u64(self.cold.len() as u64);
        for &c in &self.cold {
            e.u64(c);
        }
        let mut count = 0u64;
        self.table.for_each(|_, _| count += 1);
        e.u64(count);
        self.table.for_each(|block, entry| {
            e.u64(block);
            e.u64(entry.time);
            e.u32(entry.ref_id);
        });
        let (words, base, len) = self.tree.snapshot_parts();
        e.u64(words.len() as u64);
        for &w in words {
            e.u64(w);
        }
        e.u64(base);
        e.u64(len);
    }

    /// Rebuilds a mid-stream analyzer from [`snapshot_encode`] output,
    /// validating every structural invariant the bytes could violate:
    /// window and table times bounded by the clock, blocks inside the
    /// modeled address space, references inside the program, the time
    /// bitmap's population matching its length. Never panics on hostile
    /// input — a violated invariant is a typed [`SnapshotError`].
    pub(crate) fn snapshot_decode(
        program: &Program,
        block_size: u64,
        d: &mut Dec<'_>,
    ) -> Result<ReuseAnalyzer, SnapshotError> {
        debug_assert!(block_size.is_power_of_two());
        let nrefs = program.references().len();
        let clock = d.u64()?;
        let distinct = d.u64()?;
        let last_distance = match d.u8()? {
            0 => None,
            1 => Some(d.u64()?),
            other => return Err(d.corrupt(format!("unknown last-distance tag {other}"))),
        };
        let wlen = d.len(20)?;
        if wlen > WINDOW {
            return Err(d.corrupt(format!("window holds {wlen} entries, limit {WINDOW}")));
        }
        let mut window = Vec::with_capacity(WINDOW + 1);
        let mut prev_time = 0u64;
        for _ in 0..wlen {
            let at = d.offset();
            let block = d.u64()?;
            let time = d.u64()?;
            let ref_id = d.u32()?;
            if block >= MAX_BLOCKS || time <= prev_time || time > clock || ref_id as usize >= nrefs
            {
                return Err(SnapshotError::Corrupt {
                    offset: at,
                    what: format!(
                        "window entry (block {block}, time {time}, ref {ref_id}) \
                         violates window invariants at clock {clock}"
                    ),
                });
            }
            prev_time = time;
            window.push(WinEntry { block, time, ref_id });
        }
        let stack = decode_scope_stack(d, clock)?;
        let per_sink = decode_sink_patterns(d, nrefs)?;
        let clen = d.len(8)?;
        if clen != nrefs {
            return Err(SnapshotError::Mismatch {
                what: format!("snapshot has {clen} cold counters, the program has {nrefs}"),
            });
        }
        let mut cold = Vec::with_capacity(clen);
        for _ in 0..clen {
            cold.push(d.u64()?);
        }
        let tcount = d.len(20)?;
        let mut table = BlockTable::new();
        let mut prev_block = None;
        for _ in 0..tcount {
            let at = d.offset();
            let block = d.u64()?;
            let time = d.u64()?;
            let ref_id = d.u32()?;
            if block >= MAX_BLOCKS
                || prev_block.is_some_and(|p| block <= p)
                || time == 0
                || time > clock
                || ref_id as usize >= nrefs
            {
                return Err(SnapshotError::Corrupt {
                    offset: at,
                    what: format!(
                        "block-table entry (block {block}, time {time}, ref {ref_id}) \
                         violates table invariants at clock {clock}"
                    ),
                });
            }
            prev_block = Some(block);
            table.set(block, time, ref_id);
        }
        let nwords = d.len(8)?;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(d.u64()?);
        }
        let base = d.u64()?;
        let at = d.offset();
        let len = d.u64()?;
        let tree = TimeBits::from_snapshot_parts(words, base, len).ok_or_else(|| {
            SnapshotError::Corrupt {
                offset: at,
                what: "time bitmap population does not match its stored length".to_string(),
            }
        })?;
        Ok(ReuseAnalyzer {
            block_shift: block_size.trailing_zeros(),
            clock,
            table,
            tree,
            window,
            distinct,
            stack,
            per_sink,
            cold,
            ref_scopes: program.references().iter().map(|r| r.scope()).collect(),
            last_distance,
        })
    }

    /// The per-access hot path, shared by every [`TraceSink`] entry point.
    ///
    /// The recent-access window holds the [`WINDOW`] most recently used
    /// distinct blocks in ascending time order; every window time is
    /// greater than every tree key, and the table/tree only ever learn
    /// about a block when it is evicted from the window. That invariant
    /// makes the three cases exact:
    ///
    /// * **window hit** at index `i`: the blocks touched since the
    ///   previous access are exactly the entries behind `i`, so
    ///   `distance = len - 1 - i` with no tree or table work at all;
    /// * **table hit**: all `len` window blocks are more recent than the
    ///   previous access, so `distance = len + |tree keys > prev.time|`,
    ///   where the count and the tree update (drop `prev.time`, add the
    ///   newly evicted window head) fuse into one descent
    ///   ([`OrderStatTree::count_reinsert`]);
    /// * **cold**: first touch; the block enters the window and the oldest
    ///   entry (if any) spills into the tree + table.
    ///
    /// A block sitting in the window may leave a stale table entry behind
    /// from an earlier eviction; that is harmless because the window is
    /// consulted first and the entry is overwritten on the next eviction.
    #[inline]
    fn access_block(&mut self, r: u32, block: u64) {
        self.clock += 1;
        let now = self.clock;
        let len = self.window.len();
        // Distance-0 fast path: a repeat of the most recent block (the
        // dominant case — within-line spatial reuse on a unit-stride
        // sweep) updates the tail entry in place, with no remove/push.
        if len > 0 && self.window[len - 1].block == block {
            let e = self.window[len - 1];
            self.window[len - 1] = WinEntry { block, time: now, ref_id: r };
            let carrier = self.stack.carrier(e.time);
            let source = self.ref_scopes[e.ref_id as usize];
            self.per_sink[r as usize].record(source, carrier, 0);
            self.last_distance = Some(0);
            return;
        }
        for i in (0..len.saturating_sub(1)).rev() {
            if self.window[i].block == block {
                let e = self.window.remove(i);
                let distance = (len - 1 - i) as u64;
                let carrier = self.stack.carrier(e.time);
                let source = self.ref_scopes[e.ref_id as usize];
                self.per_sink[r as usize].record(source, carrier, distance);
                self.last_distance = Some(distance);
                self.window.push(WinEntry { block, time: now, ref_id: r });
                return;
            }
        }
        self.access_past_window(r, block, now, len);
    }

    /// The table/tree path for an access that missed the recent window —
    /// a long reuse or a cold first touch. Outlined and kept out of the
    /// inlined hot path: mixing the tree machinery into `access_block`
    /// costs the dominant short-reuse path real registers and icache.
    #[cold]
    #[inline(never)]
    fn access_past_window(&mut self, r: u32, block: u64, now: u64, len: usize) {
        match self.table.get(block) {
            Some(prev) => {
                let (prev_time, prev_ref) = (prev.time, prev.ref_id);
                // The table only holds evicted blocks, so the window is
                // necessarily full here; spill its oldest entry to make
                // room for this block at the recent end.
                let e = self.window.remove(0);
                let (_, count) = self.tree.count_reinsert(prev_time, e.time);
                self.table.set(e.block, e.time, e.ref_id);
                let distance = len as u64 + count;
                let carrier = self.stack.carrier(prev_time);
                let source = self.ref_scopes[prev_ref as usize];
                self.per_sink[r as usize].record(source, carrier, distance);
                self.last_distance = Some(distance);
            }
            None => {
                self.cold[r as usize] += 1;
                self.distinct += 1;
                self.last_distance = None;
            }
        }
        self.window.push(WinEntry { block, time: now, ref_id: r });
        if self.window.len() > WINDOW {
            let e = self.window.remove(0);
            self.tree.insert(e.time);
            self.table.set(e.block, e.time, e.ref_id);
        }
    }
}

impl TraceSink for ReuseAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, _size: u32, _kind: AccessKind) {
        self.access_block(r.0, addr >> self.block_shift);
    }

    fn access_batch(&mut self, batch: &[AccessRecord]) {
        for a in batch {
            self.access_block(a.r.0, a.addr >> self.block_shift);
        }
    }

    fn access_soa(&mut self, batch: &SoaBatch) {
        // Stream the two lanes the analyzer actually needs; the size and
        // kind lanes are never touched, and no per-event struct exists.
        for (&r, &addr) in batch.refs.iter().zip(&batch.addrs) {
            self.access_block(r, addr >> self.block_shift);
        }
    }

    fn enter(&mut self, scope: ScopeId) {
        self.stack.enter(scope, self.clock);
    }

    fn exit(&mut self, scope: ScopeId) {
        self.stack.exit(scope);
    }
}

/// Runs several [`ReuseAnalyzer`]s over one event stream — the paper
/// measures line-granularity (cache) and page-granularity (TLB) reuse in a
/// single execution.
#[derive(Debug)]
pub struct MultiGrainAnalyzer {
    analyzers: Vec<ReuseAnalyzer>,
}

impl MultiGrainAnalyzer {
    /// Creates one analyzer per requested block size.
    pub fn new(program: &Program, block_sizes: &[u64]) -> MultiGrainAnalyzer {
        MultiGrainAnalyzer {
            analyzers: block_sizes
                .iter()
                .map(|&b| ReuseAnalyzer::new(program, b))
                .collect(),
        }
    }

    /// Finishes all analyzers, returning one profile per block size in the
    /// order given at construction.
    pub fn finish(self) -> Vec<ReuseProfile> {
        self.analyzers.into_iter().map(ReuseAnalyzer::finish).collect()
    }
}

impl TraceSink for MultiGrainAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        for a in &mut self.analyzers {
            a.access(r, addr, size, kind);
        }
    }
    fn enter(&mut self, scope: ScopeId) {
        for a in &mut self.analyzers {
            a.enter(scope);
        }
    }
    fn exit(&mut self, scope: ScopeId) {
        for a in &mut self.analyzers {
            a.exit(scope);
        }
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        // Grain-major: each analyzer consumes the whole batch while its
        // tables stay hot, instead of interleaving per event.
        for a in &mut self.analyzers {
            a.access_batch(batch);
        }
    }
    fn access_soa(&mut self, batch: &SoaBatch) {
        for a in &mut self.analyzers {
            a.access_soa(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};
    use reuselens_trace::Executor;

    /// Streaming over a large array twice: every line is cold once, then
    /// reused at distance = (lines - 1), carried by the repeat loop.
    #[test]
    fn two_sweeps_reuse_at_footprint_distance() {
        let n = 512u64; // elements; 8 B each => 64 lines of 64 B
        let mut p = ProgramBuilder::new("sweep2");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        let profile = an.finish();
        let lines = n * 8 / 64;
        assert_eq!(profile.total_accesses, 2 * n);
        assert_eq!(profile.distinct_blocks, lines);
        // Within-line spatial reuses (7 per line per sweep) + cross-sweep
        // temporal reuses.
        assert!(profile.accesses_balance());
        let t = prog.scope_by_name("t").unwrap();
        let i = prog.scope_by_name("i").unwrap();
        // The long reuses (distance = lines-1) are carried by t.
        let carried_by_t: u64 = profile
            .patterns_carried_by(t)
            .map(|p| p.count())
            .sum();
        assert_eq!(carried_by_t, lines); // one reuse per line on sweep 2
        let long = profile
            .patterns_carried_by(t)
            .flat_map(|p| p.histogram.iter())
            .map(|(lo, _, c)| (lo, c))
            .next()
            .unwrap();
        assert_eq!(long.0, lines - 1);
        // Short spatial reuses (distance 0, same line) carried by i.
        let carried_by_i: u64 = profile
            .patterns_carried_by(i)
            .map(|p| p.count())
            .sum();
        assert_eq!(carried_by_i, 2 * n - lines - lines);
    }

    /// The paper's carrying-scope example: data accessed in two sibling
    /// loops, reuse carried by their common parent.
    #[test]
    fn cross_loop_reuse_is_carried_by_parent() {
        let n = 64u64;
        let mut p = ProgramBuilder::new("fuse");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("outer", 0, 0, |r, _| {
                r.for_("first", 0, (n - 1) as i64, |r, i| {
                    r.store(a, vec![i.into()]);
                });
                r.for_("second", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        let profile = an.finish();
        let outer = prog.scope_by_name("outer").unwrap();
        let first = prog.scope_by_name("first").unwrap();
        let load_ref = prog.references()[1].id();
        // Reuses ending at the load whose source is the store loop must be
        // carried by `outer`, not by either inner loop.
        let cross: Vec<_> = profile
            .patterns_for_sink(load_ref)
            .filter(|p| p.key.source_scope == first)
            .collect();
        assert!(!cross.is_empty());
        for pat in cross {
            assert_eq!(pat.key.carrier, outer);
        }
    }

    /// Reuse between iterations of one loop is carried by that loop.
    #[test]
    fn loop_carried_reuse_attributes_to_the_loop() {
        let mut p = ProgramBuilder::new("stencil");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.for_("i", 0, 99, |r, _| {
                r.load(a, vec![Expr::c(0)]); // same element every iteration
            });
        });
        let prog = p.finish();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        let profile = an.finish();
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(profile.patterns.len(), 1);
        assert_eq!(profile.patterns[0].key.carrier, i);
        assert_eq!(profile.patterns[0].count(), 99);
        // all at distance 0
        assert_eq!(profile.patterns[0].histogram.count_ge(1), 0.0);
    }

    /// Page-granularity analysis sees fewer distinct blocks than
    /// line-granularity.
    #[test]
    fn multi_grain_page_profile_is_coarser() {
        let n = 4096u64;
        let mut p = ProgramBuilder::new("grain");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let mut mg = MultiGrainAnalyzer::new(&prog, &[64, 4096]);
        Executor::new(&prog).run(&mut mg).unwrap();
        let profiles = mg.finish();
        assert_eq!(profiles[0].block_size, 64);
        assert_eq!(profiles[1].block_size, 4096);
        assert!(profiles[0].distinct_blocks > profiles[1].distinct_blocks);
        assert_eq!(profiles[0].total_accesses, profiles[1].total_accesses);
        assert!(profiles[0].accesses_balance());
        assert!(profiles[1].accesses_balance());
    }

    /// Pathological many-carrier nest: one constant-index load at the
    /// bottom of a 12-deep loop nest produces one reuse pattern per
    /// ancestor loop, pushing a single sink past the small-map limit and
    /// exercising the hash-index fallback in `SinkPatterns`.
    #[test]
    fn many_carrier_nest_overflows_small_map() {
        const DEPTH: usize = 12;
        fn nest(r: &mut reuselens_ir::BodyBuilder<'_>, depth: usize, a: reuselens_ir::ArrayId) {
            if depth == 0 {
                r.load(a, vec![Expr::c(0)]);
            } else {
                r.for_(&format!("L{depth}"), 0, 1, |r, _| nest(r, depth - 1, a));
            }
        }
        let mut p = ProgramBuilder::new("deep");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| nest(r, DEPTH, a));
        let prog = p.finish();
        let mut an = ReuseAnalyzer::new(&prog, 64);
        Executor::new(&prog).run(&mut an).unwrap();
        assert!(
            an.per_sink[0].index.is_some(),
            "a {DEPTH}-carrier sink must have switched to the hash index"
        );
        let profile = an.finish();
        assert_eq!(profile.total_accesses, 1 << DEPTH);
        assert!(profile.accesses_balance());
        // One pattern per carrying loop: every ancestor carries the reuse
        // that crosses its own iteration boundary.
        assert_eq!(profile.patterns.len(), DEPTH);
        assert_eq!(profile.cold.iter().sum::<u64>(), 1);
    }

    /// Records made before the overflow keep aggregating into the same
    /// histograms after the hash index takes over.
    #[test]
    fn small_map_fallback_matches_linear_scan() {
        let mut sp = SinkPatterns::default();
        sp.record(ScopeId(1), ScopeId(10), 7);
        assert!(sp.index.is_none());
        // Push past the limit with fresh carriers.
        for k in 0..SMALL_MAP_LIMIT as u32 {
            sp.record(ScopeId(1), ScopeId(k + 11), 5);
        }
        assert!(sp.index.is_some());
        // Hits on a pre-overflow pattern, a post-overflow pattern, and a
        // brand-new one all land in the right histograms.
        sp.record(ScopeId(1), ScopeId(10), 9);
        sp.record(ScopeId(1), ScopeId(11), 5);
        sp.record(ScopeId(2), ScopeId(10), 1);
        assert_eq!(sp.entries.len(), SMALL_MAP_LIMIT + 2);
        assert_eq!(sp.entries[0].2.total(), 2);
        assert_eq!(sp.entries[1].2.total(), 2);
        let total: u64 = sp.entries.iter().map(|(_, _, h)| h.total()).sum();
        assert_eq!(total, SMALL_MAP_LIMIT as u64 + 4);
    }

    /// `record_n(s, c, d, n)` must be bit-identical to `n` repeated
    /// `record(s, c, d)` calls under a randomized interleaving of pattern
    /// keys — across the linear-scan regime, the hash-index regime, and
    /// the transition between them.
    #[test]
    fn record_n_is_bit_identical_to_repeated_record() {
        let mut rng = reuselens_prng::SplitMix64::seed_from_u64(0x4156);
        for _case in 0..64 {
            let mut batched = SinkPatterns::default();
            let mut unit = SinkPatterns::default();
            // Enough distinct carriers to cross SMALL_MAP_LIMIT in some
            // cases and stay under it in others.
            let carriers = rng.gen_range(1..(2 * SMALL_MAP_LIMIT as u64 + 1)) as u32;
            let ops = rng.gen_range(1..60);
            for _ in 0..ops {
                let s = ScopeId(rng.gen_range(0..3) as u32);
                let c = ScopeId(rng.gen_range(0..carriers as u64) as u32);
                let d = rng.gen_range(0..1 << 20);
                let n = rng.gen_range(0..6);
                batched.record_n(s, c, d, n);
                for _ in 0..n {
                    unit.record(s, c, d);
                }
            }
            // record_n(_, _, _, 0) still creates the pattern entry the way
            // the first unit record would not — which also shifts later
            // insertion order — so compare the non-empty histograms (what
            // `finish()` exports) keyed by pattern.
            let live = |sp: &SinkPatterns| {
                let mut v: Vec<_> = sp
                    .entries
                    .iter()
                    .filter(|(_, _, h)| !h.is_empty())
                    .map(|(s, c, h)| (s.index(), c.index(), h.clone()))
                    .collect();
                v.sort_by_key(|&(s, c, _)| (s, c));
                v
            };
            assert_eq!(live(&batched), live(&unit));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_panics() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::c(0)]);
        });
        let prog = p.finish();
        let _ = ReuseAnalyzer::new(&prog, 48);
    }
}
