//! Reuse patterns: reuse-distance histograms attributed to
//! *(sink reference, source scope, carrying scope)* triples, and the
//! profiles that collect them.

use crate::histogram::Histogram;
use crate::sampling::SamplingInfo;
use reuselens_ir::{RefId, ScopeId};

/// Identifies one reuse pattern: reuses that end at `sink`, whose previous
/// access happened in `source_scope`, carried by `carrier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey {
    /// The reference at the destination end of the reuse arcs.
    pub sink: RefId,
    /// Static scope of the reference that last touched the block.
    pub source_scope: ScopeId,
    /// Innermost dynamic scope active across the whole reuse interval —
    /// the loop driving the reuse.
    pub carrier: ScopeId,
}

/// One reuse pattern with its measured distance histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReusePattern {
    /// The pattern identity.
    pub key: PatternKey,
    /// Distances of all reuse arcs in this pattern.
    pub histogram: Histogram,
}

impl ReusePattern {
    /// Number of reuse arcs recorded.
    pub fn count(&self) -> u64 {
        self.histogram.total()
    }
}

/// Everything measured at one block granularity: all reuse patterns plus
/// per-reference cold (first-touch) access counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseProfile {
    /// Block size in bytes this profile was measured at (cache-line size
    /// for cache studies, page size for TLB studies).
    pub block_size: u64,
    /// All observed patterns, sorted by key.
    pub patterns: Vec<ReusePattern>,
    /// Cold accesses per reference (indexed by [`RefId`]); these are the
    /// compulsory misses.
    pub cold: Vec<u64>,
    /// Total memory accesses observed.
    pub total_accesses: u64,
    /// Distinct blocks touched (the measured footprint in blocks). Under
    /// sampling this is the scaled *estimate* of the footprint.
    pub distinct_blocks: u64,
    /// `Some` when this profile was measured by the sampled analyzer —
    /// histogram counts, cold counts, and `distinct_blocks` are then scaled
    /// estimates, not exact measurements. `None` for exact profiles.
    pub sampling: Option<SamplingInfo>,
}

impl ReuseProfile {
    /// All patterns whose sink is `r`.
    pub fn patterns_for_sink(&self, r: RefId) -> impl Iterator<Item = &ReusePattern> {
        self.patterns.iter().filter(move |p| p.key.sink == r)
    }

    /// All patterns carried by `scope`.
    pub fn patterns_carried_by(&self, scope: ScopeId) -> impl Iterator<Item = &ReusePattern> {
        self.patterns.iter().filter(move |p| p.key.carrier == scope)
    }

    /// Cold accesses of one reference.
    pub fn cold_of(&self, r: RefId) -> u64 {
        self.cold.get(r.index()).copied().unwrap_or(0)
    }

    /// Total cold (compulsory) accesses.
    pub fn total_cold(&self) -> u64 {
        self.cold.iter().sum()
    }

    /// Total reuse arcs across all patterns.
    pub fn total_reuses(&self) -> u64 {
        self.patterns.iter().map(ReusePattern::count).sum()
    }

    /// Merges all pattern histograms of one sink into a single histogram
    /// (the coarse per-reference view earlier tools collected).
    pub fn merged_histogram_for_sink(&self, r: RefId) -> Histogram {
        let mut h = Histogram::new();
        for p in self.patterns_for_sink(r) {
            h.merge(&p.histogram);
        }
        h
    }

    /// Sanity invariant: every access is either a cold touch or one reuse.
    /// Holds exactly for exact profiles; under sampling the left side is a
    /// scaled estimate of the right, so this is only approximate there.
    pub fn accesses_balance(&self) -> bool {
        self.total_cold() + self.total_reuses() == self.total_accesses
    }

    /// True when this profile came from the sampled analyzer.
    pub fn is_sampled(&self) -> bool {
        self.sampling.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(sink: u32, src: u32, car: u32, dists: &[u64]) -> ReusePattern {
        ReusePattern {
            key: PatternKey {
                sink: RefId(sink),
                source_scope: ScopeId(src),
                carrier: ScopeId(car),
            },
            histogram: dists.iter().copied().collect(),
        }
    }

    fn profile() -> ReuseProfile {
        ReuseProfile {
            block_size: 64,
            patterns: vec![
                pattern(0, 1, 2, &[5, 5, 9]),
                pattern(0, 3, 2, &[100]),
                pattern(1, 1, 4, &[7]),
            ],
            cold: vec![2, 1],
            total_accesses: 8,
            distinct_blocks: 3,
            sampling: None,
        }
    }

    #[test]
    fn per_sink_and_per_carrier_queries() {
        let p = profile();
        assert_eq!(p.patterns_for_sink(RefId(0)).count(), 2);
        assert_eq!(p.patterns_carried_by(ScopeId(2)).count(), 2);
        assert_eq!(p.cold_of(RefId(0)), 2);
        assert_eq!(p.cold_of(RefId(9)), 0);
        assert_eq!(p.total_cold(), 3);
        assert_eq!(p.total_reuses(), 5);
        assert!(p.accesses_balance());
    }

    #[test]
    fn merged_histogram_sums_sink_patterns() {
        let p = profile();
        let h = p.merged_histogram_for_sink(RefId(0));
        assert_eq!(h.total(), 4);
    }
}
