//! Crash-safe analyzer snapshots: the checkpoint format behind
//! [`analyze_buffer_checkpointed`](crate::analyze_buffer_checkpointed).
//!
//! A snapshot freezes one grain's full mid-stream analyzer state — clock,
//! block table, order-statistic structure, recent-access window, scope
//! stack, per-pattern histograms, cold counts, and (in sampled mode) the
//! sampling books — so an analysis killed at any point can resume from the
//! newest valid checkpoint and finish with a profile **bit-identical** to
//! an uninterrupted run.
//!
//! ## Frame layout
//!
//! ```text
//! +--------+---------+----------------------+----------------------+
//! | magic  | version | header frame         | state frame          |
//! | RLSNAP | u16 LE  | u32 len, u32 crc, .. | u32 len, u32 crc, .. |
//! +--------+---------+----------------------+----------------------+
//! ```
//!
//! Both frames are length-prefixed and guarded by a CRC-32 (IEEE) over
//! their payload, so torn writes, truncation, bit rot and trailing
//! garbage are all detected before any state byte is interpreted. The
//! header frame carries the resume metadata (grain, mode, events and
//! accesses already consumed, reference count); the state frame carries
//! the analyzer payload. All integers are little-endian and fixed-width:
//! the encoding of a given state is deterministic byte for byte.
//!
//! Derivable state is never serialized — Fenwick trees, hash indexes,
//! hot-entry hints, spatial hashes and the sampled order-statistic tree
//! are all rebuilt on decode — which keeps snapshots small and removes a
//! whole class of internally-inconsistent-snapshot corruption.
//!
//! ## Version policy
//!
//! [`SNAPSHOT_VERSION`] is bumped on any layout change; a reader rejects
//! other versions with [`SnapshotError::UnsupportedVersion`] rather than
//! guessing. There is no in-place migration: a checkpoint is a cache of
//! resumable progress, and the fallback for a version-skewed file is the
//! same as for a corrupt one — try the next-newest checkpoint, or start
//! the analysis over.
//!
//! ## Atomic-rename protocol
//!
//! Writers never expose a torn file under a valid name: the snapshot is
//! encoded fully in memory, written to a dot-prefixed temporary in the
//! same directory, then published with [`std::fs::rename`] (atomic on
//! POSIX). A crash mid-write leaves only a `.tmp` file the resume scan
//! ignores; a crash between write and rename leaves the previous
//! checkpoint as the newest valid one. The threat model is a dying
//! *process* (the rename is not fsync-durable against power loss).

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current snapshot format version; see the module docs for the policy.
pub const SNAPSHOT_VERSION: u16 = 1;

/// File magic, the first six bytes of every snapshot.
const MAGIC: [u8; 6] = *b"RLSNAP";

/// File-name extension of published snapshots.
const EXT: &str = ".rlsnap";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data` — the checksum guarding each snapshot frame.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Why a snapshot could not be written, read, or decoded. Every variant
/// that concerns the bytes of a file carries the byte offset at which the
/// problem was found, mirroring the trace decoder's diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A filesystem operation failed while writing or reading a snapshot.
    Io {
        /// What was being attempted ("create", "write", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// The file ends before the bytes the format requires — a torn or
    /// truncated write.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: u64,
        /// Bytes the decoder needed at that offset.
        needed: u64,
        /// Bytes actually available there.
        have: u64,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u16,
        /// Version this build reads.
        supported: u16,
    },
    /// A frame's checksum does not match its payload.
    CrcMismatch {
        /// Which frame ("header" or "state").
        frame: &'static str,
        /// Byte offset of the frame's payload.
        offset: u64,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The bytes decode but violate a structural invariant of the state
    /// they claim to encode.
    Corrupt {
        /// Byte offset at which the invariant was found violated.
        offset: u64,
        /// What was wrong.
        what: String,
    },
    /// The snapshot is internally valid but does not belong to this run —
    /// wrong grain, wrong program shape, or more progress than the trace
    /// being resumed actually contains.
    Mismatch {
        /// What disagreed.
        what: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, path, message } => {
                write!(f, "snapshot {op} failed for {}: {message}", path.display())
            }
            SnapshotError::Truncated {
                offset,
                needed,
                have,
            } => write!(
                f,
                "snapshot truncated at byte {offset}: needed {needed} more bytes, found {have}"
            ),
            SnapshotError::BadMagic => f.write_str("not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::CrcMismatch {
                frame,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "snapshot {frame} frame checksum mismatch at byte {offset}: \
                 stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Corrupt { offset, what } => {
                write!(f, "corrupt snapshot at byte {offset}: {what}")
            }
            SnapshotError::Mismatch { what } => {
                write!(f, "snapshot does not match this analysis: {what}")
            }
        }
    }
}

impl Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Little-endian byte encoder for snapshot payloads.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Validating little-endian decoder over one frame's payload. `base` is
/// the payload's byte offset within the file, so every diagnostic carries
/// an absolute file offset.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8], base: u64) -> Dec<'a> {
        Dec { data, pos: 0, base }
    }

    /// Absolute file offset of the next byte to decode.
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let have = self.data.len() - self.pos;
        if have < n {
            return Err(SnapshotError::Truncated {
                offset: self.offset(),
                needed: n as u64,
                have: have as u64,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length prefix about to drive a `Vec` allocation. Rejects any
    /// count that could not possibly fit in the bytes remaining (each
    /// element needs at least `min_elem_bytes`), so a corrupted length
    /// cannot cause an absurd allocation before the data runs out.
    pub(crate) fn len(&mut self, min_elem_bytes: u64) -> Result<usize, SnapshotError> {
        let at = self.offset();
        let n = self.u64()?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: format!(
                    "length {n} cannot fit in the {remaining} bytes remaining"
                ),
            });
        }
        Ok(n as usize)
    }

    /// Fails unless every payload byte has been consumed — a decoded
    /// frame with leftover bytes is corruption, not padding.
    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.data.len() {
            return Err(SnapshotError::Corrupt {
                offset: self.offset(),
                what: format!("{} unconsumed bytes at end of frame", self.data.len() - self.pos),
            });
        }
        Ok(())
    }

    /// Builds a [`SnapshotError::Corrupt`] at the current offset.
    pub(crate) fn corrupt(&self, what: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            offset: self.offset(),
            what: what.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Header + frame assembly
// ---------------------------------------------------------------------------

/// Resume metadata carried by a snapshot's header frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SnapshotHeader {
    /// Grain (block size) the snapshotted analyzer measures at.
    pub(crate) block_size: u64,
    /// True when the state frame holds a sampled analyzer.
    pub(crate) sampled: bool,
    /// Trace events already consumed when the snapshot was taken.
    pub(crate) events_replayed: u64,
    /// Memory accesses among those events (the global access clock).
    pub(crate) accesses_replayed: u64,
    /// Number of static references the analyzer was sized for.
    pub(crate) nrefs: u32,
}

impl SnapshotHeader {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.block_size);
        e.u8(u8::from(self.sampled));
        e.u64(self.events_replayed);
        e.u64(self.accesses_replayed);
        e.u32(self.nrefs);
    }

    fn decode(d: &mut Dec<'_>) -> Result<SnapshotHeader, SnapshotError> {
        let at = d.offset();
        let block_size = d.u64()?;
        if !block_size.is_power_of_two() {
            return Err(SnapshotError::Corrupt {
                offset: at,
                what: format!("block size {block_size} is not a power of two"),
            });
        }
        let sampled = match d.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(d.corrupt(format!("unknown analyzer mode byte {other}")));
            }
        };
        let events_replayed = d.u64()?;
        let accesses_replayed = d.u64()?;
        if accesses_replayed > events_replayed {
            return Err(d.corrupt(format!(
                "{accesses_replayed} accesses exceed {events_replayed} events"
            )));
        }
        let nrefs = d.u32()?;
        Ok(SnapshotHeader {
            block_size,
            sampled,
            events_replayed,
            accesses_replayed,
            nrefs,
        })
    }
}

/// What a snapshot file claims to contain, decoded (and fully
/// CRC-verified) without reconstructing the analyzer. This is the
/// cheapest full-integrity check for a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Format version of the file.
    pub version: u16,
    /// Grain the snapshot belongs to.
    pub block_size: u64,
    /// True when the snapshot holds a sampled analyzer.
    pub sampled: bool,
    /// Trace events already consumed at the checkpoint.
    pub events_replayed: u64,
    /// Memory accesses among those events.
    pub accesses_replayed: u64,
}

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Assembles a complete snapshot file image from the two frame payloads.
pub(crate) fn encode_snapshot(header: &SnapshotHeader, state: &[u8]) -> Vec<u8> {
    let mut henc = Enc::new();
    header.encode(&mut henc);
    let mut out = Vec::with_capacity(8 + 8 + henc.buf.len() + 8 + state.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    push_frame(&mut out, &henc.buf);
    push_frame(&mut out, state);
    out
}

/// Reads one length-prefixed, CRC-guarded frame starting at `pos`.
fn read_frame<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    frame: &'static str,
) -> Result<Dec<'a>, SnapshotError> {
    let need = |offset: usize, n: usize| -> Result<(), SnapshotError> {
        if bytes.len() < offset + n {
            return Err(SnapshotError::Truncated {
                offset: offset as u64,
                needed: n as u64,
                have: (bytes.len() - offset.min(bytes.len())) as u64,
            });
        }
        Ok(())
    };
    need(*pos, 8)?;
    let len =
        u32::from_le_bytes([bytes[*pos], bytes[*pos + 1], bytes[*pos + 2], bytes[*pos + 3]])
            as usize;
    let stored = u32::from_le_bytes([
        bytes[*pos + 4],
        bytes[*pos + 5],
        bytes[*pos + 6],
        bytes[*pos + 7],
    ]);
    let payload_at = *pos + 8;
    need(payload_at, len)?;
    let payload = &bytes[payload_at..payload_at + len];
    let computed = crc32(payload);
    if computed != stored {
        return Err(SnapshotError::CrcMismatch {
            frame,
            offset: payload_at as u64,
            stored,
            computed,
        });
    }
    *pos = payload_at + len;
    Ok(Dec::new(payload, payload_at as u64))
}

/// Splits a snapshot file image into its verified header and state
/// decoders. Checks magic, version, both lengths, both CRCs, and that no
/// garbage trails the last frame.
pub(crate) fn decode_snapshot(
    bytes: &[u8],
) -> Result<(SnapshotHeader, Dec<'_>), SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated {
            offset: 0,
            needed: 8,
            have: bytes.len() as u64,
        });
    }
    if bytes[..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let mut pos = 8usize;
    let mut hdec = read_frame(bytes, &mut pos, "header")?;
    let sdec = read_frame(bytes, &mut pos, "state")?;
    if pos != bytes.len() {
        return Err(SnapshotError::Corrupt {
            offset: pos as u64,
            what: format!("{} bytes of trailing garbage after the state frame", bytes.len() - pos),
        });
    }
    let header = SnapshotHeader::decode(&mut hdec)?;
    hdec.finish()?;
    Ok((header, sdec))
}

/// Decodes and fully verifies a snapshot image's framing and header
/// without reconstructing the analyzer state.
///
/// # Errors
///
/// Any framing, checksum, version, or header-structure problem, with
/// byte-offset diagnostics.
pub fn snapshot_meta(bytes: &[u8]) -> Result<SnapshotMeta, SnapshotError> {
    let (h, _) = decode_snapshot(bytes)?;
    Ok(SnapshotMeta {
        version: SNAPSHOT_VERSION,
        block_size: h.block_size,
        sampled: h.sampled,
        events_replayed: h.events_replayed,
        accesses_replayed: h.accesses_replayed,
    })
}

// ---------------------------------------------------------------------------
// File protocol
// ---------------------------------------------------------------------------

/// The published file name of a grain's checkpoint at `events` consumed
/// events. Events are zero-padded so lexicographic order is progress
/// order.
pub fn snapshot_file_name(block_size: u64, events: u64) -> String {
    format!("ckpt-g{block_size}-{events:020}{EXT}")
}

/// Parses a published snapshot file name for the given grain back into
/// its event count. Temporary (dot-prefixed) files, other grains' files,
/// and unrelated names all return `None`.
pub(crate) fn parse_snapshot_file_name(name: &str, block_size: u64) -> Option<u64> {
    let rest = name.strip_prefix(&format!("ckpt-g{block_size}-"))?;
    let digits = rest.strip_suffix(EXT)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Publishes a snapshot image under the grain's checkpoint name via the
/// temp-file + atomic-rename protocol (see the module docs). Returns the
/// published path.
pub(crate) fn write_snapshot_file(
    dir: &Path,
    block_size: u64,
    events: u64,
    bytes: &[u8],
) -> Result<PathBuf, SnapshotError> {
    fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, &e))?;
    let tmp = dir.join(format!(".ckpt-g{block_size}-{events:020}.tmp"));
    let publish = dir.join(snapshot_file_name(block_size, events));
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
    f.write_all(bytes).map_err(|e| io_err("write", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, &publish).map_err(|e| io_err("rename", &publish, &e))?;
    Ok(publish)
}

/// Every published checkpoint of the given grain in `dir`, newest (most
/// events) first. A missing directory is an empty list, not an error.
pub(crate) fn list_snapshots(
    dir: &Path,
    block_size: u64,
) -> Result<Vec<(u64, PathBuf)>, SnapshotError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("read dir", dir, &e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(events) = parse_snapshot_file_name(name, block_size) {
            out.push((events, entry.path()));
        }
    }
    out.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(out)
}

/// Reads a snapshot file's bytes, mapping I/O failures into the taxonomy.
pub(crate) fn read_snapshot_bytes(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    fs::read(path).map_err(|e| io_err("read", path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::ReuseAnalyzer;
    use crate::histogram::Histogram;
    use crate::ostree::OrderStatTree;
    use crate::sampling::{SampledAnalyzer, SamplingConfig};
    use crate::timebits::TimeBits;
    use reuselens_ir::{AccessKind, ProgramBuilder, RefId};
    use reuselens_prng::SplitMix64;
    use reuselens_trace::TraceSink;

    fn header() -> SnapshotHeader {
        SnapshotHeader {
            block_size: 64,
            sampled: false,
            events_replayed: 1234,
            accesses_replayed: 1000,
            nrefs: 3,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let bytes = encode_snapshot(&header(), &[1, 2, 3, 4, 5]);
        let (h, mut sdec) = decode_snapshot(&bytes).unwrap();
        assert_eq!(h, header());
        for want in 1u8..=5 {
            assert_eq!(sdec.u8().unwrap(), want);
        }
        sdec.finish().unwrap();
        let meta = snapshot_meta(&bytes).unwrap();
        assert_eq!(meta.version, SNAPSHOT_VERSION);
        assert_eq!(meta.block_size, 64);
        assert_eq!(meta.events_replayed, 1234);
        assert_eq!(meta.accesses_replayed, 1000);
        assert!(!meta.sampled);
    }

    /// Every strict prefix of a valid snapshot is rejected with a typed
    /// error — truncation at *any* byte boundary is caught.
    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&header(), &[9; 40]);
        for keep in 0..bytes.len() {
            let err = snapshot_meta(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::CrcMismatch { .. }
                ),
                "prefix {keep}: unexpected {err}"
            );
        }
    }

    /// Every single-bit flip anywhere in a snapshot is rejected — the
    /// magic, version, lengths, CRCs and payloads are all covered.
    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = encode_snapshot(&header(), &[7; 24]);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    snapshot_meta(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_and_version_skew_are_typed() {
        let mut bytes = encode_snapshot(&header(), &[7; 8]);
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            snapshot_meta(&bytes).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));

        let mut skewed = encode_snapshot(&header(), &[7; 8]);
        skewed[6] = 0xFF;
        assert!(matches!(
            snapshot_meta(&skewed).unwrap_err(),
            SnapshotError::UnsupportedVersion { found, supported: SNAPSHOT_VERSION }
                if found == u16::from_le_bytes([0xFF, 0x00])
        ));

        assert!(matches!(
            snapshot_meta(b"NOTSNAPxxxxxxxxxxxxx").unwrap_err(),
            SnapshotError::BadMagic
        ));
    }

    #[test]
    fn file_names_round_trip_and_sort_by_progress() {
        let name = snapshot_file_name(4096, 1_000_000);
        assert_eq!(parse_snapshot_file_name(&name, 4096), Some(1_000_000));
        assert_eq!(parse_snapshot_file_name(&name, 64), None);
        assert_eq!(parse_snapshot_file_name(".ckpt-g64-00.tmp", 64), None);
        assert_eq!(parse_snapshot_file_name("ckpt-g64-12.rlsnap", 64), None);
        let early = snapshot_file_name(64, 999);
        let late = snapshot_file_name(64, 1_000_000_000_000);
        assert!(early < late, "zero padding must make names sort by events");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // a length that cannot possibly fit
        let mut d = Dec::new(&e.buf, 0);
        assert!(matches!(
            d.len(8),
            Err(SnapshotError::Corrupt { offset: 0, .. })
        ));
    }

    // -- Satellite: per-component round-trip property suites (256 seeds) --

    const COMPONENT_SEEDS: u64 = 256;

    /// `TimeBits` snapshot parts rebuild an equivalent structure: same
    /// length and identical `count_greater` at every probe, across random
    /// monotone + sparse workloads.
    #[test]
    fn timebits_round_trips_across_seeds() {
        for seed in 0..COMPONENT_SEEDS {
            let mut rng = SplitMix64::seed_from_u64(0x7b17_5000 + seed);
            let mut bits = TimeBits::new();
            let mut live = Vec::new();
            let mut next = rng.gen_range(1..50_000);
            for _ in 0..rng.gen_range(1..300) {
                next += rng.gen_range(1..200);
                bits.insert(next);
                live.push(next);
                if !live.is_empty() && rng.gen_f64() < 0.3 {
                    let i = rng.gen_range(0..live.len() as u64) as usize;
                    bits.remove(live.swap_remove(i));
                }
            }
            let (words, base, len) = bits.snapshot_parts();
            let words = words.to_vec();
            let again = TimeBits::from_snapshot_parts(words.clone(), base, len)
                .unwrap_or_else(|| panic!("seed {seed}: valid parts rejected"));
            assert_eq!(again.len(), bits.len(), "seed {seed}");
            for _ in 0..64 {
                let probe = rng.gen_range(0..next + 100);
                assert_eq!(
                    again.count_greater(probe),
                    bits.count_greater(probe),
                    "seed {seed} probe {probe}"
                );
            }
            // A popcount/len mismatch must be rejected, not repaired.
            if len > 0 {
                assert!(TimeBits::from_snapshot_parts(words, base, len - 1).is_none());
            }
        }
    }

    /// `OrderStatTree` round-trips through `for_each_key` + rebuild: keys
    /// come back in order, and every order-statistic query agrees.
    #[test]
    fn ostree_round_trips_across_seeds() {
        for seed in 0..COMPONENT_SEEDS {
            let mut rng = SplitMix64::seed_from_u64(0x0057_ee00 + seed);
            let mut tree = OrderStatTree::new();
            let mut live = Vec::new();
            for _ in 0..rng.gen_range(1..200) {
                let k = rng.gen_range(0..1 << 20);
                if tree.insert(k) {
                    live.push(k);
                }
                if !live.is_empty() && rng.gen_f64() < 0.25 {
                    let i = rng.gen_range(0..live.len() as u64) as usize;
                    tree.remove(live.swap_remove(i));
                }
            }
            let mut keys = Vec::new();
            tree.for_each_key(|k| keys.push(k));
            assert_eq!(keys.len(), tree.len(), "seed {seed}");
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "seed {seed}: out of order");
            let mut again = OrderStatTree::new();
            for &k in &keys {
                assert!(again.insert(k), "seed {seed}: duplicate key {k}");
            }
            for _ in 0..64 {
                let probe = rng.gen_range(0..1 << 21);
                assert_eq!(
                    again.count_greater(probe),
                    tree.count_greater(probe),
                    "seed {seed} probe {probe}"
                );
            }
        }
    }

    /// `Histogram` round-trips through its public `iter`/`add_n` surface —
    /// the exact encoding the snapshot uses for every pattern histogram.
    #[test]
    fn histogram_round_trips_across_seeds() {
        for seed in 0..COMPONENT_SEEDS {
            let mut rng = SplitMix64::seed_from_u64(0x0004_1570 + seed);
            let mut h = Histogram::new();
            for _ in 0..rng.gen_range(0..400) {
                h.add_n(rng.gen_range(0..1 << 30), rng.gen_range(1..1000));
            }
            let mut again = Histogram::new();
            for (lo, _, count) in h.iter() {
                again.add_n(lo, count);
            }
            assert_eq!(again, h, "seed {seed}");
            assert_eq!(again.total(), h.total(), "seed {seed}");
        }
    }

    fn tiny_program(nrefs: usize) -> reuselens_ir::Program {
        let mut p = ProgramBuilder::new("snapshot_prop");
        let a = p.array("a", 8, &[1]);
        p.routine("main", |r| {
            r.for_("i", 0, 0, |r, i| {
                for _ in 0..nrefs {
                    r.load(a, vec![i.into()]);
                }
            });
        });
        p.finish()
    }

    /// Sampled analyzer (the "sampling books") encode→decode→encode is a
    /// byte fixpoint, and the decoded analyzer finishes into the same
    /// profile — in both fixed and adaptive mode, mid-stream, across
    /// 256 seeds.
    #[test]
    fn sampling_books_round_trip_across_seeds() {
        let program = tiny_program(2);
        for seed in 0..COMPONENT_SEEDS {
            let mut rng = SplitMix64::seed_from_u64(0x5a3_1ed0 + seed);
            let config = if seed % 2 == 0 {
                SamplingConfig::Fixed {
                    inv: rng.gen_range(1..8),
                }
            } else {
                SamplingConfig::Adaptive {
                    budget: rng.gen_range(4..32),
                }
            };
            let mut a = SampledAnalyzer::new(&program, 64, config);
            for _ in 0..rng.gen_range(1..2000) {
                a.access(
                    RefId((rng.gen_range(0..2)) as u32),
                    rng.gen_range(0..1 << 18),
                    8,
                    AccessKind::Load,
                );
            }
            let mut enc = Enc::new();
            a.snapshot_encode(&mut enc);
            let first = enc.buf.clone();
            let mut dec = Dec::new(&first, 0);
            let b = SampledAnalyzer::snapshot_decode(&program, 64, &mut dec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            dec.finish().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut enc2 = Enc::new();
            b.snapshot_encode(&mut enc2);
            assert_eq!(enc2.buf, first, "seed {seed}: encode/decode not a fixpoint");
            assert_eq!(b.finish(), a.finish(), "seed {seed}");
        }
    }

    /// Exact analyzer encode→decode→encode is a byte fixpoint mid-stream,
    /// and the decoded analyzer finishes into the same profile.
    #[test]
    fn exact_analyzer_round_trips_across_seeds() {
        let program = tiny_program(2);
        for seed in 0..COMPONENT_SEEDS {
            let mut rng = SplitMix64::seed_from_u64(0xe8ac_7000 + seed);
            let mut a = ReuseAnalyzer::new(&program, 64);
            for _ in 0..rng.gen_range(1..2000) {
                a.access(
                    RefId((rng.gen_range(0..2)) as u32),
                    rng.gen_range(0..1 << 16),
                    8,
                    AccessKind::Load,
                );
            }
            let mut enc = Enc::new();
            a.snapshot_encode(&mut enc);
            let first = enc.buf.clone();
            let mut dec = Dec::new(&first, 0);
            let b = ReuseAnalyzer::snapshot_decode(&program, 64, &mut dec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            dec.finish().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut enc2 = Enc::new();
            b.snapshot_encode(&mut enc2);
            assert_eq!(enc2.buf, first, "seed {seed}: encode/decode not a fixpoint");
            assert_eq!(b.finish(), a.finish(), "seed {seed}");
        }
    }
}
