//! Opt-in resource budgets for replay analysis.
//!
//! An unattended sweep over a fleet of captures must not let one
//! pathological trace consume the machine: an adversarial or buggy
//! workload can inflate the three resources replay analysis actually
//! grows — events decoded, distinct blocks in the block table, and nodes
//! in the order-statistic tree. An [`AnalysisBudget`] caps any subset of
//! the three; when a cap is crossed the grain stops with a
//! [`BudgetExceeded`] carrying the progress counters at the moment of
//! abandonment, so the caller can report *how far* the analysis got and
//! re-run with a larger budget if the trace is worth it.
//!
//! Budgets are enforced on the guarded replay path (see
//! [`analyze_buffer_with`](crate::analyze_buffer_with)), checked once per
//! decoded batch — cheap enough to leave on for untrusted inputs, precise
//! to within one batch (256 events).

use std::error::Error;
use std::fmt;

/// Which resource cap a [`BudgetExceeded`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetLimit {
    /// Total events replayed.
    Events,
    /// Distinct blocks entered into the block table.
    DistinctBlocks,
    /// Live nodes in the order-statistic tree.
    TreeNodes,
}

impl fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetLimit::Events => "events",
            BudgetLimit::DistinctBlocks => "distinct blocks",
            BudgetLimit::TreeNodes => "tree nodes",
        })
    }
}

/// Progress counters at a budget check, reported inside
/// [`BudgetExceeded`] so an abandoned grain still tells the operator how
/// far it got.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetProgress {
    /// Events replayed so far (accesses + scope transitions).
    pub events: u64,
    /// Distinct blocks the analyzer has seen.
    pub distinct_blocks: u64,
    /// Current order-statistic tree size.
    pub tree_nodes: u64,
}

/// A replay was abandoned because it crossed a resource cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The cap that tripped.
    pub limit: BudgetLimit,
    /// The configured maximum for that resource.
    pub allowed: u64,
    /// Where the analysis stood when it stopped.
    pub progress: BudgetProgress,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analysis budget exceeded: {} cap {} crossed after {} events \
             ({} distinct blocks, {} tree nodes)",
            self.limit,
            self.allowed,
            self.progress.events,
            self.progress.distinct_blocks,
            self.progress.tree_nodes
        )
    }
}

impl Error for BudgetExceeded {}

/// Opt-in caps on the resources one grain's replay may consume. The
/// default budget is unlimited; set any subset of the caps with the
/// builder methods.
///
/// # Examples
///
/// ```
/// use reuselens_core::AnalysisBudget;
///
/// let budget = AnalysisBudget::unlimited()
///     .with_max_events(1_000_000)
///     .with_max_distinct_blocks(1 << 20);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisBudget {
    /// Maximum events to replay (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Maximum distinct blocks the analyzer may track.
    pub max_distinct_blocks: Option<u64>,
    /// Maximum order-statistic tree nodes.
    pub max_tree_nodes: Option<u64>,
}

impl AnalysisBudget {
    /// A budget with no caps (the default).
    pub fn unlimited() -> AnalysisBudget {
        AnalysisBudget::default()
    }

    /// Caps the number of events replayed.
    pub fn with_max_events(mut self, n: u64) -> AnalysisBudget {
        self.max_events = Some(n);
        self
    }

    /// Caps the number of distinct blocks tracked.
    pub fn with_max_distinct_blocks(mut self, n: u64) -> AnalysisBudget {
        self.max_distinct_blocks = Some(n);
        self
    }

    /// Caps the order-statistic tree size.
    pub fn with_max_tree_nodes(mut self, n: u64) -> AnalysisBudget {
        self.max_tree_nodes = Some(n);
        self
    }

    /// True when no cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none()
            && self.max_distinct_blocks.is_none()
            && self.max_tree_nodes.is_none()
    }

    /// Checks current progress against the caps.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] naming the first cap crossed.
    pub fn check(&self, progress: BudgetProgress) -> Result<(), BudgetExceeded> {
        let caps = [
            (self.max_events, progress.events, BudgetLimit::Events),
            (
                self.max_distinct_blocks,
                progress.distinct_blocks,
                BudgetLimit::DistinctBlocks,
            ),
            (self.max_tree_nodes, progress.tree_nodes, BudgetLimit::TreeNodes),
        ];
        for (cap, used, limit) in caps {
            if let Some(allowed) = cap {
                if used > allowed {
                    return Err(BudgetExceeded {
                        limit,
                        allowed,
                        progress,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = AnalysisBudget::unlimited();
        assert!(b.is_unlimited());
        let huge = BudgetProgress {
            events: u64::MAX,
            distinct_blocks: u64::MAX,
            tree_nodes: u64::MAX,
        };
        assert!(b.check(huge).is_ok());
    }

    #[test]
    fn each_cap_trips_independently() {
        let p = BudgetProgress {
            events: 100,
            distinct_blocks: 50,
            tree_nodes: 25,
        };
        let e = AnalysisBudget::unlimited()
            .with_max_events(99)
            .check(p)
            .unwrap_err();
        assert_eq!(e.limit, BudgetLimit::Events);
        assert_eq!(e.allowed, 99);
        assert_eq!(e.progress, p);
        let e = AnalysisBudget::unlimited()
            .with_max_distinct_blocks(49)
            .check(p)
            .unwrap_err();
        assert_eq!(e.limit, BudgetLimit::DistinctBlocks);
        let e = AnalysisBudget::unlimited()
            .with_max_tree_nodes(24)
            .check(p)
            .unwrap_err();
        assert_eq!(e.limit, BudgetLimit::TreeNodes);
        // Exactly at the cap is still within budget.
        assert!(AnalysisBudget::unlimited().with_max_events(100).check(p).is_ok());
    }

    #[test]
    fn display_reports_progress() {
        let e = AnalysisBudget::unlimited()
            .with_max_events(9)
            .check(BudgetProgress {
                events: 10,
                distinct_blocks: 3,
                tree_nodes: 2,
            })
            .unwrap_err();
        let s = e.to_string();
        assert!(s.contains("events"), "{s}");
        assert!(s.contains("10"), "{s}");
        assert!(s.contains("3 distinct blocks"), "{s}");
    }
}
