//! # reuselens-core — online reuse-distance analysis
//!
//! The primary contribution of the reproduced paper: measuring memory reuse
//! distance *per reuse pattern*. A reuse pattern is the triple
//! *(sink reference, source scope, carrying scope)*:
//!
//! * the **sink** is the reference at the destination end of a reuse arc;
//! * the **source scope** is where the block was last accessed before;
//! * the **carrying scope** is the innermost dynamic scope active across
//!   the whole reuse interval — the loop that *drives* the reuse, and the
//!   one a transformation must target to shorten the distance.
//!
//! The machinery follows the paper exactly:
//!
//! * a logical **access clock** incremented per memory operation;
//! * a [three-level hierarchical block table](BlockTable) mapping each
//!   block to its last access time and last accessor;
//! * a [balanced order-statistic tree](OrderStatTree) that counts the
//!   distinct blocks accessed since any past time in `O(log M)`;
//! * a [dynamic scope stack](ScopeStack) searched for the carrying scope;
//! * per-pattern [histograms](Histogram) with logarithmic bins.
//!
//! Start with [`analyze_program`] for the one-call API, or
//! [`analyze_program_parallel`] to interpret the program once into a
//! compact trace buffer and replay it concurrently — one thread per block
//! granularity, with bit-identical profiles. Or drive a
//! [`ReuseAnalyzer`] / [`MultiGrainAnalyzer`] through
//! [`reuselens_trace::Executor`] yourself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod analyzer;
mod blocktable;
mod budget;
mod context;
mod histogram;
pub mod oracle;
mod ostree;
mod partition;
mod patterns;
mod reference;
mod sampling;
mod scopestack;
mod serialize;
mod snapshot;
mod spatial;
mod timebits;

pub use analyze::{
    analyze_buffer, analyze_buffer_checkpointed, analyze_buffer_with, analyze_program,
    analyze_program_degraded, analyze_program_parallel, analyze_program_parallel_with,
    capture_program, AnalysisError, AnalysisResult, AnalysisStats,
    AnalyzeOptions, CheckpointOptions, FailureReport, GrainError, PartialAnalysis, ReplayTiming,
};
pub use analyzer::{MultiGrainAnalyzer, ReuseAnalyzer};
pub use partition::ReplayThreads;
pub use reference::ReferenceAnalyzer;
pub use budget::{AnalysisBudget, BudgetExceeded, BudgetLimit, BudgetProgress};
pub use blocktable::{BlockEntry, BlockTable, MAX_BLOCKS};
pub use context::{ContextAnalyzer, ContextId, ContextProfile, CtxPattern, CtxPatternKey};
pub use histogram::Histogram;
pub use ostree::OrderStatTree;
pub use patterns::{PatternKey, ReusePattern, ReuseProfile};
pub use sampling::{SampledAnalyzer, SamplingConfig, SamplingInfo};
pub use scopestack::ScopeStack;
pub use snapshot::{snapshot_file_name, snapshot_meta, SnapshotError, SnapshotMeta, SNAPSHOT_VERSION};
pub use timebits::TimeBits;
pub use serialize::{read_profiles, write_profiles, ReadError, SavedProfiles};
pub use spatial::{measure_spatial, ArraySpatial, SpatialProfile, SpatialSink};
