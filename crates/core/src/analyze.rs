//! One-call program analysis: execute a program once, measure reuse at
//! several granularities.

use crate::analyzer::MultiGrainAnalyzer;
use crate::patterns::ReuseProfile;
use reuselens_ir::{ArrayId, Program};
use reuselens_trace::{ExecError, ExecReport, Executor};

/// The result of [`analyze_program`]: reuse profiles (one per granularity,
/// in request order) plus the executor's dynamic statistics (loop trip
/// counts, access totals).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// One profile per requested block size.
    pub profiles: Vec<ReuseProfile>,
    /// Dynamic execution statistics.
    pub exec: ExecReport,
}

impl AnalysisResult {
    /// The profile measured at the given block size.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }
}

/// Executes `program` once and measures reuse distances at every requested
/// block size. Index arrays (for indirect accesses) are supplied as
/// `(array, contents)` pairs.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the executor (out-of-bounds access,
/// missing index data).
///
/// # Examples
///
/// ```
/// use reuselens_core::analyze_program;
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[256]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 2, |r, _| {
///         r.for_("i", 0, 255, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let result = analyze_program(&prog, &[64, 4096], vec![])?;
/// assert_eq!(result.profiles.len(), 2);
/// assert_eq!(result.exec.accesses, 3 * 256);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn analyze_program(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<AnalysisResult, ExecError> {
    let mut analyzer = MultiGrainAnalyzer::new(program, block_sizes);
    let mut exec = Executor::new(program);
    for (arr, data) in index_arrays {
        exec.set_index_array(arr, data);
    }
    let report = exec.run(&mut analyzer)?;
    Ok(AnalysisResult {
        profiles: analyzer.finish(),
        exec: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};

    #[test]
    fn analyze_program_with_index_arrays() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.for_("i", 0, 7, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..8).map(|i| (i * 7) % 64).collect();
        let result = analyze_program(&prog, &[64], vec![(ix, idx)]).unwrap();
        assert_eq!(result.profiles[0].total_accesses, 8);
        assert!(result.profile_at(64).is_some());
        assert!(result.profile_at(128).is_none());
    }

    #[test]
    fn missing_index_array_surfaces_error() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::load(ix, vec![Expr::c(0)])]);
        });
        let prog = p.finish();
        assert!(analyze_program(&prog, &[64], vec![]).is_err());
    }
}
