//! One-call program analysis: execute a program once, measure reuse at
//! several granularities.
//!
//! Two pipelines produce bit-identical profiles:
//!
//! * **Online** ([`analyze_program`]) — every grain's analyzer observes the
//!   event stream while the program is interpreted, as the paper's
//!   instrumented binaries do.
//! * **Capture + replay** ([`analyze_program_parallel`]) — the program is
//!   interpreted exactly once into a compact [`TraceBuffer`]; each grain
//!   then replays the buffer on its own thread. Decoding the buffer is far
//!   cheaper than re-interpreting the program, and the per-grain analyzers
//!   share nothing, so the replays are embarrassingly parallel.
//!
//! The replay pipeline can additionally run each grain through the
//! constant-space [`SampledAnalyzer`] instead of the exact analyzer: set
//! [`AnalyzeOptions::sampling`] and use [`analyze_buffer_with`],
//! [`analyze_program_parallel_with`], or [`analyze_program_degraded`].
//! Exact mode stays the default and its output is bit-identical to a
//! build without the knob.
//!
//! ## Fault tolerance
//!
//! The replay pipeline is built to run unattended over full application
//! executions, so a failing grain must not take the run down with it:
//!
//! * every grain thread runs under `catch_unwind` — a panic in one grain's
//!   analyzer never aborts the process or discards sibling grains;
//! * [`analyze_buffer_with`] degrades gracefully: failed grains come back
//!   as per-grain [`FailureReport`]s inside a [`PartialAnalysis`], after a
//!   sequential single-grain retry pass (transient panics get one more
//!   chance on an otherwise idle machine before the grain is declared
//!   dead);
//! * [`AnalyzeOptions`] can route replay through the validating decoder
//!   ([`TraceBuffer::try_replay`]) and enforce an [`AnalysisBudget`], so
//!   corrupted captures surface as [`DecodeError`]s and runaway traces
//!   stop with [`BudgetExceeded`] — both carrying diagnostics, neither
//!   panicking;
//! * the strict entry points ([`analyze_buffer`],
//!   [`analyze_program_parallel`]) return `Result` and map the first grain
//!   failure into an [`AnalysisError`].

use crate::analyzer::{MultiGrainAnalyzer, ReuseAnalyzer};
use crate::budget::{AnalysisBudget, BudgetExceeded, BudgetProgress};
use crate::partition::{replay_partitioned, ReplayThreads};
use crate::patterns::ReuseProfile;
use crate::sampling::{SampledAnalyzer, SamplingConfig};
use crate::snapshot::{
    decode_snapshot, encode_snapshot, list_snapshots, read_snapshot_bytes, write_snapshot_file,
    Dec, Enc, SnapshotError, SnapshotHeader,
};
use reuselens_ir::{AccessKind, ArrayId, Program, RefId, ScopeId};
use reuselens_obs as obs;
use reuselens_trace::{
    AccessRecord, BufferStats, DecodeError, Event, ExecError, ExecReport, Executor, SegmentState,
    SoaBatch, TraceBuffer, TraceSink,
};
use std::error::Error;
use std::fmt;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Events per batch on the guarded (validated / budgeted) replay path;
/// matches the trace buffer's internal batching.
const GUARDED_BATCH: usize = 256;

/// Why one grain's replay failed. Deterministic failures (decode, budget)
/// are not retried; panics get one sequential retry before the grain is
/// declared dead.
#[derive(Debug, Clone, PartialEq)]
pub enum GrainError {
    /// The grain's replay thread panicked; the payload's message, or
    /// `"unknown panic payload"` when the payload was not a string.
    Panicked(String),
    /// The validating decoder rejected the buffer.
    Decode(DecodeError),
    /// The grain crossed its resource budget.
    Budget(BudgetExceeded),
}

impl fmt::Display for GrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrainError::Panicked(msg) => write!(f, "replay thread panicked: {msg}"),
            GrainError::Decode(e) => write!(f, "trace decode failed: {e}"),
            GrainError::Budget(e) => e.fmt(f),
        }
    }
}

impl Error for GrainError {}

/// Error from the strict analysis entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The capture run failed in the executor.
    Exec(ExecError),
    /// The validating decoder rejected the trace buffer.
    Decode(DecodeError),
    /// A grain crossed its resource budget.
    Budget(BudgetExceeded),
    /// A grain's replay thread panicked (after the retry pass).
    GrainPanicked {
        /// Block size of the failed grain.
        block_size: u64,
        /// Panic message, or `"unknown panic payload"`.
        message: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Exec(e) => e.fmt(f),
            AnalysisError::Decode(e) => write!(f, "trace decode failed: {e}"),
            AnalysisError::Budget(e) => e.fmt(f),
            AnalysisError::GrainPanicked {
                block_size,
                message,
            } => write!(f, "replay thread for grain {block_size} panicked: {message}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Exec(e) => Some(e),
            AnalysisError::Decode(e) => Some(e),
            AnalysisError::Budget(e) => Some(e),
            AnalysisError::GrainPanicked { .. } => None,
        }
    }
}

impl From<ExecError> for AnalysisError {
    fn from(e: ExecError) -> AnalysisError {
        AnalysisError::Exec(e)
    }
}

impl From<DecodeError> for AnalysisError {
    fn from(e: DecodeError) -> AnalysisError {
        AnalysisError::Decode(e)
    }
}

impl From<BudgetExceeded> for AnalysisError {
    fn from(e: BudgetExceeded) -> AnalysisError {
        AnalysisError::Budget(e)
    }
}

/// The result of [`analyze_program`]: reuse profiles (one per granularity,
/// in request order) plus the executor's dynamic statistics (loop trip
/// counts, access totals).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// One profile per requested block size.
    pub profiles: Vec<ReuseProfile>,
    /// Dynamic execution statistics.
    pub exec: ExecReport,
}

impl AnalysisResult {
    /// The profile measured at the given block size.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }
}

/// Executes `program` once and measures reuse distances at every requested
/// block size. Index arrays (for indirect accesses) are supplied as
/// `(array, contents)` pairs.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the executor (out-of-bounds access,
/// missing index data).
///
/// # Examples
///
/// ```
/// use reuselens_core::analyze_program;
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[256]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 2, |r, _| {
///         r.for_("i", 0, 255, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let result = analyze_program(&prog, &[64, 4096], vec![])?;
/// assert_eq!(result.profiles.len(), 2);
/// assert_eq!(result.exec.accesses, 3 * 256);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn analyze_program(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<AnalysisResult, ExecError> {
    let mut analyzer = MultiGrainAnalyzer::new(program, block_sizes);
    let mut exec = Executor::new(program);
    for (arr, data) in index_arrays {
        exec.set_index_array(arr, data);
    }
    let report = exec.run(&mut analyzer)?;
    Ok(AnalysisResult {
        profiles: analyzer.finish(),
        exec: report,
    })
}

/// Wall-clock and buffer statistics from a capture + parallel-replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisStats {
    /// Time to interpret the program once into the trace buffer.
    pub capture_wall: Duration,
    /// Size and compression statistics of the captured buffer.
    pub buffer: BufferStats,
    /// Per-grain replay wall time, in request order. Each entry is the time
    /// the grain's own thread spent decoding the buffer and updating its
    /// analyzer; the slowest entry bounds the parallel phase.
    pub replays: Vec<ReplayTiming>,
}

/// Wall time one grain's replay thread took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayTiming {
    /// The grain (block size in bytes) this thread analyzed.
    pub block_size: u64,
    /// Time spent replaying the buffer through that grain's analyzer.
    pub wall: Duration,
}

/// Interprets `program` exactly once and returns the captured trace plus
/// the executor's report. The buffer can then be replayed any number of
/// times — per grain, per experiment — without re-interpreting.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the executor.
pub fn capture_program(
    program: &Program,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(TraceBuffer, ExecReport), ExecError> {
    let mut buffer = TraceBuffer::new();
    let mut exec = Executor::new(program);
    for (arr, data) in index_arrays {
        exec.set_index_array(arr, data);
    }
    let report = {
        let _span = obs::span(obs::Stage::Capture);
        exec.run(&mut buffer)?
    };
    let stats = buffer.stats();
    obs::add(obs::Counter::EventsCaptured, stats.events);
    obs::add(obs::Counter::AccessesCaptured, stats.accesses);
    obs::add(obs::Counter::BytesEncoded, stats.encoded_bytes);
    Ok((buffer, report))
}

/// Knobs for the fault-tolerant replay pipeline
/// ([`analyze_buffer_with`] / [`analyze_program_degraded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Resource caps per grain; unlimited by default.
    pub budget: AnalysisBudget,
    /// Route replay through the validating decoder even with an unlimited
    /// budget (budgeted replay always validates). Off by default: buffers
    /// captured in-process are trusted and take the unchecked fast path.
    pub validate: bool,
    /// Retry a *panicked* grain once, sequentially, before declaring it
    /// dead. Deterministic failures (decode, budget) are never retried.
    /// On by default.
    pub retry: bool,
    /// How to sample the block stream. [`SamplingConfig::Exact`] (the
    /// default) runs the exact analyzer and produces output bit-identical
    /// to a pipeline without this knob; any other setting replays through
    /// the constant-space [`SampledAnalyzer`] and marks each profile with
    /// its [`SamplingInfo`](crate::SamplingInfo).
    pub sampling: SamplingConfig,
    /// How many threads one grain's replay may split across
    /// ([`ReplayThreads::Serial`] by default). When this resolves to more
    /// than one partition, exact and fixed-rate-sampled replays run the
    /// time-partitioned engine (see [`crate::ReplayThreads`]) with
    /// bit-identical output; adaptive sampling is inherently sequential
    /// and falls back to serial replay.
    pub replay_threads: ReplayThreads,
    /// Daemon job this replay runs on behalf of, threaded verbatim into
    /// every [`FailureReport`] and `grain_failed` telemetry event so a
    /// multi-tenant daemon can attribute failures to the request that
    /// caused them. `None` — every non-daemon run — renders nothing.
    pub job: Option<String>,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            budget: AnalysisBudget::unlimited(),
            validate: false,
            retry: true,
            sampling: SamplingConfig::Exact,
            replay_threads: ReplayThreads::Serial,
            job: None,
        }
    }
}

/// One grain's failure, reported inside a [`PartialAnalysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// Block size of the grain that failed.
    pub block_size: u64,
    /// Why it failed (the error from the final attempt).
    pub error: GrainError,
    /// Whether a sequential retry was attempted before declaring the
    /// grain dead.
    pub retried: bool,
    /// Trace events the grain had processed when the final attempt
    /// failed — how far the replay got before dying, so degraded and
    /// resumed runs can report exact progress instead of discarding it.
    /// Counted at batch granularity on the fast path.
    pub events: u64,
    /// Daemon job the grain was replayed for ([`AnalyzeOptions::job`]);
    /// `None` outside the daemon. Carried through the degradation path so
    /// failure attribution survives retry and fold-in.
    pub job: Option<String>,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grain {}: {}{}",
            self.block_size,
            self.error,
            if self.retried { " (after retry)" } else { "" }
        )
    }
}

/// The degraded result of a fault-tolerant replay: profiles for every
/// grain that survived, and a [`FailureReport`] for every grain that did
/// not. Healthy grains are never discarded because a sibling failed.
///
/// A `PartialAnalysis` promises:
///
/// * `profiles` and `replays` are index-aligned and keep request order
///   (failed grains are simply absent);
/// * every requested grain appears **exactly once** — either in
///   `profiles` or in `failures`;
/// * each surviving profile is bit-identical to what a fully healthy run
///   would have produced for that grain (replays share nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAnalysis {
    /// Profiles of the grains that completed, in request order.
    pub profiles: Vec<ReuseProfile>,
    /// Replay timings for the completed grains, index-aligned with
    /// `profiles`.
    pub replays: Vec<ReplayTiming>,
    /// One report per failed grain, in request order.
    pub failures: Vec<FailureReport>,
}

impl PartialAnalysis {
    /// True when every requested grain completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The surviving profile at the given block size.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }

    /// The failure report for the given block size, if that grain died.
    pub fn failure_at(&self, block_size: u64) -> Option<&FailureReport> {
        self.failures.iter().find(|f| f.block_size == block_size)
    }

    /// Converts to the strict shape, failing on the first dead grain.
    ///
    /// # Errors
    ///
    /// Returns the first failure as an [`AnalysisError`].
    pub fn into_strict(self) -> Result<(Vec<ReuseProfile>, Vec<ReplayTiming>), AnalysisError> {
        match self.failures.into_iter().next() {
            None => Ok((self.profiles, self.replays)),
            Some(f) => Err(match f.error {
                GrainError::Decode(e) => AnalysisError::Decode(e),
                GrainError::Budget(e) => AnalysisError::Budget(e),
                GrainError::Panicked(message) => AnalysisError::GrainPanicked {
                    block_size: f.block_size,
                    message,
                },
            }),
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// One grain's measurement engine: the exact analyzer or its
/// constant-space sampled counterpart, behind one [`TraceSink`] surface so
/// the fast and guarded replay paths serve both modes.
enum GrainAnalyzer {
    Exact(ReuseAnalyzer),
    Sampled(SampledAnalyzer),
}

impl GrainAnalyzer {
    fn new(program: &Program, block_size: u64, sampling: SamplingConfig) -> GrainAnalyzer {
        if sampling.is_exact() {
            GrainAnalyzer::Exact(ReuseAnalyzer::new(program, block_size))
        } else {
            GrainAnalyzer::Sampled(SampledAnalyzer::new(program, block_size, sampling))
        }
    }

    /// Live tracked-block count — the quantity a memory budget bounds.
    /// For the sampled engine this is the *tracked* set, not the scaled
    /// footprint estimate: sampling exists to keep this number small.
    fn tracked_blocks(&self) -> u64 {
        match self {
            GrainAnalyzer::Exact(a) => a.distinct_blocks(),
            GrainAnalyzer::Sampled(a) => a.tracked_blocks(),
        }
    }

    fn tree_nodes(&self) -> usize {
        match self {
            GrainAnalyzer::Exact(a) => a.tree_nodes(),
            GrainAnalyzer::Sampled(a) => a.tree_nodes(),
        }
    }

    fn finish(self) -> ReuseProfile {
        match self {
            GrainAnalyzer::Exact(a) => a.finish(),
            GrainAnalyzer::Sampled(a) => a.finish(),
        }
    }

    /// Serializes the engine's full mid-stream state into `e`.
    fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            GrainAnalyzer::Exact(a) => a.snapshot_encode(e),
            GrainAnalyzer::Sampled(a) => a.snapshot_encode(e),
        }
    }

    /// Rebuilds an engine from a snapshot's state frame. `sampled` comes
    /// from the validated snapshot header and selects the engine.
    fn snapshot_decode(
        program: &Program,
        block_size: u64,
        sampled: bool,
        d: &mut Dec<'_>,
    ) -> Result<GrainAnalyzer, SnapshotError> {
        if sampled {
            SampledAnalyzer::snapshot_decode(program, block_size, d).map(GrainAnalyzer::Sampled)
        } else {
            ReuseAnalyzer::snapshot_decode(program, block_size, d).map(GrainAnalyzer::Exact)
        }
    }
}

/// One grain's failure before it is folded into a [`FailureReport`]: the
/// error plus how many trace events the grain had processed when it died.
struct GrainFailure {
    error: GrainError,
    events: u64,
}

/// Forwards a replay stream to a [`GrainAnalyzer`] while publishing the
/// number of events delivered into an atomic cell — progress stays
/// readable after the analyzer panics mid-stream, at batch granularity.
struct CountingSink<'a> {
    inner: &'a mut GrainAnalyzer,
    events: &'a AtomicU64,
}

impl TraceSink for CountingSink<'_> {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.access(r, addr, size, kind);
    }
    fn enter(&mut self, scope: ScopeId) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.enter(scope);
    }
    fn exit(&mut self, scope: ScopeId) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.exit(scope);
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        self.events.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.inner.access_batch(batch);
    }
    fn access_soa(&mut self, batch: &SoaBatch) {
        self.events.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.inner.access_soa(batch);
    }
}

impl TraceSink for GrainAnalyzer {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        match self {
            GrainAnalyzer::Exact(a) => a.access(r, addr, size, kind),
            GrainAnalyzer::Sampled(a) => a.access(r, addr, size, kind),
        }
    }
    fn enter(&mut self, scope: ScopeId) {
        match self {
            GrainAnalyzer::Exact(a) => a.enter(scope),
            GrainAnalyzer::Sampled(a) => a.enter(scope),
        }
    }
    fn exit(&mut self, scope: ScopeId) {
        match self {
            GrainAnalyzer::Exact(a) => a.exit(scope),
            GrainAnalyzer::Sampled(a) => a.exit(scope),
        }
    }
    fn access_batch(&mut self, batch: &[AccessRecord]) {
        // One match per batch, not per event.
        match self {
            GrainAnalyzer::Exact(a) => a.access_batch(batch),
            GrainAnalyzer::Sampled(a) => a.access_batch(batch),
        }
    }
}

/// Replays `buffer` through `analyzer` on the validating decoder,
/// checking the budget once per batch. Publishes decoded-event progress
/// into `progress` so a failure still reports how far the grain got.
fn replay_guarded(
    buffer: &TraceBuffer,
    analyzer: &mut GrainAnalyzer,
    budget: &AnalysisBudget,
    progress: &AtomicU64,
) -> Result<(), GrainError> {
    let mut batch: Vec<AccessRecord> = Vec::with_capacity(GUARDED_BATCH);
    let mut events = 0u64;
    let mut accesses = 0u64;
    let check = |analyzer: &GrainAnalyzer, events: u64| {
        let progress = BudgetProgress {
            events,
            distinct_blocks: analyzer.tracked_blocks(),
            tree_nodes: analyzer.tree_nodes() as u64,
        };
        obs::set_gauge(obs::Gauge::BudgetEvents, progress.events);
        obs::set_gauge(obs::Gauge::BudgetDistinctBlocks, progress.distinct_blocks);
        obs::set_gauge(obs::Gauge::BudgetTreeNodes, progress.tree_nodes);
        budget.check(progress).map_err(GrainError::Budget)
    };
    for event in buffer.try_iter() {
        events += 1;
        progress.store(events, Ordering::Relaxed);
        match event.map_err(GrainError::Decode)? {
            Event::Access { r, addr, size, kind } => {
                accesses += 1;
                batch.push(AccessRecord { r, addr, size, kind });
                if batch.len() == GUARDED_BATCH {
                    analyzer.access_batch(&batch);
                    batch.clear();
                    check(analyzer, events)?;
                }
            }
            Event::Enter(scope) => {
                if !batch.is_empty() {
                    analyzer.access_batch(&batch);
                    batch.clear();
                }
                analyzer.enter(scope);
            }
            Event::Exit(scope) => {
                if !batch.is_empty() {
                    analyzer.access_batch(&batch);
                    batch.clear();
                }
                analyzer.exit(scope);
            }
        }
    }
    if !batch.is_empty() {
        analyzer.access_batch(&batch);
    }
    obs::add(obs::Counter::EventsDecoded, events);
    obs::add(obs::Counter::AccessesDecoded, accesses);
    check(analyzer, events)
}

/// One grain's replay, panic-isolated. Runs on the grain's own thread in
/// the parallel phase and on the caller's thread in the retry pass.
fn replay_grain(
    program: &Program,
    buffer: &TraceBuffer,
    block_size: u64,
    opts: &AnalyzeOptions,
) -> Result<(ReuseProfile, ReplayTiming, u64), GrainFailure> {
    let mut span = obs::span_with(obs::Stage::Replay, || obs::TimelineArgs {
        grain: Some(block_size),
        ..obs::TimelineArgs::default()
    });
    obs::emit(obs::EventKind::GrainStarted { grain: block_size });
    let start = Instant::now();
    // Progress lives outside the unwind boundary so a panicking analyzer
    // still leaves behind how many events it had processed.
    let progress = AtomicU64::new(0);
    let outcome = panic::catch_unwind(AssertUnwindSafe(
        || -> Result<(ReuseProfile, u64), GrainError> {
            let parts = opts.replay_threads.resolve();
            if parts > 1 && !matches!(opts.sampling, SamplingConfig::Adaptive { .. }) {
                // Validate-first: the partitioned engine replays segments
                // on the unchecked fast path, so an explicit validation
                // request runs the checking decoder over the whole buffer
                // up front and surfaces the same `Decode` errors.
                if opts.validate {
                    buffer.validate().map_err(GrainError::Decode)?;
                }
                return replay_partitioned(
                    program,
                    buffer,
                    block_size,
                    parts,
                    opts.sampling,
                    &opts.budget,
                );
            }
            let mut analyzer = GrainAnalyzer::new(program, block_size, opts.sampling);
            if opts.validate || !opts.budget.is_unlimited() {
                replay_guarded(buffer, &mut analyzer, &opts.budget, &progress)?;
            } else {
                let mut counting = CountingSink {
                    inner: &mut analyzer,
                    events: &progress,
                };
                buffer.replay(&mut counting);
            }
            // The exact tree only grows during a replay, so its final size
            // is also its peak; a sampled tree shrinks on eviction, making
            // this the final *tracked* count. Measured before `finish`
            // consumes the analyzer.
            let tree_nodes = analyzer.tree_nodes() as u64;
            Ok((analyzer.finish(), tree_nodes))
        },
    ));
    match outcome {
        Ok(Ok((profile, tree_nodes))) => {
            match profile.sampling {
                None => {
                    obs::add(obs::Counter::BlocksTracked, profile.distinct_blocks);
                    // Every measured (non-cold) reuse re-keys its block's
                    // node on the order-statistic tree with one fused
                    // reinsert.
                    obs::add(
                        obs::Counter::TreeReinserts,
                        profile.total_accesses - profile.total_cold(),
                    );
                }
                Some(info) => {
                    obs::add(obs::Counter::BlocksSampled, info.blocks_sampled);
                    obs::add(obs::Counter::BlocksEvicted, info.blocks_evicted);
                    obs::add(obs::Counter::SampleRateDrops, info.rate_drops);
                    obs::set_gauge(obs::Gauge::SamplingInvRate, info.inv);
                    if info.rate_drops > 0 {
                        obs::emit(obs::EventKind::SampleRateDropped {
                            grain: block_size,
                            inv_rate: info.inv,
                            evicted: info.blocks_evicted,
                        });
                    }
                }
            }
            span.record(|args| {
                args.events = Some(buffer.events());
                args.distinct_blocks = Some(profile.distinct_blocks);
                args.tree_nodes = Some(tree_nodes);
                args.sample_inv = profile.sampling.map(|s| s.inv);
            });
            Ok((
                profile,
                ReplayTiming {
                    block_size,
                    wall: start.elapsed(),
                },
                tree_nodes,
            ))
        }
        Ok(Err(error)) => Err(GrainFailure {
            error,
            events: progress.load(Ordering::Relaxed),
        }),
        Err(payload) => Err(GrainFailure {
            error: GrainError::Panicked(panic_message(payload.as_ref())),
            events: progress.load(Ordering::Relaxed),
        }),
    }
}

/// The fault-tolerant replay engine: one fresh [`ReuseAnalyzer`] per block
/// size, each replaying the shared buffer on its own thread **under panic
/// isolation**. Grains that fail — by panic, decode rejection, or budget
/// exhaustion — are reported in the returned [`PartialAnalysis`] without
/// disturbing their siblings; panicked grains get one sequential retry
/// first (when [`AnalyzeOptions::retry`] is set).
///
/// With default options the replay takes the same unchecked fast path as
/// [`TraceBuffer::replay`]; setting a budget or
/// [`AnalyzeOptions::validate`] routes it through the validating decoder.
pub fn analyze_buffer_with(
    program: &Program,
    buffer: &TraceBuffer,
    block_sizes: &[u64],
    opts: &AnalyzeOptions,
) -> PartialAnalysis {
    obs::add(obs::Counter::GrainsRequested, block_sizes.len() as u64);
    let outcomes: Vec<Result<(ReuseProfile, ReplayTiming, u64), GrainFailure>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = block_sizes
                .iter()
                .map(|&block_size| s.spawn(move || replay_grain(program, buffer, block_size, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    // `replay_grain` catches panics itself; this arm is a
                    // backstop for panics outside the catch (e.g. in the
                    // timing code).
                    Err(payload) => Err(GrainFailure {
                        error: GrainError::Panicked(panic_message(payload.as_ref())),
                        events: 0,
                    }),
                })
                .collect()
        });
    let mut profiles = Vec::new();
    let mut replays = Vec::new();
    let mut failures = Vec::new();
    for (&block_size, outcome) in block_sizes.iter().zip(outcomes) {
        let (outcome, retried) = match outcome {
            // A panicked grain gets one sequential retry on an otherwise
            // idle machine; decode and budget failures are deterministic,
            // so retrying them would only repeat the work.
            Err(GrainFailure {
                error: GrainError::Panicked(_),
                ..
            }) if opts.retry => {
                obs::add(obs::Counter::GrainsRetried, 1);
                obs::emit(obs::EventKind::GrainRetried { grain: block_size });
                (replay_grain(program, buffer, block_size, opts), true)
            }
            other => (other, false),
        };
        match outcome {
            Ok((profile, timing, tree_nodes)) => {
                obs::add(obs::Counter::GrainsCompleted, 1);
                obs::emit(obs::EventKind::GrainCompleted {
                    grain: block_size,
                    events: buffer.events(),
                    distinct_blocks: profile.distinct_blocks,
                    wall_ns: timing.wall.as_nanos() as u64,
                });
                obs::record_grain(&obs::GrainProfile {
                    block_size,
                    wall: timing.wall,
                    events: buffer.events(),
                    distinct_blocks: profile.distinct_blocks,
                    tree_nodes,
                    status: if retried {
                        obs::GrainStatus::Retried
                    } else {
                        obs::GrainStatus::Completed
                    },
                    blocks_sampled: profile.sampling.map_or(0, |s| s.blocks_sampled),
                    blocks_evicted: profile.sampling.map_or(0, |s| s.blocks_evicted),
                    sample_inv: profile.sampling.map_or(0, |s| s.inv),
                });
                profiles.push(profile);
                replays.push(timing);
            }
            Err(failure) => {
                obs::add(obs::Counter::GrainsFailed, 1);
                obs::emit(obs::EventKind::GrainFailed {
                    grain: block_size,
                    reason: failure.error.to_string(),
                    job: opts.job.clone(),
                });
                obs::record_grain(&obs::GrainProfile {
                    block_size,
                    wall: Duration::ZERO,
                    events: failure.events,
                    distinct_blocks: 0,
                    tree_nodes: 0,
                    status: obs::GrainStatus::Failed,
                    blocks_sampled: 0,
                    blocks_evicted: 0,
                    sample_inv: 0,
                });
                failures.push(FailureReport {
                    block_size,
                    error: failure.error,
                    retried,
                    events: failure.events,
                    job: opts.job.clone(),
                });
            }
        }
    }
    PartialAnalysis {
        profiles,
        replays,
        failures,
    }
}

/// Replays a captured buffer through one fresh [`ReuseAnalyzer`] per block
/// size, each on its own thread, and returns the profiles in request order
/// together with per-thread timings.
///
/// This is the strict form: any grain failure is returned as an error
/// (after all threads have been joined — a failing grain never aborts the
/// process or poisons its siblings). Use [`analyze_buffer_with`] to keep
/// the healthy grains' results instead.
///
/// # Errors
///
/// Returns the first grain failure as an [`AnalysisError`].
pub fn analyze_buffer(
    program: &Program,
    buffer: &TraceBuffer,
    block_sizes: &[u64],
) -> Result<(Vec<ReuseProfile>, Vec<ReplayTiming>), AnalysisError> {
    analyze_buffer_with(program, buffer, block_sizes, &AnalyzeOptions::default()).into_strict()
}

/// Where and how often [`analyze_buffer_checkpointed`] snapshots its
/// progress, and whether it looks for earlier snapshots to resume from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Directory holding the snapshot files. Created if missing; one file
    /// per grain and checkpoint boundary, named by
    /// [`snapshot_file_name`](crate::snapshot_file_name).
    pub dir: PathBuf,
    /// Trace events between checkpoints. Values below 1 behave as 1. Each
    /// interior multiple of this interval writes one snapshot per grain;
    /// a finished grain writes none (its profile is the result).
    pub every: u64,
    /// Scan `dir` for this analysis's snapshots before replaying and
    /// resume from the newest one that validates end to end. Corrupted,
    /// torn, version-skewed, or mismatched files are rejected (counted on
    /// [`obs::Counter::CheckpointsRejected`]) and the scan falls back to
    /// the next-newest; with no valid snapshot the grain starts from the
    /// beginning.
    pub resume: bool,
}

/// How one checkpointed grain ended: completed, failed as a grain (kept
/// as a [`FailureReport`]), or hit a checkpoint-infrastructure error that
/// fails the whole call.
type CkptGrainOutcome =
    Result<Result<(ReuseProfile, ReplayTiming, u64), GrainFailure>, SnapshotError>;

/// Scans the checkpoint directory for this grain's snapshots, newest
/// first, and rebuilds the analyzer from the first one that passes every
/// check: intact framing and CRCs, matching grain/engine/program shape,
/// and agreement with the trace (the snapshot's access clock must equal
/// the buffer's at the recorded event). Rejected files only advance the
/// scan — recovery from a torn newest checkpoint is falling back to the
/// one before it.
///
/// Only I/O on the directory listing itself is fatal; every per-file
/// failure is counted and skipped.
fn resume_grain(
    program: &Program,
    buffer: &TraceBuffer,
    block_size: u64,
    sampled: bool,
    dir: &std::path::Path,
) -> Result<Option<(GrainAnalyzer, SegmentState)>, SnapshotError> {
    let nrefs = program.references().len() as u32;
    for (events, path) in list_snapshots(dir, block_size)? {
        let resumed = (|| -> Result<(GrainAnalyzer, SegmentState), SnapshotError> {
            let bytes = read_snapshot_bytes(&path)?;
            let (header, mut dec) = decode_snapshot(&bytes)?;
            if header.block_size != block_size {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "snapshot is for grain {}, expected {block_size}",
                        header.block_size
                    ),
                });
            }
            if header.sampled != sampled {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "snapshot was taken by the {} engine, this run uses the {} engine",
                        if header.sampled { "sampled" } else { "exact" },
                        if sampled { "sampled" } else { "exact" },
                    ),
                });
            }
            if header.nrefs != nrefs {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "snapshot program has {} references, this program has {nrefs}",
                        header.nrefs
                    ),
                });
            }
            if header.events_replayed != events {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "file name claims event {events}, header records {}",
                        header.events_replayed
                    ),
                });
            }
            if header.events_replayed > buffer.events() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "snapshot is at event {} but the trace has only {}",
                        header.events_replayed,
                        buffer.events()
                    ),
                });
            }
            let state = buffer.state_at(header.events_replayed);
            if state.accesses != header.accesses_replayed {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "snapshot records {} accesses at event {}, the trace has {}",
                        header.accesses_replayed, header.events_replayed, state.accesses
                    ),
                });
            }
            let analyzer =
                GrainAnalyzer::snapshot_decode(program, block_size, header.sampled, &mut dec)?;
            dec.finish()?;
            Ok((analyzer, state))
        })();
        match resumed {
            Ok(ok) => {
                obs::add(obs::Counter::CheckpointsResumed, 1);
                obs::emit(obs::EventKind::CheckpointResumed {
                    grain: block_size,
                    events_replayed: ok.1.event,
                });
                return Ok(Some(ok));
            }
            Err(e) => {
                obs::add(obs::Counter::CheckpointsRejected, 1);
                obs::emit(obs::EventKind::CheckpointRejected {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                });
            }
        }
    }
    Ok(None)
}

/// One grain's checkpointed replay: resume (optionally), then alternate
/// chunks of [`TraceBuffer::replay_advance`] with snapshot writes at each
/// interior `every`-event boundary. Panic-isolated like [`replay_grain`].
fn replay_grain_checkpointed(
    program: &Program,
    buffer: &TraceBuffer,
    block_size: u64,
    opts: &AnalyzeOptions,
    ckpt: &CheckpointOptions,
) -> CkptGrainOutcome {
    let mut span = obs::span_with(obs::Stage::Replay, || obs::TimelineArgs {
        grain: Some(block_size),
        ..obs::TimelineArgs::default()
    });
    obs::emit(obs::EventKind::GrainStarted { grain: block_size });
    let start = Instant::now();
    let progress = AtomicU64::new(0);
    let every = ckpt.every.max(1);
    let sampled = !opts.sampling.is_exact();
    let outcome = panic::catch_unwind(AssertUnwindSafe(
        || -> Result<Result<(ReuseProfile, u64), GrainError>, SnapshotError> {
            // The streaming loop decodes on the unchecked fast path, so an
            // explicit validation request checks the whole buffer up front,
            // as the partitioned engine does.
            if opts.validate {
                if let Err(e) = buffer.validate() {
                    return Ok(Err(GrainError::Decode(e)));
                }
            }
            let resumed = if ckpt.resume {
                resume_grain(program, buffer, block_size, sampled, &ckpt.dir)?
            } else {
                None
            };
            let (mut analyzer, mut state) = match resumed {
                Some(from) => from,
                None => (
                    GrainAnalyzer::new(program, block_size, opts.sampling),
                    SegmentState::default(),
                ),
            };
            progress.store(state.event, Ordering::Relaxed);
            let nrefs = program.references().len() as u32;
            while state.event < buffer.events() {
                let target = state.event.saturating_add(every).min(buffer.events());
                buffer.replay_advance(&mut state, target, &mut analyzer);
                progress.store(state.event, Ordering::Relaxed);
                if !opts.budget.is_unlimited() {
                    let p = BudgetProgress {
                        events: state.event,
                        distinct_blocks: analyzer.tracked_blocks(),
                        tree_nodes: analyzer.tree_nodes() as u64,
                    };
                    obs::set_gauge(obs::Gauge::BudgetEvents, p.events);
                    obs::set_gauge(obs::Gauge::BudgetDistinctBlocks, p.distinct_blocks);
                    obs::set_gauge(obs::Gauge::BudgetTreeNodes, p.tree_nodes);
                    if let Err(e) = opts.budget.check(p) {
                        return Ok(Err(GrainError::Budget(e)));
                    }
                }
                if state.event < buffer.events() {
                    let _ckpt_span = obs::span(obs::Stage::Checkpoint);
                    let mut enc = Enc::new();
                    analyzer.snapshot_encode(&mut enc);
                    let header = SnapshotHeader {
                        block_size,
                        sampled,
                        events_replayed: state.event,
                        accesses_replayed: state.accesses,
                        nrefs,
                    };
                    let image = encode_snapshot(&header, &enc.buf);
                    write_snapshot_file(&ckpt.dir, block_size, state.event, &image)?;
                    obs::add(obs::Counter::CheckpointsWritten, 1);
                    obs::set_gauge(obs::Gauge::SnapshotBytes, image.len() as u64);
                    obs::emit(obs::EventKind::CheckpointWritten {
                        grain: block_size,
                        events_replayed: state.event,
                        bytes: image.len() as u64,
                    });
                }
            }
            let tree_nodes = analyzer.tree_nodes() as u64;
            Ok(Ok((analyzer.finish(), tree_nodes)))
        },
    ));
    match outcome {
        Ok(Ok(Ok((profile, tree_nodes)))) => {
            match profile.sampling {
                None => {
                    obs::add(obs::Counter::BlocksTracked, profile.distinct_blocks);
                    obs::add(
                        obs::Counter::TreeReinserts,
                        profile.total_accesses - profile.total_cold(),
                    );
                }
                Some(info) => {
                    obs::add(obs::Counter::BlocksSampled, info.blocks_sampled);
                    obs::add(obs::Counter::BlocksEvicted, info.blocks_evicted);
                    obs::add(obs::Counter::SampleRateDrops, info.rate_drops);
                    obs::set_gauge(obs::Gauge::SamplingInvRate, info.inv);
                    if info.rate_drops > 0 {
                        obs::emit(obs::EventKind::SampleRateDropped {
                            grain: block_size,
                            inv_rate: info.inv,
                            evicted: info.blocks_evicted,
                        });
                    }
                }
            }
            span.record(|args| {
                args.events = Some(buffer.events());
                args.distinct_blocks = Some(profile.distinct_blocks);
                args.tree_nodes = Some(tree_nodes);
                args.sample_inv = profile.sampling.map(|s| s.inv);
            });
            Ok(Ok((
                profile,
                ReplayTiming {
                    block_size,
                    wall: start.elapsed(),
                },
                tree_nodes,
            )))
        }
        Ok(Ok(Err(error))) => Ok(Err(GrainFailure {
            error,
            events: progress.load(Ordering::Relaxed),
        })),
        Ok(Err(fatal)) => Err(fatal),
        Err(payload) => Ok(Err(GrainFailure {
            error: GrainError::Panicked(panic_message(payload.as_ref())),
            events: progress.load(Ordering::Relaxed),
        })),
    }
}

/// Crash-safe streaming form of [`analyze_buffer_with`]: each grain
/// replays the buffer in chunks of [`CheckpointOptions::every`] events and
/// serializes its **complete analyzer state** to
/// [`CheckpointOptions::dir`] at every interior boundary, so a run killed
/// at any point — including mid-write — can be rerun with
/// [`CheckpointOptions::resume`] set and continue from the newest intact
/// snapshot instead of the beginning.
///
/// Guarantees:
///
/// * **Bit-identical recovery** — a resumed run's profiles are equal, bit
///   for bit, to an uninterrupted run's, for the exact and the sampled
///   engine alike. (The streaming loop itself is serial and deterministic;
///   [`AnalyzeOptions::replay_threads`] is ignored here, and serial exact
///   profiles are bit-identical to partitioned ones anyway.)
/// * **Hostile-input recovery** — a snapshot is only resumed from after
///   full validation: framing, CRCs, version, and agreement with this
///   program and trace. Anything torn, truncated, bit-flipped, or
///   version-skewed is rejected with a typed [`SnapshotError`] internally,
///   counted, and skipped in favor of the next-newest file.
/// * The usual [`PartialAnalysis`] degradation: panicking or over-budget
///   grains become [`FailureReport`]s, siblings survive.
///
/// Grains run sequentially (the point of checkpointing is surviving long
/// unattended runs, not peak parallel throughput — use
/// [`analyze_buffer_with`] when crash-safety is not needed).
///
/// # Errors
///
/// Only checkpoint-*infrastructure* failures fail the call: an unreadable
/// checkpoint directory or an error while writing a snapshot (disk full,
/// permissions). Corrupted snapshot *files* never do — they are fallback
/// material, not errors.
pub fn analyze_buffer_checkpointed(
    program: &Program,
    buffer: &TraceBuffer,
    block_sizes: &[u64],
    opts: &AnalyzeOptions,
    ckpt: &CheckpointOptions,
) -> Result<PartialAnalysis, SnapshotError> {
    fs::create_dir_all(&ckpt.dir).map_err(|e| SnapshotError::Io {
        op: "create checkpoint directory",
        path: ckpt.dir.clone(),
        message: e.to_string(),
    })?;
    obs::add(obs::Counter::GrainsRequested, block_sizes.len() as u64);
    let mut profiles = Vec::new();
    let mut replays = Vec::new();
    let mut failures = Vec::new();
    for &block_size in block_sizes {
        let outcome = replay_grain_checkpointed(program, buffer, block_size, opts, ckpt)?;
        let (outcome, retried) = match outcome {
            Err(GrainFailure {
                error: GrainError::Panicked(_),
                ..
            }) if opts.retry => {
                obs::add(obs::Counter::GrainsRetried, 1);
                obs::emit(obs::EventKind::GrainRetried { grain: block_size });
                (
                    replay_grain_checkpointed(program, buffer, block_size, opts, ckpt)?,
                    true,
                )
            }
            other => (other, false),
        };
        match outcome {
            Ok((profile, timing, tree_nodes)) => {
                obs::add(obs::Counter::GrainsCompleted, 1);
                obs::emit(obs::EventKind::GrainCompleted {
                    grain: block_size,
                    events: buffer.events(),
                    distinct_blocks: profile.distinct_blocks,
                    wall_ns: timing.wall.as_nanos() as u64,
                });
                obs::record_grain(&obs::GrainProfile {
                    block_size,
                    wall: timing.wall,
                    events: buffer.events(),
                    distinct_blocks: profile.distinct_blocks,
                    tree_nodes,
                    status: if retried {
                        obs::GrainStatus::Retried
                    } else {
                        obs::GrainStatus::Completed
                    },
                    blocks_sampled: profile.sampling.map_or(0, |s| s.blocks_sampled),
                    blocks_evicted: profile.sampling.map_or(0, |s| s.blocks_evicted),
                    sample_inv: profile.sampling.map_or(0, |s| s.inv),
                });
                profiles.push(profile);
                replays.push(timing);
            }
            Err(failure) => {
                obs::add(obs::Counter::GrainsFailed, 1);
                obs::emit(obs::EventKind::GrainFailed {
                    grain: block_size,
                    reason: failure.error.to_string(),
                    job: opts.job.clone(),
                });
                obs::record_grain(&obs::GrainProfile {
                    block_size,
                    wall: Duration::ZERO,
                    events: failure.events,
                    distinct_blocks: 0,
                    tree_nodes: 0,
                    status: obs::GrainStatus::Failed,
                    blocks_sampled: 0,
                    blocks_evicted: 0,
                    sample_inv: 0,
                });
                failures.push(FailureReport {
                    block_size,
                    error: failure.error,
                    retried,
                    events: failure.events,
                    job: opts.job.clone(),
                });
            }
        }
    }
    Ok(PartialAnalysis {
        profiles,
        replays,
        failures,
    })
}

/// Capture-once / replay-many variant of [`analyze_program`]: interprets
/// the program a single time into a [`TraceBuffer`], then replays it
/// concurrently — one thread per requested block size. Produces profiles
/// bit-identical to the online pipeline, plus timing and buffer statistics.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the capture run, and any grain
/// failure from the replay phase as an [`AnalysisError`].
///
/// # Examples
///
/// ```
/// use reuselens_core::{analyze_program, analyze_program_parallel};
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[256]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 2, |r, _| {
///         r.for_("i", 0, 255, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let (par, stats) = analyze_program_parallel(&prog, &[64, 4096], vec![])?;
/// let online = analyze_program(&prog, &[64, 4096], vec![])?;
/// assert_eq!(par.profiles, online.profiles);
/// assert_eq!(stats.replays.len(), 2);
/// assert!(stats.buffer.encoded_bytes < stats.buffer.raw_bytes);
/// # Ok::<(), reuselens_core::AnalysisError>(())
/// ```
pub fn analyze_program_parallel(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(AnalysisResult, AnalysisStats), AnalysisError> {
    analyze_program_parallel_with(program, block_sizes, index_arrays, &AnalyzeOptions::default())
}

/// [`analyze_program_parallel`] with explicit [`AnalyzeOptions`] — the way
/// to run the strict capture + replay pipeline under sampling, a budget,
/// or the validating decoder. With default options it is the same call.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the capture run, and any grain
/// failure from the replay phase as an [`AnalysisError`].
pub fn analyze_program_parallel_with(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
    opts: &AnalyzeOptions,
) -> Result<(AnalysisResult, AnalysisStats), AnalysisError> {
    let start = Instant::now();
    let (buffer, report) = capture_program(program, index_arrays)?;
    let capture_wall = start.elapsed();
    let (profiles, replays) =
        analyze_buffer_with(program, &buffer, block_sizes, opts).into_strict()?;
    Ok((
        AnalysisResult {
            profiles,
            exec: report,
        },
        AnalysisStats {
            capture_wall,
            buffer: buffer.stats(),
            replays,
        },
    ))
}

/// The degrading form of [`analyze_program_parallel`]: capture once, then
/// replay every grain under panic isolation with the given options,
/// returning whatever survived as a [`PartialAnalysis`] plus the capture
/// report and statistics.
///
/// # Errors
///
/// Only the capture run can fail the whole call (there is nothing to
/// replay without a trace); per-grain replay failures are reported inside
/// the [`PartialAnalysis`].
pub fn analyze_program_degraded(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
    opts: &AnalyzeOptions,
) -> Result<(PartialAnalysis, ExecReport, AnalysisStats), ExecError> {
    let start = Instant::now();
    let (buffer, report) = capture_program(program, index_arrays)?;
    let capture_wall = start.elapsed();
    let partial = analyze_buffer_with(program, &buffer, block_sizes, opts);
    let stats = AnalysisStats {
        capture_wall,
        buffer: buffer.stats(),
        replays: partial.replays.clone(),
    };
    Ok((partial, report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};

    #[test]
    fn analyze_program_with_index_arrays() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.for_("i", 0, 7, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..8).map(|i| (i * 7) % 64).collect();
        let result = analyze_program(&prog, &[64], vec![(ix, idx)]).unwrap();
        assert_eq!(result.profiles[0].total_accesses, 8);
        assert!(result.profile_at(64).is_some());
        assert!(result.profile_at(128).is_none());
    }

    #[test]
    fn parallel_pipeline_matches_online_bit_for_bit() {
        let mut p = ProgramBuilder::new("tiled");
        let a = p.array("a", 8, &[64, 64]);
        let b = p.array("b", 8, &[64, 64]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("j", 0, 63, |r, j| {
                    r.for_("i", 0, 63, |r, i| {
                        r.load(a, vec![i.into(), j.into()]);
                        r.store(b, vec![j.into(), i.into()]);
                    });
                });
            });
        });
        let prog = p.finish();
        let grains = [64u64, 256, 4096];
        let online = analyze_program(&prog, &grains, vec![]).unwrap();
        let (par, stats) = analyze_program_parallel(&prog, &grains, vec![]).unwrap();
        assert_eq!(online.profiles, par.profiles);
        assert_eq!(online.exec, par.exec);
        assert_eq!(stats.replays.len(), grains.len());
        for (timing, &g) in stats.replays.iter().zip(&grains) {
            assert_eq!(timing.block_size, g);
        }
        assert_eq!(stats.buffer.accesses, online.exec.accesses);
        assert!(stats.buffer.compression_ratio() > 1.0);
    }

    #[test]
    fn parallel_pipeline_with_index_arrays() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[32]);
        let a = p.array("a", 8, &[512]);
        p.routine("main", |r| {
            r.for_("t", 0, 3, |r, _| {
                r.for_("i", 0, 31, |r, i| {
                    r.load(a, vec![Expr::load(ix, vec![i.into()])]);
                });
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..32).map(|i| (i * 37) % 512).collect();
        let online = analyze_program(&prog, &[64], vec![(ix, idx.clone())]).unwrap();
        let (par, _) = analyze_program_parallel(&prog, &[64], vec![(ix, idx)]).unwrap();
        assert_eq!(online.profiles, par.profiles);
    }

    #[test]
    fn capture_then_replay_by_hand_matches_multigrain() {
        let mut p = ProgramBuilder::new("sweep");
        let a = p.array("a", 8, &[2048]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 2047, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let (buffer, report) = capture_program(&prog, vec![]).unwrap();
        assert_eq!(buffer.accesses(), report.accesses);
        let (profiles, timings) = analyze_buffer(&prog, &buffer, &[64, 4096]).unwrap();
        let online = analyze_program(&prog, &[64, 4096], vec![]).unwrap();
        assert_eq!(profiles, online.profiles);
        assert_eq!(timings.len(), 2);
    }

    #[test]
    fn missing_index_array_surfaces_error() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::load(ix, vec![Expr::c(0)])]);
        });
        let prog = p.finish();
        assert!(analyze_program(&prog, &[64], vec![]).is_err());
    }

    #[test]
    fn guarded_replay_matches_fast_path_bit_for_bit() {
        let mut p = ProgramBuilder::new("guarded");
        let a = p.array("a", 8, &[512]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 511, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let (buffer, _) = capture_program(&prog, vec![]).unwrap();
        let fast = analyze_buffer(&prog, &buffer, &[64, 4096]).unwrap().0;
        let validated = analyze_buffer_with(
            &prog,
            &buffer,
            &[64, 4096],
            &AnalyzeOptions {
                validate: true,
                ..AnalyzeOptions::default()
            },
        );
        assert!(validated.is_complete());
        assert_eq!(validated.profiles, fast);
    }
}
