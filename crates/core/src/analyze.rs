//! One-call program analysis: execute a program once, measure reuse at
//! several granularities.
//!
//! Two pipelines produce bit-identical profiles:
//!
//! * **Online** ([`analyze_program`]) — every grain's analyzer observes the
//!   event stream while the program is interpreted, as the paper's
//!   instrumented binaries do.
//! * **Capture + replay** ([`analyze_program_parallel`]) — the program is
//!   interpreted exactly once into a compact [`TraceBuffer`]; each grain
//!   then replays the buffer on its own thread. Decoding the buffer is far
//!   cheaper than re-interpreting the program, and the per-grain analyzers
//!   share nothing, so the replays are embarrassingly parallel.

use crate::analyzer::{MultiGrainAnalyzer, ReuseAnalyzer};
use crate::patterns::ReuseProfile;
use reuselens_ir::{ArrayId, Program};
use reuselens_trace::{BufferStats, ExecError, ExecReport, Executor, TraceBuffer};
use std::time::{Duration, Instant};

/// The result of [`analyze_program`]: reuse profiles (one per granularity,
/// in request order) plus the executor's dynamic statistics (loop trip
/// counts, access totals).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// One profile per requested block size.
    pub profiles: Vec<ReuseProfile>,
    /// Dynamic execution statistics.
    pub exec: ExecReport,
}

impl AnalysisResult {
    /// The profile measured at the given block size.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }
}

/// Executes `program` once and measures reuse distances at every requested
/// block size. Index arrays (for indirect accesses) are supplied as
/// `(array, contents)` pairs.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the executor (out-of-bounds access,
/// missing index data).
///
/// # Examples
///
/// ```
/// use reuselens_core::analyze_program;
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[256]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 2, |r, _| {
///         r.for_("i", 0, 255, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let result = analyze_program(&prog, &[64, 4096], vec![])?;
/// assert_eq!(result.profiles.len(), 2);
/// assert_eq!(result.exec.accesses, 3 * 256);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn analyze_program(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<AnalysisResult, ExecError> {
    let mut analyzer = MultiGrainAnalyzer::new(program, block_sizes);
    let mut exec = Executor::new(program);
    for (arr, data) in index_arrays {
        exec.set_index_array(arr, data);
    }
    let report = exec.run(&mut analyzer)?;
    Ok(AnalysisResult {
        profiles: analyzer.finish(),
        exec: report,
    })
}

/// Wall-clock and buffer statistics from a capture + parallel-replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisStats {
    /// Time to interpret the program once into the trace buffer.
    pub capture_wall: Duration,
    /// Size and compression statistics of the captured buffer.
    pub buffer: BufferStats,
    /// Per-grain replay wall time, in request order. Each entry is the time
    /// the grain's own thread spent decoding the buffer and updating its
    /// analyzer; the slowest entry bounds the parallel phase.
    pub replays: Vec<ReplayTiming>,
}

/// Wall time one grain's replay thread took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayTiming {
    /// The grain (block size in bytes) this thread analyzed.
    pub block_size: u64,
    /// Time spent replaying the buffer through that grain's analyzer.
    pub wall: Duration,
}

/// Interprets `program` exactly once and returns the captured trace plus
/// the executor's report. The buffer can then be replayed any number of
/// times — per grain, per experiment — without re-interpreting.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the executor.
pub fn capture_program(
    program: &Program,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(TraceBuffer, ExecReport), ExecError> {
    let mut buffer = TraceBuffer::new();
    let mut exec = Executor::new(program);
    for (arr, data) in index_arrays {
        exec.set_index_array(arr, data);
    }
    let report = exec.run(&mut buffer)?;
    Ok((buffer, report))
}

/// Replays a captured buffer through one fresh [`ReuseAnalyzer`] per block
/// size, each on its own thread, and returns the profiles in request order
/// together with per-thread timings.
pub fn analyze_buffer(
    program: &Program,
    buffer: &TraceBuffer,
    block_sizes: &[u64],
) -> (Vec<ReuseProfile>, Vec<ReplayTiming>) {
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = block_sizes
            .iter()
            .map(|&block_size| {
                s.spawn(move || {
                    let start = Instant::now();
                    let mut analyzer = ReuseAnalyzer::new(program, block_size);
                    buffer.replay(&mut analyzer);
                    let wall = start.elapsed();
                    (analyzer.finish(), ReplayTiming { block_size, wall })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread panicked"))
            .collect::<Vec<_>>()
    });
    outcomes.into_iter().unzip()
}

/// Capture-once / replay-many variant of [`analyze_program`]: interprets
/// the program a single time into a [`TraceBuffer`], then replays it
/// concurrently — one thread per requested block size. Produces profiles
/// bit-identical to the online pipeline, plus timing and buffer statistics.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the capture run.
///
/// # Examples
///
/// ```
/// use reuselens_core::{analyze_program, analyze_program_parallel};
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[256]);
/// p.routine("main", |r| {
///     r.for_("t", 0, 2, |r, _| {
///         r.for_("i", 0, 255, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let (par, stats) = analyze_program_parallel(&prog, &[64, 4096], vec![])?;
/// let online = analyze_program(&prog, &[64, 4096], vec![])?;
/// assert_eq!(par.profiles, online.profiles);
/// assert_eq!(stats.replays.len(), 2);
/// assert!(stats.buffer.encoded_bytes < stats.buffer.raw_bytes);
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn analyze_program_parallel(
    program: &Program,
    block_sizes: &[u64],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(AnalysisResult, AnalysisStats), ExecError> {
    let start = Instant::now();
    let (buffer, report) = capture_program(program, index_arrays)?;
    let capture_wall = start.elapsed();
    let (profiles, replays) = analyze_buffer(program, &buffer, block_sizes);
    Ok((
        AnalysisResult {
            profiles,
            exec: report,
        },
        AnalysisStats {
            capture_wall,
            buffer: buffer.stats(),
            replays,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};

    #[test]
    fn analyze_program_with_index_arrays() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.for_("i", 0, 7, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..8).map(|i| (i * 7) % 64).collect();
        let result = analyze_program(&prog, &[64], vec![(ix, idx)]).unwrap();
        assert_eq!(result.profiles[0].total_accesses, 8);
        assert!(result.profile_at(64).is_some());
        assert!(result.profile_at(128).is_none());
    }

    #[test]
    fn parallel_pipeline_matches_online_bit_for_bit() {
        let mut p = ProgramBuilder::new("tiled");
        let a = p.array("a", 8, &[64, 64]);
        let b = p.array("b", 8, &[64, 64]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("j", 0, 63, |r, j| {
                    r.for_("i", 0, 63, |r, i| {
                        r.load(a, vec![i.into(), j.into()]);
                        r.store(b, vec![j.into(), i.into()]);
                    });
                });
            });
        });
        let prog = p.finish();
        let grains = [64u64, 256, 4096];
        let online = analyze_program(&prog, &grains, vec![]).unwrap();
        let (par, stats) = analyze_program_parallel(&prog, &grains, vec![]).unwrap();
        assert_eq!(online.profiles, par.profiles);
        assert_eq!(online.exec, par.exec);
        assert_eq!(stats.replays.len(), grains.len());
        for (timing, &g) in stats.replays.iter().zip(&grains) {
            assert_eq!(timing.block_size, g);
        }
        assert_eq!(stats.buffer.accesses, online.exec.accesses);
        assert!(stats.buffer.compression_ratio() > 1.0);
    }

    #[test]
    fn parallel_pipeline_with_index_arrays() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[32]);
        let a = p.array("a", 8, &[512]);
        p.routine("main", |r| {
            r.for_("t", 0, 3, |r, _| {
                r.for_("i", 0, 31, |r, i| {
                    r.load(a, vec![Expr::load(ix, vec![i.into()])]);
                });
            });
        });
        let prog = p.finish();
        let idx: Vec<i64> = (0..32).map(|i| (i * 37) % 512).collect();
        let online = analyze_program(&prog, &[64], vec![(ix, idx.clone())]).unwrap();
        let (par, _) = analyze_program_parallel(&prog, &[64], vec![(ix, idx)]).unwrap();
        assert_eq!(online.profiles, par.profiles);
    }

    #[test]
    fn capture_then_replay_by_hand_matches_multigrain() {
        let mut p = ProgramBuilder::new("sweep");
        let a = p.array("a", 8, &[2048]);
        p.routine("main", |r| {
            r.for_("t", 0, 2, |r, _| {
                r.for_("i", 0, 2047, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let (buffer, report) = capture_program(&prog, vec![]).unwrap();
        assert_eq!(buffer.accesses(), report.accesses);
        let (profiles, timings) = analyze_buffer(&prog, &buffer, &[64, 4096]);
        let online = analyze_program(&prog, &[64, 4096], vec![]).unwrap();
        assert_eq!(profiles, online.profiles);
        assert_eq!(timings.len(), 2);
    }

    #[test]
    fn missing_index_array_surfaces_error() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[8]);
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::load(ix, vec![Expr::c(0)])]);
        });
        let prog = p.finish();
        assert!(analyze_program(&prog, &[64], vec![]).is_err());
    }
}
