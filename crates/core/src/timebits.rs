//! A hierarchical popcount bitmap over the logical access clock — the
//! serial replay core's order-statistic structure.
//!
//! The analyzer's per-access question is *how many tracked blocks were
//! last accessed after time `t`*. The paper answers it with a balanced
//! tree over last-access times ([`OrderStatTree`](crate::OrderStatTree));
//! that stays the right structure when times are sparse or unbounded (the
//! sampled analyzer, the stitch pass), but for exact in-memory replay the
//! times are dense logical clock values bounded by the trace length — and
//! the trace itself is already materialized in memory. Exploiting that, a
//! flat bitmap (bit `t` set ⇔ some tracked block was last accessed at
//! time `t`) plus a Fenwick tree over per-word popcounts answers the same
//! query in a handful of cache-resident array reads, where each balanced
//! tree operation chases `O(log M)` pointer-dependent arena nodes and
//! rebalances on the way back up. On the replay hot path this is worth
//! 3-5x on the long-reuse (past-window) accesses.
//!
//! Memory is one bit per logical clock tick plus a `u32` per 64 ticks —
//! ~12.5 bytes per 100 accesses — offset by `base` so a partition worker
//! replaying a late time segment pays only for its own span.

/// A set of `u64` logical times supporting insert, remove, and
/// count-greater in a few cache-resident array operations each.
///
/// Semantically identical to [`OrderStatTree`](crate::OrderStatTree)
/// restricted to the analyzer's monotone-clock usage; the differential
/// tests below pin the two against each other on random workloads.
///
/// # Examples
///
/// ```
/// use reuselens_core::TimeBits;
///
/// let mut t = TimeBits::new();
/// for k in [5u64, 1, 9, 3] {
///     t.insert(k);
/// }
/// assert_eq!(t.count_greater(3), 2); // 5 and 9
/// assert!(t.remove(5));
/// assert_eq!(t.count_greater(3), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeBits {
    /// Bit `t - base*64` of `words[(t - base*64)/64]` ⇔ `t` present.
    words: Vec<u64>,
    /// 1-based Fenwick tree over `words` popcounts; `fenwick.len() - 1`
    /// is a power of two ≥ `words.len()`.
    fenwick: Vec<u32>,
    /// First represented word: `words[0]` covers times
    /// `[base*64, base*64 + 64)`. Fixed by the first insertion.
    base: u64,
    len: u64,
}

impl TimeBits {
    /// Creates an empty set.
    pub fn new() -> TimeBits {
        TimeBits::default()
    }

    /// Number of times currently stored.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no time is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a time. Returns `false` (and changes nothing) if it was
    /// already present.
    pub fn insert(&mut self, t: u64) -> bool {
        let w = match self.word_index_grow(t) {
            Some(w) => w,
            None => return self.insert_below_base(t),
        };
        let bit = 1u64 << (t & 63);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.fenwick_add(w, 1);
        self.len += 1;
        true
    }

    /// Removes a time. Returns `false` if it was absent.
    pub fn remove(&mut self, t: u64) -> bool {
        let Some(w) = self.word_index(t) else {
            return false;
        };
        let bit = 1u64 << (t & 63);
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.fenwick_add(w, -1);
        self.len -= 1;
        true
    }

    /// Counts stored times strictly greater than `t` (which need not be
    /// present).
    pub fn count_greater(&self, t: u64) -> u64 {
        let first = self.base * 64;
        if t < first {
            return self.len;
        }
        let w = ((t - first) >> 6) as usize;
        if w >= self.words.len() {
            return 0;
        }
        // Times ≤ t: full words below w, plus the low bits of word w.
        let mask = u64::MAX >> (63 - (t & 63));
        let le = self.fenwick_prefix(w) + u64::from((self.words[w] & mask).count_ones());
        self.len - le
    }

    /// Fused `count_greater(old)` + `remove(old)` + `insert(new)` — the
    /// analyzer's per-access triple, mirroring
    /// [`OrderStatTree::count_reinsert`](crate::OrderStatTree::count_reinsert).
    /// Returns `(old_was_present, count)` where `count` is the number of
    /// stored times strictly greater than `old` before the operation.
    pub fn count_reinsert(&mut self, old: u64, new: u64) -> (bool, u64) {
        let removed = self.remove(old);
        let count = self.count_greater(old);
        self.insert(new);
        (removed, count)
    }

    /// The serializable parts of the structure: `(words, base, len)`.
    /// The Fenwick tree is derived state and deliberately excluded — a
    /// snapshot reader rebuilds it, so it can never be inconsistent with
    /// the bitmap it summarizes.
    pub(crate) fn snapshot_parts(&self) -> (&[u64], u64, u64) {
        (&self.words, self.base, self.len)
    }

    /// Rebuilds a set from [`snapshot_parts`](Self::snapshot_parts)
    /// output, recomputing the Fenwick tree. Returns `None` when the
    /// claimed `len` disagrees with the bitmap's population count — the
    /// one invariant the parts themselves can violate.
    pub(crate) fn from_snapshot_parts(words: Vec<u64>, base: u64, len: u64) -> Option<TimeBits> {
        let pop: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
        if pop != len {
            return None;
        }
        let mut t = TimeBits {
            words,
            fenwick: Vec::new(),
            base,
            len,
        };
        t.rebuild_fenwick();
        Some(t)
    }

    /// Word index for time `t`, or `None` when `t` lies below the base.
    /// Does not grow storage.
    fn word_index(&self, t: u64) -> Option<usize> {
        let first = self.base * 64;
        if t < first {
            return None;
        }
        let w = ((t - first) >> 6) as usize;
        if w >= self.words.len() {
            return None;
        }
        Some(w)
    }

    /// Word index for time `t`, growing `words` (and rebuilding the
    /// Fenwick tree on capacity doubling) as needed. `None` when `t` lies
    /// below the established base.
    fn word_index_grow(&mut self, t: u64) -> Option<usize> {
        if self.words.is_empty() {
            // First insertion fixes the base: a partition worker replaying
            // a late time segment starts its bitmap at its own span.
            self.base = t >> 6;
        }
        let first = self.base * 64;
        if t < first {
            return None;
        }
        let w = ((t - first) >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
            if self.words.len() > self.fenwick.len().saturating_sub(1) {
                self.rebuild_fenwick();
            }
        }
        Some(w)
    }

    /// Out-of-line slow path: a time below the fixed base (possible only
    /// through direct API use, never from the analyzer's monotone clock)
    /// rebuilds the bitmap at a lower base.
    #[cold]
    fn insert_below_base(&mut self, t: u64) -> bool {
        let new_base = t >> 6;
        let shift = (self.base - new_base) as usize;
        let mut words = vec![0u64; self.words.len() + shift];
        words[shift..].copy_from_slice(&self.words);
        self.words = words;
        self.base = new_base;
        self.rebuild_fenwick();
        let bit = 1u64 << (t & 63);
        if self.words[0] & bit != 0 {
            return false;
        }
        self.words[0] |= bit;
        self.fenwick_add(0, 1);
        self.len += 1;
        true
    }

    /// Rebuilds the Fenwick tree for the current `words`, with capacity
    /// the next power of two (doubling amortizes growth to O(1) per
    /// word).
    fn rebuild_fenwick(&mut self) {
        let cap = self.words.len().next_power_of_two().max(64);
        self.fenwick.clear();
        self.fenwick.resize(cap + 1, 0);
        for i in 0..self.words.len() {
            let w = self.words[i];
            if w != 0 {
                self.fenwick_add_cap(i, i64::from(w.count_ones()), cap);
            }
        }
    }

    /// Adds `delta` to word `w`'s popcount in the Fenwick tree.
    fn fenwick_add(&mut self, w: usize, delta: i64) {
        let cap = self.fenwick.len() - 1;
        self.fenwick_add_cap(w, delta, cap);
    }

    fn fenwick_add_cap(&mut self, w: usize, delta: i64, cap: usize) {
        let mut i = w + 1;
        while i <= cap {
            self.fenwick[i] = (i64::from(self.fenwick[i]) + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Total popcount of `words[..w]` (exclusive).
    fn fenwick_prefix(&self, w: usize) -> u64 {
        let mut i = w; // prefix over the first `w` words = 1-based index w
        let mut sum = 0u64;
        while i > 0 {
            sum += u64::from(self.fenwick[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ostree::OrderStatTree;
    use reuselens_prng::SplitMix64;

    #[test]
    fn empty_set_counts_zero() {
        let t = TimeBits::new();
        assert_eq!(t.count_greater(0), 0);
        assert_eq!(t.count_greater(u64::MAX), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut t = TimeBits::new();
        assert!(t.insert(100));
        assert!(!t.insert(100));
        assert_eq!(t.len(), 1);
        assert_eq!(t.count_greater(99), 1);
        assert_eq!(t.count_greater(100), 0);
        assert!(t.remove(100));
        assert!(!t.remove(100));
        assert!(t.is_empty());
    }

    #[test]
    fn below_base_insert_and_queries() {
        let mut t = TimeBits::new();
        t.insert(1000); // base fixed well above zero
        assert_eq!(t.count_greater(5), 1);
        assert!(!t.remove(5));
        assert!(t.insert(5)); // forces a base rebuild
        assert_eq!(t.count_greater(4), 2);
        assert_eq!(t.count_greater(5), 1);
        assert!(t.remove(5));
        assert!(t.remove(1000));
        assert!(t.is_empty());
    }

    #[test]
    fn count_reinsert_matches_unfused_sequence() {
        let mut fused = TimeBits::new();
        let mut plain = TimeBits::new();
        for k in [10u64, 20, 30, 40] {
            fused.insert(k);
            plain.insert(k);
        }
        let (removed, count) = fused.count_reinsert(20, 50);
        let expect = plain.count_greater(20);
        let expect_removed = plain.remove(20);
        plain.insert(50);
        assert_eq!((removed, count), (expect_removed, expect));
        assert_eq!(fused.count_greater(0), plain.count_greater(0));
    }

    /// Randomized differential test against the balanced tree: the two
    /// structures must agree operation by operation on the analyzer's
    /// monotone-clock pattern and on arbitrary sparse patterns.
    #[test]
    fn matches_order_stat_tree() {
        let mut rng = SplitMix64::seed_from_u64(0x71b1_7500_bead);
        for case in 0..24 {
            let mut bits = TimeBits::new();
            let mut tree = OrderStatTree::new();
            let sparse = case % 3 == 2;
            let mut live: Vec<u64> = Vec::new();
            let mut next = rng.gen_range(1..10_000);
            for _ in 0..400 {
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        // Monotone insert (the eviction pattern).
                        next += rng.gen_range(1..if sparse { 5_000 } else { 40 });
                        assert_eq!(bits.insert(next), tree.insert(next));
                        live.push(next);
                    }
                    2 if !live.is_empty() => {
                        let i = rng.gen_range(0..live.len() as u64) as usize;
                        let old = live.swap_remove(i);
                        next += rng.gen_range(1..40);
                        let a = bits.count_reinsert(old, next);
                        let b = tree.count_reinsert(old, next);
                        assert_eq!(a, b);
                        live.push(next);
                    }
                    _ if !live.is_empty() => {
                        let i = rng.gen_range(0..live.len() as u64) as usize;
                        let old = live.swap_remove(i);
                        assert_eq!(bits.remove(old), tree.remove(old));
                    }
                    _ => {}
                }
                assert_eq!(bits.len(), tree.len());
                let probe = rng.gen_range(0..next + 10);
                assert_eq!(
                    bits.count_greater(probe),
                    tree.count_greater(probe),
                    "count_greater({probe}) diverged (case {case})"
                );
            }
        }
    }
}
