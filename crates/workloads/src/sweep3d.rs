//! The Sweep3D wavefront kernel model (paper §V-A).
//!
//! Sweep3D performs diagonal sweeps over a 3-D Cartesian mesh. Following
//! the paper's Figure 4(b), the wavefront iterates diagonal planes of the
//! `(j, k, mi)` space — `j`,`k` mesh coordinates, `mi` the simulated angle
//! — and each plane cell runs inner loops over the `i` mesh dimension and
//! the `nm` flux moments. The arrays that matter (`src`, `flux`, `face`,
//! `sigt`) are **not indexed by `mi`**, so cells that differ only in angle
//! touch identical memory: that reuse is carried by the `idiag` loop and is
//! too long to hit in cache — until the `mi` dimension is blocked (Fig. 7).
//!
//! Two of the paper's transformations are modeled:
//!
//! * **`mi`-blocking** with factor `B` ([`SweepConfig::mi_block`]): the
//!   wavefront runs over `(j, k, ⌈mi/B⌉)` and each cell processes its `B`
//!   angles back-to-back. `B = 1` reproduces the original code's memory
//!   behaviour (the paper found them identical — here they coincide by
//!   construction).
//! * **dimension interchange** ([`SweepConfig::dim_interchange`]): `src`
//!   and `flux` become `(it, nm, jt, kt)` so the `n` loop walks adjacent
//!   memory instead of striding a whole 3-D mesh per moment.

use crate::BuiltWorkload;
use reuselens_ir::{Expr, Pred, ProgramBuilder};

/// Configuration of the Sweep3D model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Cubic mesh extent (`it = jt = kt`).
    pub mesh: u64,
    /// Number of simulated angles (`mmi`; the paper's input used 6).
    pub angles: u64,
    /// Flux moments (`nm`).
    pub moments: u64,
    /// Octants swept per time step (the paper sweeps 8; fewer octants
    /// scale the run down without changing any reuse pattern's shape).
    pub octants: u64,
    /// Simulated time steps.
    pub timesteps: u64,
    /// Angle-blocking factor `B` (1 = original memory behaviour).
    pub mi_block: u64,
    /// Move the `n` dimension of `src`/`flux` into second position.
    pub dim_interchange: bool,
    /// The Ding & Zhong-style restructuring the paper's §VI compares
    /// against: process every octant's work for a cell back-to-back,
    /// shortening the `iq`-carried reuse at the cost of the sweep's
    /// wavefront parallelism. Mutually exclusive with `mi_block > 1`.
    pub octant_inner: bool,
}

impl SweepConfig {
    /// A baseline configuration for the given cubic mesh: 6 angles, 2
    /// moments, 2 octants, 1 time step, unblocked, original layout.
    pub fn new(mesh: u64) -> SweepConfig {
        SweepConfig {
            mesh,
            angles: 6,
            moments: 2,
            octants: 2,
            timesteps: 1,
            mi_block: 1,
            dim_interchange: false,
            octant_inner: false,
        }
    }

    /// Sets the angle-blocking factor.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero or larger than the angle count.
    pub fn with_mi_block(mut self, b: u64) -> SweepConfig {
        assert!(b >= 1 && b <= self.angles, "block must be in 1..=angles");
        self.mi_block = b;
        self
    }

    /// Enables the src/flux dimension interchange.
    pub fn with_dim_interchange(mut self) -> SweepConfig {
        self.dim_interchange = true;
        self
    }

    /// Sets the number of time steps.
    pub fn with_timesteps(mut self, t: u64) -> SweepConfig {
        self.timesteps = t;
        self
    }

    /// Sets the number of octants.
    pub fn with_octants(mut self, o: u64) -> SweepConfig {
        self.octants = o;
        self
    }

    /// Enables the Ding & Zhong-style octant restructuring (§VI).
    ///
    /// # Panics
    ///
    /// Panics if combined with an angle-blocking factor other than 1.
    pub fn with_octant_inner(mut self) -> SweepConfig {
        assert_eq!(self.mi_block, 1, "octant_inner models the unblocked code");
        self.octant_inner = true;
        self
    }

    /// Mesh cells (the paper's per-cell normalizer).
    pub fn cells(&self) -> u64 {
        self.mesh * self.mesh * self.mesh
    }
}

/// Builds the Sweep3D model for a configuration.
///
/// # Examples
///
/// ```
/// use reuselens_workloads::sweep3d::{build, SweepConfig};
///
/// let w = build(&SweepConfig::new(8));
/// w.program.validate().unwrap();
/// assert!(w.program.scope_by_name("idiag").is_some());
/// ```
pub fn build(cfg: &SweepConfig) -> BuiltWorkload {
    let n = cfg.mesh;
    let (it, jt, kt) = (n, n, n);
    let nm = cfg.moments;
    let mmi = cfg.angles;
    let b_factor = cfg.mi_block;
    let mmib = mmi.div_ceil(b_factor);

    let mut p = ProgramBuilder::new(format!(
        "sweep3d-{n}-b{b_factor}{}{}",
        if cfg.dim_interchange { "-dimic" } else { "" },
        if cfg.octant_inner { "-dz" } else { "" }
    ));

    // Column-major arrays. src/flux: (i, j, k, n) originally; the
    // dimension-interchange variant stores (i, n, j, k).
    let (src, flux) = if cfg.dim_interchange {
        (
            p.array("src", 8, &[it, nm, jt, kt]),
            p.array("flux", 8, &[it, nm, jt, kt]),
        )
    } else {
        (
            p.array("src", 8, &[it, jt, kt, nm]),
            p.array("flux", 8, &[it, jt, kt, nm]),
        )
    };
    let face = p.array("face", 8, &[it, jt, kt]);
    let sigt = p.array("sigt", 8, &[it, jt, kt]);
    let phi = p.array("phi", 8, &[it]);
    let phikb = p.array("phikb", 8, &[it, kt]);
    let phijb = p.array("phijb", 8, &[it, jt]);
    let pn = p.array("pn", 8, &[mmi, nm.max(2), 8]);
    let w_arr = p.array("w", 8, &[mmi]);

    // Subscript helper honoring the layout variant.
    let dim_ic = cfg.dim_interchange;
    let subs = move |i: Expr, j: Expr, k: Expr, nn: i64| -> Vec<Expr> {
        if dim_ic {
            vec![i, Expr::c(nn), j, k]
        } else {
            vec![i, j, k, Expr::c(nn)]
        }
    };
    let subs_var =
        move |i: Expr, j: Expr, k: Expr, nn: Expr| -> Vec<Expr> {
            if dim_ic {
                vec![i, nn, j, k]
            } else {
                vec![i, j, k, nn]
            }
        };

    let sweep = p.declare_routine("sweep");
    let main = p.routine("main", |r| {
        r.for_("ts", 0, (cfg.timesteps - 1) as i64, |r, _| {
            r.call(sweep);
        });
    });
    p.set_entry(main);

    let octant_inner = cfg.octant_inner;
    p.define_routine(sweep, |r| {
        let dmax = (jt - 1) + (kt - 1) + (mmib - 1);
        if octant_inner {
            // Ding & Zhong-style restructuring: the octant loop moves
            // inside the plane-cell loops, so data reused across octants
            // is re-touched immediately — at the cost of the wavefront's
            // coarse- and fine-grain parallelism (paper §VI).
            r.for_("idiag", 0, dmax as i64, |r, idiag| {
                r.for_("jkm", 0, (mmib - 1) as i64, |r, mib| {
                    r.for_("jk", 0, (kt - 1) as i64, |r, k| {
                        let j = r.let_(
                            "j",
                            Expr::var(idiag) - Expr::var(k) - Expr::var(mib),
                        );
                        let in_plane = Pred::Ge(Expr::var(j), Expr::c(0))
                            .and(Pred::Lt(Expr::var(j), Expr::c(jt as i64)));
                        r.if_(in_plane, |r| {
                            r.for_("iq", 0, (cfg.octants - 1) as i64, |r, iq| {
                                let mi = r.let_("mi", Expr::var(mib));
                                emit_cell(
                                    r, it, nm, src, flux, face, sigt, phi, phikb,
                                    phijb, pn, w_arr, j, k, mi, iq, &subs, &subs_var,
                                );
                            });
                        });
                    });
                });
            });
        } else {
            r.for_("iq", 0, (cfg.octants - 1) as i64, |r, iq| {
                // Diagonal planes of the (j, k, mib) wavefront space.
                r.for_("idiag", 0, dmax as i64, |r, idiag| {
                    r.for_("jkm", 0, (mmib - 1) as i64, |r, mib| {
                        r.for_("jk", 0, (kt - 1) as i64, |r, k| {
                            let j = r.let_(
                                "j",
                                Expr::var(idiag) - Expr::var(k) - Expr::var(mib),
                            );
                            let in_plane = Pred::Ge(Expr::var(j), Expr::c(0))
                                .and(Pred::Lt(Expr::var(j), Expr::c(jt as i64)));
                            r.if_(in_plane, |r| {
                                r.for_("b", 0, (b_factor - 1) as i64, |r, bb| {
                                    let mi = r.let_(
                                        "mi",
                                        Expr::var(mib) * b_factor as i64 + Expr::var(bb),
                                    );
                                    r.if_(
                                        Pred::Lt(Expr::var(mi), Expr::c(mmi as i64)),
                                        |r| {
                                            emit_cell(
                                                r, it, nm, src, flux, face, sigt, phi, phikb,
                                                phijb, pn, w_arr, j, k, mi, iq, &subs, &subs_var,
                                            );
                                        },
                                    );
                                });
                            });
                        });
                    });
                });
            });
        }
    });

    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: cfg.cells() as f64,
        timesteps: cfg.timesteps,
    }
}

/// Emits the per-cell computation: the src gather (paper lines 384–391),
/// the balance/sigt work with the pipeline buffers (397–410), the flux
/// accumulation (474–482), and the face update (486–493).
#[allow(clippy::too_many_arguments)]
fn emit_cell(
    r: &mut reuselens_ir::BodyBuilder<'_>,
    it: u64,
    nm: u64,
    src: reuselens_ir::ArrayId,
    flux: reuselens_ir::ArrayId,
    face: reuselens_ir::ArrayId,
    sigt: reuselens_ir::ArrayId,
    phi: reuselens_ir::ArrayId,
    phikb: reuselens_ir::ArrayId,
    phijb: reuselens_ir::ArrayId,
    pn: reuselens_ir::ArrayId,
    w_arr: reuselens_ir::ArrayId,
    j: reuselens_ir::VarId,
    k: reuselens_ir::VarId,
    mi: reuselens_ir::VarId,
    iq: reuselens_ir::VarId,
    subs: &impl Fn(Expr, Expr, Expr, i64) -> Vec<Expr>,
    subs_var: &impl Fn(Expr, Expr, Expr, Expr) -> Vec<Expr>,
) {
    let jv = || Expr::var(j);
    let kv = || Expr::var(k);
    let last = (it - 1) as i64;

    // phi(i) = src(i,j,k,1)
    r.for_("src_loop", 0, last, |r, i| {
        r.load_labeled(src, subs(i.into(), jv(), kv(), 0), "src(i,j,k,1)");
        r.store_labeled(phi, vec![i.into()], "phi(i)");
    });
    // DO n = 2, nm: phi(i) += pn(m,n,iq) * src(i,j,k,n)
    r.for_("src_n", 1, (nm - 1) as i64, |r, nn| {
        r.load_labeled(
            pn,
            vec![Expr::var(mi), Expr::var(nn), Expr::var(iq)],
            "pn(m,n,iq)",
        );
        r.for_("src_n_i", 0, last, |r, i| {
            r.load_labeled(
                src,
                subs_var(i.into(), jv(), kv(), Expr::var(nn)),
                "src(i,j,k,n)",
            );
            r.load(phi, vec![i.into()]);
            r.store(phi, vec![i.into()]);
        });
    });
    // Balance equation: sigt plus the I/J pipeline buffers.
    r.for_("sigt_loop", 0, last, |r, i| {
        r.load_labeled(sigt, vec![i.into(), jv(), kv()], "sigt(i,j,k)");
        r.load(phi, vec![i.into()]);
        r.store(phi, vec![i.into()]);
        r.load_labeled(phikb, vec![i.into(), kv()], "phikb(i,k)");
        r.store(phikb, vec![i.into(), kv()]);
        r.load_labeled(phijb, vec![i.into(), jv()], "phijb(i,j)");
        r.store(phijb, vec![i.into(), jv()]);
    });
    // flux(i,j,k,1) += w(m) * phi(i)
    r.for_("flux_loop", 0, last, |r, i| {
        r.load_labeled(w_arr, vec![Expr::var(mi)], "w(m)");
        r.load_labeled(flux, subs(i.into(), jv(), kv(), 0), "flux(i,j,k,1)");
        r.load(phi, vec![i.into()]);
        r.store(flux, subs(i.into(), jv(), kv(), 0));
    });
    r.for_("flux_n", 1, (nm - 1) as i64, |r, nn| {
        r.load(pn, vec![Expr::var(mi), Expr::var(nn), Expr::var(iq)]);
        r.for_("flux_n_i", 0, last, |r, i| {
            r.load_labeled(
                flux,
                subs_var(i.into(), jv(), kv(), Expr::var(nn)),
                "flux(i,j,k,n)",
            );
            r.load(phi, vec![i.into()]);
            r.store(flux, subs_var(i.into(), jv(), kv(), Expr::var(nn)));
        });
    });
    // face update
    r.for_("face_loop", 0, last, |r, i| {
        r.load_labeled(face, vec![i.into(), jv(), kv()], "face(i,j,k)");
        r.load(phi, vec![i.into()]);
        r.store(face, vec![i.into(), jv(), kv()]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_core::analyze_program;

    #[test]
    fn every_variant_validates_and_runs() {
        for b in [1, 2, 3, 6] {
            let w = build(&SweepConfig::new(6).with_mi_block(b));
            w.program.validate().unwrap();
            let r = analyze_program(&w.program, &[64], vec![]).unwrap();
            assert!(r.exec.accesses > 0);
        }
        let w = build(&SweepConfig::new(6).with_mi_block(6).with_dim_interchange());
        w.program.validate().unwrap();
    }

    #[test]
    fn blocking_preserves_work() {
        // Blocking reorders the wavefront but processes the same cells:
        // identical access counts and footprint.
        let w1 = build(&SweepConfig::new(8));
        let w3 = build(&SweepConfig::new(8).with_mi_block(3));
        let r1 = analyze_program(&w1.program, &[64], vec![]).unwrap();
        let r3 = analyze_program(&w3.program, &[64], vec![]).unwrap();
        assert_eq!(r1.exec.accesses, r3.exec.accesses);
        assert_eq!(
            r1.profiles[0].distinct_blocks,
            r3.profiles[0].distinct_blocks
        );
    }

    #[test]
    fn dim_interchange_preserves_work() {
        let w1 = build(&SweepConfig::new(8));
        let w2 = build(&SweepConfig::new(8).with_dim_interchange());
        let r1 = analyze_program(&w1.program, &[64], vec![]).unwrap();
        let r2 = analyze_program(&w2.program, &[64], vec![]).unwrap();
        assert_eq!(r1.exec.accesses, r2.exec.accesses);
    }

    #[test]
    fn wavefront_visits_every_cell_once_per_octant() {
        let cfg = SweepConfig::new(6);
        let w = build(&cfg);
        let r = analyze_program(&w.program, &[64], vec![]).unwrap();
        // src_loop runs once per (j,k,mi) wavefront cell per octant; its
        // per-entry trip count is `it`.
        let src_loop = w.program.scope_by_name("src_loop").unwrap();
        let stats = r.exec.scope_stats(src_loop);
        let wavefront_cells = 6 * 6 * cfg.angles * cfg.octants * cfg.timesteps;
        assert_eq!(stats.entries, wavefront_cells);
        assert_eq!(stats.iterations, wavefront_cells * 6);
    }

    #[test]
    fn idiag_carries_reuse_between_adjacent_planes() {
        let w = build(&SweepConfig::new(8));
        let profile = analyze_program(&w.program, &[64], vec![])
            .unwrap()
            .profiles
            .remove(0);
        let idiag = w.program.scope_by_name("idiag").unwrap();
        // Count *long* reuses — the ones that miss a small cache (128
        // lines). Cells differing only in angle sit on adjacent diagonals
        // and touch the same src/flux/face/sigt data, so the idiag loop
        // carries the dominant share of capacity misses (paper Fig. 5).
        let cache_lines = 128;
        let long_misses = |scope| -> f64 {
            profile
                .patterns_carried_by(scope)
                .map(|p| p.histogram.count_ge(cache_lines))
                .sum()
        };
        let total_long: f64 = w
            .program
            .scopes()
            .iter()
            .map(|s| long_misses(s.id()))
            .sum();
        let idiag_share = long_misses(idiag) / total_long;
        assert!(
            idiag_share > 0.5,
            "idiag carries only {:.1}% of long reuses",
            100.0 * idiag_share
        );
    }

    #[test]
    fn blocking_moves_idiag_reuse_into_the_cell_loops() {
        let w1 = build(&SweepConfig::new(8));
        let w6 = build(&SweepConfig::new(8).with_mi_block(6));
        let p1 = analyze_program(&w1.program, &[64], vec![]).unwrap().profiles.remove(0);
        let p6 = analyze_program(&w6.program, &[64], vec![]).unwrap().profiles.remove(0);
        let idiag1 = w1.program.scope_by_name("idiag").unwrap();
        let idiag6 = w6.program.scope_by_name("idiag").unwrap();
        let carried = |p: &reuselens_core::ReuseProfile, s| {
            p.patterns_carried_by(s).map(|pp| pp.count()).sum::<u64>()
        };
        // With all 6 angles blocked, the angle-induced reuse is carried by
        // the inner b loop at tiny distance instead of idiag.
        assert!(carried(&p6, idiag6) < carried(&p1, idiag1) / 2);
    }
}

#[cfg(test)]
mod dz_tests {
    use super::*;
    use reuselens_core::analyze_program;

    #[test]
    fn octant_inner_preserves_work() {
        let base = build(&SweepConfig::new(8));
        let dz = build(&SweepConfig::new(8).with_octant_inner());
        let rb = analyze_program(&base.program, &[64], vec![]).unwrap();
        let rd = analyze_program(&dz.program, &[64], vec![]).unwrap();
        assert_eq!(rb.exec.accesses, rd.exec.accesses);
        assert_eq!(
            rb.profiles[0].distinct_blocks,
            rd.profiles[0].distinct_blocks
        );
    }

    #[test]
    fn octant_inner_shortens_cross_octant_reuse() {
        let base = build(&SweepConfig::new(8));
        let dz = build(&SweepConfig::new(8).with_octant_inner());
        // In the original, cross-octant reuse is carried by the iq loop at
        // whole-mesh distance; restructured, the iq loop sits inside the
        // cell loops and its carried reuses are near-zero distance.
        let iq_mean = |w: &crate::BuiltWorkload| {
            let prof = analyze_program(&w.program, &[64], vec![])
                .unwrap()
                .profiles
                .remove(0);
            let iq = w.program.scope_by_name("iq").unwrap();
            let mut h = reuselens_core::Histogram::new();
            for p in prof.patterns_carried_by(iq) {
                h.merge(&p.histogram);
            }
            h.mean().unwrap_or(0.0)
        };
        let before = iq_mean(&base);
        let after = iq_mean(&dz);
        assert!(
            after < before / 20.0,
            "octant restructuring should shorten iq reuse: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "octant_inner models the unblocked code")]
    fn octant_inner_rejects_blocking() {
        let _ = SweepConfig::new(8).with_mi_block(2).with_octant_inner();
    }
}
