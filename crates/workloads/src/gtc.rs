//! The Gyrokinetic Toroidal Code (GTC) particle-in-cell model (paper §V-B).
//!
//! One simulated time step runs a 2nd-order Runge-Kutta predictor-corrector
//! (`irk` loop) over the PIC phases:
//!
//! 1. **`chargei`** — deposit particle charge onto the grid: a first loop
//!    computes per-particle intermediates into a temporary, a second loop
//!    scatters them through the particle→grid index (`jtion`);
//! 2. **`poisson`** — an iterative solver whose ring stencil reads
//!    `ring`/`indexp` arrays with a *variable* inner trip count;
//! 3. **`smooth`** — a 3-D smoothing nest whose outer loop walks the
//!    array's inner dimension (the paper's 64%-of-TLB-misses nest);
//! 4. **`spcpft`** — a prime-factor transform with a redundant
//!    coefficient reload that unroll & jam removes;
//! 5. **`pushi`** — field gather + particle push, calling the C routine
//!    **`gcmotion`**, plus a final update loop.
//!
//! The particle state lives in `zion`/`zion0`: Fortran arrays of
//! seven-field records (`(7, mi)` column-major). Each loop touches only a
//! few fields, so lines are fetched mostly for unused bytes — the
//! fragmentation the paper's Fig. 9 pinpoints.
//!
//! [`GtcTransforms::cumulative`] reproduces the paper's Fig. 11 series:
//! `+zion transpose`, `+chargei fusion`, `+spcpft u&j`,
//! `+poisson transforms`, `+smooth LI`, `+pushi tiling/fusion`.

use crate::BuiltWorkload;
use reuselens_prng::SplitMix64;
use reuselens_ir::{ArrayId, BodyBuilder, Expr, ProgramBuilder};

/// Maximum ring-stencil length in the Poisson solver.
const MMAX: u64 = 8;
/// Poisson solver iterations.
const NITER: u64 = 2;
/// Second extent of the smoothing array.
const SMOO_D2: u64 = 8;
/// Third extent of the smoothing array.
const SMOO_D3: u64 = 8;

/// Which of the paper's transformations are applied (cumulatively in the
/// evaluation, but each flag is independent here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GtcTransforms {
    /// Transpose `zion`/`zion0` from `(7, mi)` to `(mi, 7)` (AoS → SoA).
    pub zion_transpose: bool,
    /// Fuse the two particle loops in `chargei`.
    pub chargei_fusion: bool,
    /// Unroll & jam `spcpft` (hoists the coefficient reload).
    pub spcpft_unroll_jam: bool,
    /// Linearize the `ring`/`indexp` arrays of the Poisson solver.
    pub poisson_linearize: bool,
    /// Interchange the `smooth` loop nest so the inner loop is contiguous.
    pub smooth_interchange: bool,
    /// Strip-mine `pushi`'s loops and `gcmotion` with this stripe size and
    /// fuse the strip loops (`None` = original).
    pub pushi_tiling: Option<u64>,
}

impl GtcTransforms {
    /// The first `n` transformations in the paper's cumulative order
    /// (0 = original, 6 = all).
    ///
    /// # Panics
    ///
    /// Panics if `n > 6`.
    pub fn cumulative(n: usize) -> GtcTransforms {
        assert!(n <= 6, "there are six transformations");
        GtcTransforms {
            zion_transpose: n >= 1,
            chargei_fusion: n >= 2,
            spcpft_unroll_jam: n >= 3,
            poisson_linearize: n >= 4,
            smooth_interchange: n >= 5,
            pushi_tiling: (n >= 6).then_some(512),
        }
    }

    /// Display label matching the paper's Fig. 11 legend.
    pub fn label(n: usize) -> &'static str {
        [
            "gtc_original",
            "+zion transpose",
            "+chargei fusion",
            "+spcpft u&j",
            "+poisson transforms",
            "+smooth LI",
            "+pushi tiling/fusion",
        ][n]
    }
}

/// Configuration of the GTC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtcConfig {
    /// Grid points on the poloidal plane.
    pub mgrid: u64,
    /// Particles per cell (the paper's Fig. 11 x-axis).
    pub micell: u64,
    /// Simulated time steps.
    pub timesteps: u64,
    /// Applied transformations.
    pub transforms: GtcTransforms,
    /// RNG seed for the particle→grid map.
    pub seed: u64,
}

impl GtcConfig {
    /// A baseline configuration (no transformations, 1 time step).
    pub fn new(mgrid: u64, micell: u64) -> GtcConfig {
        GtcConfig {
            mgrid,
            micell,
            timesteps: 1,
            transforms: GtcTransforms::default(),
            seed: 0x5eed,
        }
    }

    /// Applies a transformation set.
    pub fn with_transforms(mut self, t: GtcTransforms) -> GtcConfig {
        self.transforms = t;
        self
    }

    /// Sets the number of time steps.
    pub fn with_timesteps(mut self, t: u64) -> GtcConfig {
        self.timesteps = t;
        self
    }

    /// Total particles.
    pub fn particles(&self) -> u64 {
        self.mgrid * self.micell
    }
}

/// The zion subscript order for the active layout.
fn zsub(transpose: bool, field: i64, particle: Expr) -> Vec<Expr> {
    if transpose {
        vec![particle, Expr::c(field)]
    } else {
        vec![Expr::c(field), particle]
    }
}

/// Builds the GTC model.
///
/// # Examples
///
/// ```
/// use reuselens_workloads::gtc::{build, GtcConfig, GtcTransforms};
///
/// let w = build(&GtcConfig::new(64, 4).with_transforms(GtcTransforms::cumulative(1)));
/// w.program.validate().unwrap();
/// assert!(w.program.routine_by_name("gcmotion").is_some());
/// ```
pub fn build(cfg: &GtcConfig) -> BuiltWorkload {
    let mi = cfg.particles();
    let mgrid = cfg.mgrid;
    let t = cfg.transforms;

    let mut p = ProgramBuilder::new(format!("gtc-{}-{}", mgrid, cfg.micell));

    // Particle arrays: seven fields per particle.
    let zion_dims: &[u64] = if t.zion_transpose { &[mi, 7] } else { &[7, mi] };
    let zion = p.array("zion", 8, zion_dims);
    let zion0 = p.array("zion0", 8, zion_dims);
    let wzion = p.array("wzion", 8, &[mi]);
    let workp = p.array("workp", 8, &[mi]);

    // Grid arrays.
    let densityi = p.array("densityi", 8, &[mgrid]);
    let phi_grid = p.array("phi_grid", 8, &[mgrid]);
    let evector = p.array("evector", 8, &[3, mgrid]);
    let smoo = p.array("smoo", 8, &[mgrid, SMOO_D2, SMOO_D3]);
    let xfft = p.array("xfft", 8, &[mgrid, 8]);
    let coef = p.array("coef", 8, &[8]);

    // Index arrays.
    let jtion = p.index_array("jtion", &[mi]);
    let nring = p.index_array("nring", &[mgrid]);
    let total_ring: u64 = (0..mgrid).map(ring_len).sum();
    let (ring, indexp, rstart, ring_lin, indexp_lin);
    if t.poisson_linearize {
        ring = None;
        indexp = None;
        rstart = Some(p.index_array("rstart", &[mgrid + 1]));
        ring_lin = Some(p.array("ring_lin", 8, &[total_ring]));
        indexp_lin = Some(p.index_array("indexp_lin", &[total_ring]));
    } else {
        ring = Some(p.array("ring", 8, &[MMAX, mgrid]));
        indexp = Some(p.index_array("indexp", &[MMAX, mgrid]));
        rstart = None;
        ring_lin = None;
        indexp_lin = None;
    }

    // Strip bounds shared between pushi and gcmotion.
    let lo = p.scalar("strip_lo");
    let hi = p.scalar("strip_hi");

    let chargei = p.declare_routine("chargei");
    let poisson = p.declare_routine("poisson");
    let smooth = p.declare_routine("smooth");
    let spcpft = p.declare_routine("spcpft");
    let pushi = p.declare_routine("pushi");
    let gcmotion = p.declare_routine("gcmotion");

    let main = p.routine("main", |r| {
        r.for_("istep", 0, (cfg.timesteps - 1) as i64, |r, _| {
            r.for_("irk", 0, 1, |r, _| {
                r.call(chargei);
                r.call(poisson);
                r.call(smooth);
                r.call(spcpft);
                r.call(pushi);
            });
        });
    });
    p.set_entry(main);

    // ---- chargei ------------------------------------------------------
    p.define_routine(chargei, |r| {
        let last = (mi - 1) as i64;
        if t.chargei_fusion {
            // Fused: intermediates stay in registers; deposit directly.
            r.for_("chargei_fused", 0, last, |r, i| {
                r.load_labeled(zion, zsub(t.zion_transpose, 0, i.into()), "zion(1,i)");
                r.load_labeled(zion, zsub(t.zion_transpose, 1, i.into()), "zion(2,i)");
                let g = Expr::load(jtion, vec![i.into()]);
                r.load_labeled(jtion, vec![i.into()], "jtion(i)");
                r.load_labeled(densityi, vec![g.clone()], "densityi(jt)");
                r.store(densityi, vec![g]);
            });
        } else {
            r.for_("chargei_loop1", 0, last, |r, i| {
                r.load_labeled(zion, zsub(t.zion_transpose, 0, i.into()), "zion(1,i)");
                r.load_labeled(zion, zsub(t.zion_transpose, 1, i.into()), "zion(2,i)");
                r.store_labeled(wzion, vec![i.into()], "wzion(i)");
            });
            r.for_("chargei_loop2", 0, last, |r, i| {
                r.load_labeled(wzion, vec![i.into()], "wzion(i)");
                // The deposition re-reads the particle position fields.
                r.load(zion, zsub(t.zion_transpose, 0, i.into()));
                r.load(zion, zsub(t.zion_transpose, 1, i.into()));
                let g = Expr::load(jtion, vec![i.into()]);
                r.load_labeled(jtion, vec![i.into()], "jtion(i)");
                r.load_labeled(densityi, vec![g.clone()], "densityi(jt)");
                r.store(densityi, vec![g]);
            });
        }
    });

    // ---- poisson ------------------------------------------------------
    p.define_routine(poisson, |r| {
        r.for_("poisson_iter", 0, (NITER - 1) as i64, |r, _| {
            r.for_("poisson_ig", 0, (mgrid - 1) as i64, |r, ig| {
                r.load_labeled(densityi, vec![ig.into()], "densityi(ig)");
                if t.poisson_linearize {
                    let rs = rstart.unwrap();
                    let rl = ring_lin.unwrap();
                    let il = indexp_lin.unwrap();
                    let start = Expr::load(rs, vec![ig.into()]);
                    let stop = Expr::load(rs, vec![Expr::var(ig) + 1]) - 1;
                    r.for_("poisson_ring", start, stop, |r, m| {
                        r.load_labeled(rl, vec![m.into()], "ring_lin(m)");
                        r.load_labeled(il, vec![m.into()], "indexp_lin(m)");
                        let nb = Expr::load(il, vec![m.into()]);
                        r.load_labeled(phi_grid, vec![nb], "phi(indexp)");
                    });
                } else {
                    let rg = ring.unwrap();
                    let ip = indexp.unwrap();
                    let count = Expr::load(nring, vec![ig.into()]) - 1;
                    r.for_("poisson_ring", 0, count, |r, m| {
                        r.load_labeled(rg, vec![m.into(), ig.into()], "ring(m,ig)");
                        r.load_labeled(ip, vec![m.into(), ig.into()], "indexp(m,ig)");
                        let nb = Expr::load(ip, vec![m.into(), ig.into()]);
                        r.load_labeled(phi_grid, vec![nb], "phi(indexp)");
                    });
                }
                r.store_labeled(phi_grid, vec![ig.into()], "phi(ig)");
            });
        });
    });

    // ---- smooth -------------------------------------------------------
    p.define_routine(smooth, |r| {
        let d1 = (mgrid - 1) as i64;
        let d2 = (SMOO_D2 - 1) as i64;
        let d3 = (SMOO_D3 - 1) as i64;
        if t.smooth_interchange {
            r.for_("smooth_k", 0, d3, |r, i3| {
                r.for_("smooth_j", 0, d2, |r, i2| {
                    r.for_("smooth_i", 0, d1, |r, i1| {
                        r.load_labeled(smoo, vec![i1.into(), i2.into(), i3.into()], "smoo");
                        r.store(smoo, vec![i1.into(), i2.into(), i3.into()]);
                    });
                });
            });
        } else {
            // Original: the OUTER loop walks the array's inner dimension.
            r.for_("smooth_i", 0, d1, |r, i1| {
                r.for_("smooth_j", 0, d2, |r, i2| {
                    r.for_("smooth_k", 0, d3, |r, i3| {
                        r.load_labeled(smoo, vec![i1.into(), i2.into(), i3.into()], "smoo");
                        r.store(smoo, vec![i1.into(), i2.into(), i3.into()]);
                    });
                });
            });
        }
    });

    // ---- spcpft -------------------------------------------------------
    p.define_routine(spcpft, |r| {
        let last_j = (mgrid - 1) as i64;
        if t.spcpft_unroll_jam {
            // Coefficient hoisted out of the inner loop by unroll & jam.
            r.for_("spcpft_k", 0, 7, |r, k| {
                r.load_labeled(coef, vec![k.into()], "coef(k)");
                r.for_("spcpft_j", 0, last_j, |r, jj| {
                    r.load_labeled(xfft, vec![jj.into(), k.into()], "x(j,k)");
                    r.store(xfft, vec![jj.into(), k.into()]);
                });
            });
        } else {
            // The recurrence forces a coefficient reload every iteration.
            r.for_("spcpft_k", 0, 7, |r, k| {
                r.for_("spcpft_j", 0, last_j, |r, jj| {
                    r.load_labeled(coef, vec![k.into()], "coef(k)");
                    r.load_labeled(xfft, vec![jj.into(), k.into()], "x(j,k)");
                    r.store(xfft, vec![jj.into(), k.into()]);
                });
            });
        }
    });

    // ---- pushi / gcmotion ---------------------------------------------
    let tz = t.zion_transpose;
    p.define_routine(gcmotion, |r| {
        r.for_("gcmotion_loop", Expr::var(lo), Expr::var(hi), |r, i| {
            r.load_labeled(workp, vec![i.into()], "workp(i)");
            for f in 0..4 {
                r.load_labeled(zion, zsub(tz, f, i.into()), "zion(f,i)");
            }
            r.store(zion, zsub(tz, 0, i.into()));
            r.store(zion, zsub(tz, 1, i.into()));
            r.store_labeled(zion0, zsub(tz, 0, i.into()), "zion0(1,i)");
            r.store(zion0, zsub(tz, 1, i.into()));
        });
    });

    p.define_routine(pushi, |r| {
        #[allow(clippy::too_many_arguments)]
        fn gather(
            r: &mut BodyBuilder<'_>,
            lo_e: Expr,
            hi_e: Expr,
            tz: bool,
            jtion: ArrayId,
            evector: ArrayId,
            zion: ArrayId,
            workp: ArrayId,
        ) {
            r.for_("pushi_gather", lo_e, hi_e, |r, i| {
                r.load_labeled(jtion, vec![i.into()], "jtion(i)");
                let g = Expr::load(jtion, vec![i.into()]);
                for c in 0..3 {
                    r.load_labeled(evector, vec![Expr::c(c), g.clone()], "evector(c,jt)");
                }
                r.load(zion, zsub(tz, 0, i.into()));
                r.load(zion, zsub(tz, 1, i.into()));
                r.store_labeled(workp, vec![i.into()], "workp(i)");
            });
        }
        fn update(
            r: &mut BodyBuilder<'_>,
            lo_e: Expr,
            hi_e: Expr,
            tz: bool,
            zion: ArrayId,
            zion0: ArrayId,
        ) {
            r.for_("pushi_update", lo_e, hi_e, |r, i| {
                r.load_labeled(zion0, zsub(tz, 0, i.into()), "zion0(1,i)");
                r.load(zion0, zsub(tz, 1, i.into()));
                r.load(zion, zsub(tz, 2, i.into()));
                r.store(zion, zsub(tz, 0, i.into()));
                r.store(zion, zsub(tz, 1, i.into()));
            });
        }
        match t.pushi_tiling {
            None => {
                let last = Expr::c((mi - 1) as i64);
                gather(r, Expr::c(0), last.clone(), tz, jtion, evector, zion, workp);
                r.set(lo, 0);
                r.set(hi, (mi - 1) as i64);
                r.call(gcmotion);
                update(r, Expr::c(0), last, tz, zion, zion0);
            }
            Some(stripe) => {
                let nstripes = mi.div_ceil(stripe);
                r.for_("pushi_stripes", 0, (nstripes - 1) as i64, |r, s| {
                    let s_lo = r.let_("s_lo", Expr::var(s) * stripe as i64);
                    let s_hi = r.let_(
                        "s_hi",
                        (Expr::var(s) * stripe as i64 + (stripe as i64 - 1))
                            .min(Expr::c((mi - 1) as i64)),
                    );
                    gather(
                        r,
                        Expr::var(s_lo),
                        Expr::var(s_hi),
                        tz,
                        jtion,
                        evector,
                        zion,
                        workp,
                    );
                    r.set(lo, Expr::var(s_lo));
                    r.set(hi, Expr::var(s_hi));
                    r.call(gcmotion);
                    update(r, Expr::var(s_lo), Expr::var(s_hi), tz, zion, zion0);
                });
            }
        }
    });

    // ---- index-array contents ------------------------------------------
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut index_arrays: Vec<(ArrayId, Vec<i64>)> = Vec::new();
    // Particles scattered over the grid: consecutive particles land on
    // unrelated cells (the irregular deposition/gather the paper reports).
    index_arrays.push((
        jtion,
        (0..mi).map(|_| rng.gen_range(0..mgrid) as i64).collect(),
    ));
    index_arrays.push((nring, (0..mgrid).map(|ig| ring_len(ig) as i64).collect()));
    if t.poisson_linearize {
        let mut offsets = Vec::with_capacity(mgrid as usize + 1);
        let mut acc = 0i64;
        for ig in 0..mgrid {
            offsets.push(acc);
            acc += ring_len(ig) as i64;
        }
        offsets.push(acc);
        debug_assert_eq!(acc as u64, total_ring);
        index_arrays.push((rstart.unwrap(), offsets));
        let mut packed = Vec::with_capacity(total_ring as usize);
        for ig in 0..mgrid {
            for m in 0..ring_len(ig) {
                packed.push(neighbor(ig, m, mgrid));
            }
        }
        index_arrays.push((indexp_lin.unwrap(), packed));
    } else {
        // Column-major (MMAX, mgrid): entry (m, ig) at flat m + MMAX*ig.
        let mut table = vec![0i64; (MMAX * mgrid) as usize];
        for ig in 0..mgrid {
            for m in 0..MMAX {
                table[(m + MMAX * ig) as usize] = neighbor(ig, m.min(ring_len(ig) - 1), mgrid);
            }
        }
        index_arrays.push((indexp.unwrap(), table));
    }

    BuiltWorkload {
        program: p.finish(),
        index_arrays,
        normalizer: cfg.micell as f64,
        timesteps: cfg.timesteps,
    }
}

/// Ring-stencil length per grid point: varies 4..=MMAX so the original
/// layout leaves unused tails in each `indexp`/`ring` column.
fn ring_len(ig: u64) -> u64 {
    4 + (ig * 7) % (MMAX - 3)
}

/// The `m`-th ring neighbor of grid point `ig` (local stencil).
fn neighbor(ig: u64, m: u64, mgrid: u64) -> i64 {
    let half = (MMAX / 2) as i64;
    ((ig as i64) + (m as i64) - half).rem_euclid(mgrid as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_core::analyze_program;

    fn analyze(cfg: &GtcConfig) -> (BuiltWorkload, reuselens_core::AnalysisResult) {
        let w = build(cfg);
        w.program.validate().unwrap();
        let r = analyze_program(&w.program, &[64], w.index_arrays.clone()).unwrap();
        (w, r)
    }

    #[test]
    fn every_cumulative_variant_builds_and_runs() {
        for n in 0..=6 {
            let cfg = GtcConfig::new(64, 4).with_transforms(GtcTransforms::cumulative(n));
            let (_, r) = analyze(&cfg);
            assert!(r.exec.accesses > 0, "variant {n} ran");
        }
    }

    #[test]
    fn chargei_fusion_removes_temporary_traffic() {
        let base = GtcConfig::new(128, 8);
        let fused = GtcConfig::new(128, 8).with_transforms(GtcTransforms {
            chargei_fusion: true,
            ..Default::default()
        });
        let (_, rb) = analyze(&base);
        let (_, rf) = analyze(&fused);
        // The fused version eliminates the wzion store + load and the two
        // zion re-reads per particle (4 accesses) in each of 2 irk phases.
        assert_eq!(rb.exec.accesses - rf.exec.accesses, 4 * 2 * 128 * 8);
    }

    #[test]
    fn spcpft_unroll_jam_reduces_accesses_only() {
        let base = GtcConfig::new(128, 2);
        let uj = GtcConfig::new(128, 2).with_transforms(GtcTransforms {
            spcpft_unroll_jam: true,
            ..Default::default()
        });
        let (_, rb) = analyze(&base);
        let (_, ru) = analyze(&uj);
        assert!(ru.exec.accesses < rb.exec.accesses);
        assert_eq!(
            rb.profiles[0].distinct_blocks,
            ru.profiles[0].distinct_blocks
        );
    }

    #[test]
    fn pushi_tiling_shortens_cross_loop_reuse() {
        let base = GtcConfig::new(256, 16);
        let tiled = GtcConfig::new(256, 16).with_transforms(GtcTransforms {
            pushi_tiling: Some(256),
            ..Default::default()
        });
        let (wb, rb) = analyze(&base);
        let (wt, rt) = analyze(&tiled);
        // workp is written in the gather loop and read in gcmotion. In the
        // original, a whole particle sweep intervenes; tiled, only a
        // stripe. Measure exactly that pattern (sink = the workp load in
        // gcmotion, source = the gather loop); other workp arcs (across irk
        // phases) are unaffected by tiling.
        let mean_workp_reuse = |w: &BuiltWorkload, r: &reuselens_core::AnalysisResult| {
            let workp_arr = w.program.array_by_name("workp").unwrap();
            let gather = w.program.scope_by_name("pushi_gather").unwrap();
            let gcmotion_loop = w.program.scope_by_name("gcmotion_loop").unwrap();
            let mut h = reuselens_core::Histogram::new();
            for pat in &r.profiles[0].patterns {
                let sink = w.program.reference(pat.key.sink);
                if sink.array() == workp_arr
                    && sink.scope() == gcmotion_loop
                    && pat.key.source_scope == gather
                {
                    h.merge(&pat.histogram);
                }
            }
            h.mean().unwrap()
        };
        let before = mean_workp_reuse(&wb, &rb);
        let after = mean_workp_reuse(&wt, &rt);
        assert!(
            after < before / 4.0,
            "tiling should shorten workp reuse: {before} -> {after}"
        );
    }

    #[test]
    fn gcmotion_reuse_is_carried_by_pushi() {
        let (w, r) = analyze(&GtcConfig::new(128, 8));
        let pushi_scope = w
            .program
            .routine(w.program.routine_by_name("pushi").unwrap())
            .scope();
        let workp_arr = w.program.array_by_name("workp").unwrap();
        let carried: u64 = r.profiles[0]
            .patterns_carried_by(pushi_scope)
            .filter(|p| w.program.reference(p.key.sink).array() == workp_arr)
            .map(|p| p.count())
            .sum();
        assert!(carried > 0, "pushi must carry workp reuse");
    }

    #[test]
    fn zion_transpose_reduces_touched_footprint() {
        let (_, rb) = analyze(&GtcConfig::new(256, 16));
        let (_, rt) = analyze(&GtcConfig::new(256, 16).with_transforms(GtcTransforms {
            zion_transpose: true,
            ..Default::default()
        }));
        // AoS walks all 7 fields' lines; SoA touches only the used fields.
        assert!(
            rt.profiles[0].distinct_blocks < rb.profiles[0].distinct_blocks,
            "SoA should touch fewer lines: {} vs {}",
            rt.profiles[0].distinct_blocks,
            rb.profiles[0].distinct_blocks
        );
    }

    #[test]
    fn poisson_linearize_preserves_gather_count() {
        let (_, rb) = analyze(&GtcConfig::new(128, 2));
        let (_, rl) = analyze(&GtcConfig::new(128, 2).with_transforms(GtcTransforms {
            poisson_linearize: true,
            ..Default::default()
        }));
        // Packed layout touches no more lines than the padded layout.
        assert!(rl.profiles[0].distinct_blocks <= rb.profiles[0].distinct_blocks);
    }

    #[test]
    fn smooth_interchange_preserves_accesses() {
        let (_, rb) = analyze(&GtcConfig::new(128, 2));
        let (_, rs) = analyze(&GtcConfig::new(128, 2).with_transforms(GtcTransforms {
            smooth_interchange: true,
            ..Default::default()
        }));
        assert_eq!(rb.exec.accesses, rs.exec.accesses);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(GtcTransforms::label(0), "gtc_original");
        assert_eq!(GtcTransforms::label(6), "+pushi tiling/fusion");
        let all = GtcTransforms::cumulative(6);
        assert!(all.zion_transpose && all.pushi_tiling.is_some());
    }
}
