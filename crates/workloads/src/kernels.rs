//! Pedagogical kernels from the paper and synthetic generators.

use crate::BuiltWorkload;
use reuselens_prng::SplitMix64;
use reuselens_ir::{Expr, Program, ProgramBuilder};

/// Which version of the Figure 1 loop nest to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Variant {
    /// Fig. 1(a): inner loop `j` walks rows of column-major arrays; the
    /// outer `i` loop carries the spatial reuse.
    RowOrder,
    /// Fig. 1(b): loops interchanged; the inner loop is contiguous.
    Interchanged,
}

/// Builds the paper's Figure 1 kernel: `A(I,J) = A(I,J) + B(I,J)` over
/// `n × m` column-major arrays.
pub fn fig1_interchange(n: u64, m: u64, variant: Fig1Variant) -> BuiltWorkload {
    let mut p = ProgramBuilder::new(match variant {
        Fig1Variant::RowOrder => "fig1a",
        Fig1Variant::Interchanged => "fig1b",
    });
    let a = p.array("a", 8, &[n, m]);
    let b = p.array("b", 8, &[n, m]);
    p.routine("main", |r| {
        let body = |r: &mut reuselens_ir::BodyBuilder<'_>, i: Expr, j: Expr| {
            r.load_labeled(b, vec![i.clone(), j.clone()], "B(I,J)");
            r.load_labeled(a, vec![i.clone(), j.clone()], "A(I,J)");
            r.store_labeled(a, vec![i, j], "A(I,J)=");
        };
        match variant {
            Fig1Variant::RowOrder => {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.for_("j", 0, (m - 1) as i64, |r, j| {
                        body(r, i.into(), j.into());
                    });
                });
            }
            Fig1Variant::Interchanged => {
                r.for_("j", 0, (m - 1) as i64, |r, j| {
                    r.for_("i", 0, (n - 1) as i64, |r, i| {
                        body(r, i.into(), j.into());
                    });
                });
            }
        }
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: (n * m) as f64,
        timesteps: 1,
    }
}

/// Builds the paper's Figure 2 fragmentation kernel:
///
/// ```fortran
/// DO J = 1, M
///   DO I = 1, N, 4
///     A(I+2,J) = A(I,J-1) + B(I+1,J) - B(I+3,J)
///     A(I+3,J) = A(I+1,J-1) + B(I,J) - B(I+2,J)
/// ```
pub fn fig2_fragmentation(n: u64, m: u64) -> BuiltWorkload {
    assert!(n.is_multiple_of(4), "n must be a multiple of the stride 4");
    let mut p = ProgramBuilder::new("fig2");
    let a = p.array("a", 8, &[n + 4, m + 1]);
    let b = p.array("b", 8, &[n + 4, m + 1]);
    p.routine("main", |r| {
        r.for_("j", 1, m as i64, |r, j| {
            r.for_step("i", 0, (n - 4) as i64, 4, |r, i| {
                let iv = Expr::var(i);
                let jv = Expr::var(j);
                r.load_labeled(a, vec![iv.clone(), jv.clone() - 1], "A(I,J-1)");
                r.load_labeled(b, vec![iv.clone() + 1, jv.clone()], "B(I+1,J)");
                r.load_labeled(b, vec![iv.clone() + 3, jv.clone()], "B(I+3,J)");
                r.store_labeled(a, vec![iv.clone() + 2, jv.clone()], "A(I+2,J)");
                r.load_labeled(a, vec![iv.clone() + 1, jv.clone() - 1], "A(I+1,J-1)");
                r.load_labeled(b, vec![iv.clone(), jv.clone()], "B(I,J)");
                r.load_labeled(b, vec![iv.clone() + 2, jv.clone()], "B(I+2,J)");
                r.store_labeled(a, vec![iv + 3, jv], "A(I+3,J)");
            });
        });
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: (n / 4 * m) as f64,
        timesteps: 1,
    }
}

/// A streaming kernel: `sweeps` passes over an `elems`-element array.
/// The workhorse for analyzer benches and scaling-model tests.
pub fn streaming(elems: u64, sweeps: u64) -> BuiltWorkload {
    let mut p = ProgramBuilder::new("streaming");
    let a = p.array("a", 8, &[elems]);
    p.routine("main", |r| {
        r.for_("t", 0, (sweeps - 1) as i64, |r, _| {
            r.for_("i", 0, (elems - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: elems as f64,
        timesteps: sweeps,
    }
}

/// A random-gather kernel: `passes` sweeps, each loading `accesses`
/// elements of a `table`-element array through a shuffled index array —
/// an irregular access pattern for stressing the analyzer and the
/// irregular-miss classification.
pub fn random_gather(table: u64, accesses: u64, passes: u64, seed: u64) -> BuiltWorkload {
    let mut p = ProgramBuilder::new("random_gather");
    let ix = p.index_array("ix", &[accesses]);
    let a = p.array("table", 8, &[table]);
    p.routine("main", |r| {
        r.for_("pass", 0, (passes - 1) as i64, |r, _| {
            r.for_("i", 0, (accesses - 1) as i64, |r, i| {
                r.load_labeled(
                    a,
                    vec![Expr::load(ix, vec![i.into()])],
                    "table(ix(i))",
                );
            });
        });
    });
    let mut rng = SplitMix64::seed_from_u64(seed);
    let idx: Vec<i64> = (0..accesses)
        .map(|_| rng.gen_range(0..table) as i64)
        .collect();
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![(ix, idx)],
        normalizer: accesses as f64,
        timesteps: passes,
    }
}

/// A 2-D five-point stencil over an `n × n` grid for `steps` time steps —
/// a classic time-loop-carried reuse pattern (Table I's last row).
pub fn stencil2d(n: u64, steps: u64) -> BuiltWorkload {
    let mut p = ProgramBuilder::new("stencil2d");
    let a = p.array("a", 8, &[n, n]);
    let b = p.array("b", 8, &[n, n]);
    p.routine("main", |r| {
        r.for_("t", 0, (steps - 1) as i64, |r, _| {
            r.for_("j", 1, (n - 2) as i64, |r, j| {
                r.for_("i", 1, (n - 2) as i64, |r, i| {
                    let iv = Expr::var(i);
                    let jv = Expr::var(j);
                    r.load(a, vec![iv.clone(), jv.clone()]);
                    r.load(a, vec![iv.clone() - 1, jv.clone()]);
                    r.load(a, vec![iv.clone() + 1, jv.clone()]);
                    r.load(a, vec![iv.clone(), jv.clone() - 1]);
                    r.load(a, vec![iv.clone(), jv.clone() + 1]);
                    r.store(b, vec![iv, jv]);
                });
            });
        });
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: (n * n) as f64,
        timesteps: steps,
    }
}

/// Dense matrix multiply `C += A·B` over `n × n` column-major matrices,
/// either the naive `j/i/k` nest or tiled with `tile × tile` blocks —
/// the canonical blocking example the paper's Table I points to when
/// several arrays with different dimension orders conflict.
pub fn matmul(n: u64, tile: Option<u64>) -> BuiltWorkload {
    let mut p = ProgramBuilder::new(match tile {
        None => "matmul-naive".to_string(),
        Some(t) => format!("matmul-tiled-{t}"),
    });
    let a = p.array("a", 8, &[n, n]);
    let b = p.array("b", 8, &[n, n]);
    let c = p.array("c", 8, &[n, n]);
    let last = (n - 1) as i64;
    p.routine("main", |r| {
        let body = |r: &mut reuselens_ir::BodyBuilder<'_>,
                    i: reuselens_ir::VarId,
                    j: reuselens_ir::VarId,
                    k: reuselens_ir::VarId| {
            r.load(a, vec![i.into(), k.into()]);
            r.load(b, vec![k.into(), j.into()]);
            r.load(c, vec![i.into(), j.into()]);
            r.store(c, vec![i.into(), j.into()]);
        };
        match tile {
            None => {
                r.for_("j", 0, last, |r, j| {
                    r.for_("i", 0, last, |r, i| {
                        r.for_("k", 0, last, |r, k| {
                            body(r, i, j, k);
                        });
                    });
                });
            }
            Some(t) => {
                assert!(t > 0 && n.is_multiple_of(t), "tile must divide n");
                let t = t as i64;
                r.for_step("jj", 0, last, t, |r, jj| {
                    r.for_step("kk", 0, last, t, |r, kk| {
                        r.for_("j", Expr::var(jj), Expr::var(jj) + (t - 1), |r, j| {
                            r.for_("i", 0, last, |r, i| {
                                r.for_(
                                    "k",
                                    Expr::var(kk),
                                    Expr::var(kk) + (t - 1),
                                    |r, k| {
                                        body(r, i, j, k);
                                    },
                                );
                            });
                        });
                    });
                });
            }
        }
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: (n * n * n) as f64,
        timesteps: 1,
    }
}

/// Out-of-place matrix transpose `B = Aᵀ` over `n × n` column-major
/// matrices: one of the two arrays is necessarily walked against its
/// layout, the textbook dimension-interchange victim.
pub fn transpose(n: u64) -> BuiltWorkload {
    let mut p = ProgramBuilder::new("transpose");
    let a = p.array("a", 8, &[n, n]);
    let b = p.array("b", 8, &[n, n]);
    let last = (n - 1) as i64;
    p.routine("main", |r| {
        r.for_("j", 0, last, |r, j| {
            r.for_("i", 0, last, |r, i| {
                r.load(a, vec![j.into(), i.into()]); // against layout
                r.store(b, vec![i.into(), j.into()]); // with layout
            });
        });
    });
    BuiltWorkload {
        program: p.finish(),
        index_arrays: vec![],
        normalizer: (n * n) as f64,
        timesteps: 1,
    }
}

/// Convenience for tests: just the program.
pub fn program_of(w: &BuiltWorkload) -> &Program {
    &w.program
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_core::analyze_program;

    #[test]
    fn fig1_variants_touch_identical_data() {
        let a = fig1_interchange(64, 32, Fig1Variant::RowOrder);
        let b = fig1_interchange(64, 32, Fig1Variant::Interchanged);
        let ra = analyze_program(&a.program, &[64], vec![]).unwrap();
        let rb = analyze_program(&b.program, &[64], vec![]).unwrap();
        assert_eq!(ra.exec.accesses, rb.exec.accesses);
        assert_eq!(
            ra.profiles[0].distinct_blocks,
            rb.profiles[0].distinct_blocks
        );
    }

    #[test]
    fn fig1_interchange_shortens_spatial_reuse() {
        // With a row-order traversal the same cache line is revisited only
        // after a whole row of other lines; interchanged, revisits are
        // immediate. Compare mean reuse distances.
        let a = fig1_interchange(128, 64, Fig1Variant::RowOrder);
        let b = fig1_interchange(128, 64, Fig1Variant::Interchanged);
        let pa = analyze_program(&a.program, &[64], vec![]).unwrap().profiles.remove(0);
        let pb = analyze_program(&b.program, &[64], vec![]).unwrap().profiles.remove(0);
        let mean = |p: &reuselens_core::ReuseProfile| {
            let mut h = reuselens_core::Histogram::new();
            for pat in &p.patterns {
                h.merge(&pat.histogram);
            }
            h.mean().unwrap()
        };
        assert!(mean(&pa) > 4.0 * mean(&pb));
    }

    #[test]
    fn fig2_builds_and_validates() {
        let w = fig2_fragmentation(64, 8);
        w.program.validate().unwrap();
        assert_eq!(w.program.references().len(), 8);
    }

    #[test]
    fn random_gather_runs_with_its_index_data() {
        let w = random_gather(1024, 4096, 2, 42);
        let r = analyze_program(&w.program, &[64], w.index_arrays.clone()).unwrap();
        assert_eq!(r.exec.accesses, 2 * 4096);
        // Determinism: same seed, same trace.
        let w2 = random_gather(1024, 4096, 2, 42);
        assert_eq!(w.index_arrays, w2.index_arrays);
    }

    #[test]
    fn stencil_time_loop_carries_cross_step_reuse() {
        let w = stencil2d(48, 2);
        let prof = analyze_program(&w.program, &[64], vec![])
            .unwrap()
            .profiles
            .remove(0);
        let t = w.program.scope_by_name("t").unwrap();
        let carried: u64 = prof.patterns_carried_by(t).map(|p| p.count()).sum();
        assert!(carried > 0, "time loop must carry cross-step reuse");
    }

    #[test]
    fn matmul_tiling_cuts_misses() {
        use reuselens_cache::{evaluate_program, MemoryHierarchy};
        let h = MemoryHierarchy::itanium2_scaled(64); // 4 KB L2
        let naive = matmul(64, None);
        let tiled = matmul(64, Some(16));
        let (rn, _) = evaluate_program(&naive.program, &h, vec![]).unwrap();
        let (rt, _) = evaluate_program(&tiled.program, &h, vec![]).unwrap();
        // Same work...
        assert_eq!(rn.accesses, rt.accesses);
        // ...far fewer misses.
        let gain = rn.misses_at("L2").unwrap() / rt.misses_at("L2").unwrap();
        assert!(gain > 2.0, "tiling gain {gain:.2}x");
    }

    #[test]
    fn transpose_reads_against_layout() {
        use reuselens_static::compute_formulas;
        let w = transpose(64);
        let formulas = compute_formulas(&w.program);
        let i = w.program.scope_by_name("i").unwrap();
        // The load walks the outer dimension in the inner loop.
        assert_eq!(
            formulas[0].stride_at(i),
            Some(reuselens_ir::Stride::Constant(64 * 8))
        );
        // The store is contiguous.
        assert_eq!(
            formulas[1].stride_at(i),
            Some(reuselens_ir::Stride::Constant(8))
        );
    }

    #[test]
    fn normalize_divides_by_cells_and_steps() {
        let w = streaming(100, 4);
        assert!((w.normalize(800.0) - 2.0).abs() < 1e-12);
    }
}
