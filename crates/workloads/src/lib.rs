//! # reuselens-workloads — the paper's evaluation codes, as IR models
//!
//! Faithful loop-structure models of the two applications the paper tunes,
//! with every transformation variant the evaluation measures:
//!
//! * [`sweep3d`] — the ASCI Sweep3D wavefront neutron-transport kernel:
//!   octant sweeps over diagonal planes of the `(j, k, mi)` iteration space
//!   (paper Fig. 3/4), with the `mi`-blocking and dimension-interchange
//!   transformations of §V-A (Fig. 7);
//! * [`gtc`] — the Gyrokinetic Toroidal Code particle-in-cell kernel:
//!   `chargei` / `poisson` / `smooth` / `spcpft` / `pushi`+`gcmotion`
//!   phases, the `zion` array of seven-field particle records, and the six
//!   cumulative transformations of §V-B (Fig. 11);
//! * [`kernels`] — the paper's pedagogical loops (Fig. 1 interchange,
//!   Fig. 2 fragmentation) and synthetic generators used by tests and
//!   benches.
//!
//! Each builder returns a [`BuiltWorkload`]: the program, the contents of
//! its index arrays (particle→grid maps, solver stencils), and the
//! normalizers the paper's figures divide by (cells or particles-per-cell,
//! and time steps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gtc;
pub mod kernels;
pub mod sweep3d;

use reuselens_ir::{ArrayId, Program};

/// A workload model ready to execute: program plus index-array contents
/// plus the figure normalizers.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// The program to analyze.
    pub program: Program,
    /// Contents for every index array the program reads.
    pub index_arrays: Vec<(ArrayId, Vec<i64>)>,
    /// The per-figure normalizer (mesh cells for Sweep3D, particles per
    /// cell for GTC).
    pub normalizer: f64,
    /// Simulated time steps (figures normalize per time step).
    pub timesteps: u64,
}

impl BuiltWorkload {
    /// Divides a raw metric by `normalizer × timesteps`, the
    /// per-cell-per-time-step units of the paper's figures.
    pub fn normalize(&self, raw: f64) -> f64 {
        raw / (self.normalizer * self.timesteps as f64)
    }
}
