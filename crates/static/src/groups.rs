//! Related-reference grouping, reuse-group splitting, and fragmentation
//! factors — the three-step algorithm of paper §III.

use crate::coverage::coverage;
use crate::formulas::{compute_formulas, RefFormulas};
use reuselens_ir::{ArrayId, Program, RefId, ScopeId, Stride};
use reuselens_trace::ExecReport;
use std::collections::HashMap;

/// A group of *related references*: same array, same symbolic stride with
/// respect to every enclosing loop, in the same loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedGroup {
    /// The array the group accesses.
    pub array: ArrayId,
    /// Members of the group.
    pub refs: Vec<RefId>,
    /// Step-1 result: the enclosing loop with the smallest nonzero
    /// constant byte stride, with that stride (signed).
    pub min_stride_loop: Option<(ScopeId, i64)>,
    /// Step-2 result: the reuse groups the related references split into.
    pub reuse_groups: Vec<Vec<RefId>>,
    /// Step-3 result: the fragmentation factor `1 − max coverage / |s|`,
    /// or `None` when no constant-stride loop exists.
    pub fragmentation: Option<f64>,
    /// The inside-out loop scan hit an irregular stride.
    pub irregular: bool,
    /// The inside-out loop scan hit an indirect stride.
    pub indirect: bool,
}

/// The full static-analysis result: per-reference formulas plus the related
/// groups with their fragmentation factors.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticAnalysis {
    /// Symbolic formulas per reference, indexed by [`RefId`].
    pub formulas: Vec<RefFormulas>,
    /// All related groups.
    pub groups: Vec<RelatedGroup>,
    frag_of_ref: Vec<Option<f64>>,
}

impl StaticAnalysis {
    /// Runs the complete static analysis. Average loop trip counts (used by
    /// the reuse-group splitting rule) come from the dynamic `exec` report,
    /// as in the paper.
    pub fn analyze(program: &Program, exec: &ExecReport) -> StaticAnalysis {
        let formulas = compute_formulas(program);
        let groups = build_groups(program, &formulas, exec);
        let mut frag_of_ref = vec![None; formulas.len()];
        for g in &groups {
            for &r in &g.refs {
                frag_of_ref[r.index()] = g.fragmentation;
            }
        }
        StaticAnalysis {
            formulas,
            groups,
            frag_of_ref,
        }
    }

    /// The fragmentation factor of the related group containing `r`
    /// (`None` when the group has no constant-stride loop).
    pub fn fragmentation_of(&self, r: RefId) -> Option<f64> {
        self.frag_of_ref.get(r.index()).copied().flatten()
    }

    /// True when a reuse pattern ending at `sink` and carried by `carrier`
    /// is *irregular*: the carrying scope produces an irregular or indirect
    /// stride formula at the destination reference (paper §III).
    pub fn is_irregular_pattern(&self, sink: RefId, carrier: ScopeId) -> bool {
        matches!(
            self.formulas[sink.index()].stride_at(carrier),
            Some(Stride::Irregular) | Some(Stride::Indirect)
        )
    }

    /// The related group containing `r`, if any.
    pub fn group_of(&self, r: RefId) -> Option<&RelatedGroup> {
        self.groups.iter().find(|g| g.refs.contains(&r))
    }
}

/// Key identifying a related-reference bucket: array, enclosing loop
/// chain, and the stride vector.
type GroupKey = (ArrayId, Vec<ScopeId>, Vec<(ScopeId, Stride)>);

fn build_groups(
    program: &Program,
    formulas: &[RefFormulas],
    exec: &ExecReport,
) -> Vec<RelatedGroup> {
    // Group by (array, enclosing loop chain, strides). References outside
    // any loop form their own singleton groups.
    let mut buckets: HashMap<GroupKey, Vec<RefId>> = HashMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    for f in formulas {
        let chain = program.enclosing_loops(program.reference(f.r).scope());
        let key = (f.array, chain, f.strides.clone());
        buckets
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(f.r);
    }
    order
        .into_iter()
        .filter_map(|key| {
            // Every key in `order` was inserted into `buckets` exactly
            // once; the guard satisfies the crate's no-unwrap wall.
            let refs = buckets.remove(&key)?;
            Some(make_group(program, formulas, exec, key.0, refs))
        })
        .collect()
}

fn make_group(
    program: &Program,
    formulas: &[RefFormulas],
    exec: &ExecReport,
    array: ArrayId,
    refs: Vec<RefId>,
) -> RelatedGroup {
    let rep = &formulas[refs[0].index()];

    // Step 1: walk the enclosing loops inside-out looking for the smallest
    // nonzero constant stride; stop at the first irregular/indirect stride.
    let mut min_stride: Option<(ScopeId, i64)> = None;
    let mut irregular = false;
    let mut indirect = false;
    for &(scope, stride) in &rep.strides {
        match stride {
            Stride::Constant(0) => continue,
            Stride::Constant(c) => {
                if min_stride.map(|(_, s)| c.abs() < s.abs()).unwrap_or(true) {
                    min_stride = Some((scope, c));
                }
            }
            Stride::Irregular => {
                irregular = true;
                break;
            }
            Stride::Indirect => {
                indirect = true;
                break;
            }
        }
    }

    let Some((loop_scope, s)) = min_stride else {
        return RelatedGroup {
            array,
            reuse_groups: refs.iter().map(|&r| vec![r]).collect(),
            refs,
            min_stride_loop: None,
            fragmentation: None,
            irregular,
            indirect,
        };
    };

    // Step 2: split into reuse groups. Two references share a reuse group
    // when their first-location formulas differ by a constant small enough
    // that one reaches the other's window within the loop's average trip
    // count.
    let avg_trip = exec.average_trip(loop_scope).max(0.0);
    let mut reuse_groups: Vec<Vec<RefId>> = Vec::new();
    for &r in &refs {
        let fr = &formulas[r.index()];
        let mut placed = false;
        for group in &mut reuse_groups {
            let leader = &formulas[group[0].index()];
            if let (Some(a), Some(b)) = (&fr.first_location, &leader.first_location) {
                let delta = a.sub(b);
                if delta.is_constant() {
                    let iterations = delta.constant.abs() as f64 / s.abs() as f64;
                    if iterations <= avg_trip {
                        group.push(r);
                        placed = true;
                        break;
                    }
                }
            }
        }
        if !placed {
            reuse_groups.push(vec![r]);
        }
    }

    // Step 3: hot footprint of each reuse group; the group fragmentation is
    // taken from the best-covered reuse group.
    let window = s.unsigned_abs();
    let mut max_cov = 0u64;
    for group in &reuse_groups {
        let accesses: Vec<(i64, u32)> = group
            .iter()
            .filter_map(|&r| {
                let f = &formulas[r.index()];
                f.first_location
                    .as_ref()
                    .map(|loc| (eval_at_lower_bounds(program, loc), f.elem_size))
            })
            .collect();
        max_cov = max_cov.max(coverage(window, &accesses));
    }
    let fragmentation = Some(1.0 - max_cov as f64 / window as f64);

    RelatedGroup {
        array,
        refs,
        min_stride_loop: Some((loop_scope, s)),
        reuse_groups,
        fragmentation,
        irregular,
        indirect,
    }
}

/// Evaluates a first-location formula with every loop variable at zero —
/// only *relative* offsets between references in a group matter, and they
/// share identical coefficients on all loop variables (equal strides), so
/// any common assignment gives the right phase differences. Using zero also
/// keeps the phases equal to the formulas' constant terms.
fn eval_at_lower_bounds(_program: &Program, loc: &reuselens_ir::Affine) -> i64 {
    loc.constant
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};
    use reuselens_trace::{Executor, NullSink};

    /// The paper's Figure 2 loop:
    /// ```fortran
    /// DO J = 1, M
    ///   DO I = 1, N, 4
    ///     A(I+2,J) = A(I,J-1) + B(I+1,J) - B(I+3,J)
    ///     A(I+3,J) = A(I+1,J-1) + B(I,J) - B(I+2,J)
    /// ```
    fn fig2_program() -> reuselens_ir::Program {
        let (n, m) = (64u64, 8u64);
        let mut p = ProgramBuilder::new("fig2");
        let a = p.array("a", 8, &[n + 4, m + 1]);
        let b = p.array("b", 8, &[n + 4, m + 1]);
        p.routine("main", |r| {
            r.for_("j", 1, m as i64, |r, j| {
                r.for_step("i", 0, (n - 4) as i64, 4, |r, i| {
                    let iv = Expr::var(i);
                    let jv = Expr::var(j);
                    r.load(a, vec![iv.clone(), jv.clone() - 1]); // A(I,J-1)
                    r.load(b, vec![iv.clone() + 1, jv.clone()]); // B(I+1,J)
                    r.load(b, vec![iv.clone() + 3, jv.clone()]); // B(I+3,J)
                    r.store(a, vec![iv.clone() + 2, jv.clone()]); // A(I+2,J)
                    r.load(a, vec![iv.clone() + 1, jv.clone() - 1]); // A(I+1,J-1)
                    r.load(b, vec![iv.clone(), jv.clone()]); // B(I,J)
                    r.load(b, vec![iv.clone() + 2, jv.clone()]); // B(I+2,J)
                    r.store(a, vec![iv + 3, jv]); // A(I+3,J)
                });
            });
        });
        p.finish()
    }

    fn analyzed(prog: &reuselens_ir::Program) -> StaticAnalysis {
        let exec = Executor::new(prog).run(&mut NullSink).unwrap();
        StaticAnalysis::analyze(prog, &exec)
    }

    #[test]
    fn fig2_fragmentation_factors_match_paper() {
        let prog = fig2_program();
        let sa = analyzed(&prog);
        let a = prog.array_by_name("a").unwrap();
        let b = prog.array_by_name("b").unwrap();
        let ga = sa.groups.iter().find(|g| g.array == a).unwrap();
        let gb = sa.groups.iter().find(|g| g.array == b).unwrap();
        // Stride: inner loop I with step 4 => 32 bytes, as in the paper.
        let i_scope = prog.scope_by_name("i").unwrap();
        assert_eq!(ga.min_stride_loop, Some((i_scope, 32)));
        assert_eq!(gb.min_stride_loop, Some((i_scope, 32)));
        // A splits into two reuse groups of two refs each; B stays whole.
        assert_eq!(ga.refs.len(), 4);
        assert_eq!(ga.reuse_groups.len(), 2);
        assert!(ga.reuse_groups.iter().all(|g| g.len() == 2));
        assert_eq!(gb.reuse_groups.len(), 1);
        assert_eq!(gb.reuse_groups[0].len(), 4);
        // Fragmentation: A = 0.5, B = 0.
        assert!((ga.fragmentation.unwrap() - 0.5).abs() < 1e-9);
        assert!((gb.fragmentation.unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_of_maps_refs_to_their_group() {
        let prog = fig2_program();
        let sa = analyzed(&prog);
        let b = prog.array_by_name("b").unwrap();
        for r in prog.references() {
            let f = sa.fragmentation_of(r.id()).unwrap();
            if r.array() == b {
                assert_eq!(f, 0.0);
            } else {
                assert!((f - 0.5).abs() < 1e-9);
            }
            assert!(sa.group_of(r.id()).is_some());
        }
    }

    #[test]
    fn aos_field_access_has_high_fragmentation() {
        // zion(7, n) column-major, loop reads field 2 of each particle:
        // stride 56 B, coverage 8 B => fragmentation 6/7.
        let n = 128u64;
        let mut p = ProgramBuilder::new("aos");
        let zion = p.array("zion", 8, &[7, n]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(zion, vec![Expr::c(2), i.into()]);
            });
        });
        let prog = p.finish();
        let sa = analyzed(&prog);
        let f = sa.fragmentation_of(prog.references()[0].id()).unwrap();
        assert!((f - 6.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn soa_access_has_zero_fragmentation() {
        let n = 128u64;
        let mut p = ProgramBuilder::new("soa");
        let zion = p.array("zion", 8, &[n, 7]); // transposed
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(zion, vec![i.into(), Expr::c(2)]);
            });
        });
        let prog = p.finish();
        let sa = analyzed(&prog);
        let f = sa.fragmentation_of(prog.references()[0].id()).unwrap();
        assert_eq!(f, 0.0);
    }

    #[test]
    fn indirect_group_has_no_fragmentation_factor() {
        let mut p = ProgramBuilder::new("gather");
        let ix = p.index_array("ix", &[64]);
        let a = p.array("a", 8, &[1000]);
        p.routine("main", |r| {
            r.for_("i", 0, 63, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let mut exec = Executor::new(&prog);
        exec.fill_index_array(ix, |k| k as i64);
        let report = exec.run(&mut NullSink).unwrap();
        let sa = StaticAnalysis::analyze(&prog, &report);
        let g = sa.group_of(prog.references()[0].id()).unwrap();
        assert!(g.indirect);
        assert!(g.fragmentation.is_none());
        assert!(sa.fragmentation_of(prog.references()[0].id()).is_none());
        let i_scope = prog.scope_by_name("i").unwrap();
        assert!(sa.is_irregular_pattern(prog.references()[0].id(), i_scope));
    }

    #[test]
    fn regular_pattern_is_not_irregular() {
        let prog = fig2_program();
        let sa = analyzed(&prog);
        let i_scope = prog.scope_by_name("i").unwrap();
        let j_scope = prog.scope_by_name("j").unwrap();
        let r0 = prog.references()[0].id();
        assert!(!sa.is_irregular_pattern(r0, i_scope));
        assert!(!sa.is_irregular_pattern(r0, j_scope));
        // A scope that doesn't enclose the sink: no stride formula => regular.
        assert!(!sa.is_irregular_pattern(r0, reuselens_ir::ScopeId::ROOT));
    }

    #[test]
    fn far_apart_refs_split_into_reuse_groups() {
        // Two refs to the same array offset by more than the loop covers.
        let n = 16u64;
        let mut p = ProgramBuilder::new("far");
        let a = p.array("a", 8, &[4096]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.load(a, vec![i.into()]);
                r.load(a, vec![Expr::var(i) + 2048]);
            });
        });
        let prog = p.finish();
        let sa = analyzed(&prog);
        let g = &sa.groups[0];
        // 2048 elements apart, loop trips 16: distinct reuse groups.
        assert_eq!(g.reuse_groups.len(), 2);
        // Each covers its full 8-byte window (stride 8): no fragmentation.
        assert_eq!(g.fragmentation, Some(0.0));
    }
}
