//! Symbolic first-location and stride formulas per reference.
//!
//! The paper computes these by tracing use-def chains through machine code;
//! here they fall out of the IR's subscript expressions. For every
//! reference we derive:
//!
//! * a **first-location formula**: the affine byte offset of the accessed
//!   location within its array (when the subscripts are affine), and
//! * a **stride formula per enclosing loop**: how the byte address changes
//!   per iteration — a constant, *irregular* (changes between iterations),
//!   or *indirect* (depends on loaded data).

use reuselens_ir::{
    stride_wrt, Affine, ArrayId, Program, RefId, Reference, ScopeId, Stride,
};

/// Symbolic formulas for one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct RefFormulas {
    /// The reference these formulas describe.
    pub r: RefId,
    /// The accessed array.
    pub array: ArrayId,
    /// Affine byte offset within the array, in terms of enclosing loop
    /// variables; `None` when any subscript is non-affine.
    pub first_location: Option<Affine>,
    /// `(loop scope, byte stride)` pairs, innermost loop first.
    pub strides: Vec<(ScopeId, Stride)>,
    /// Element size in bytes (the width each access touches).
    pub elem_size: u32,
}

impl RefFormulas {
    /// The stride with respect to one enclosing loop (`Constant(0)` for
    /// loops the reference does not depend on; `None` if `scope` is not an
    /// enclosing loop of the reference).
    pub fn stride_at(&self, scope: ScopeId) -> Option<Stride> {
        self.strides
            .iter()
            .find(|(s, _)| *s == scope)
            .map(|(_, st)| *st)
    }

    /// True when any enclosing loop sees an indirect stride.
    pub fn has_indirect_stride(&self) -> bool {
        self.strides
            .iter()
            .any(|(_, s)| matches!(s, Stride::Indirect))
    }
}

/// Computes the byte stride of a reference with respect to one loop
/// variable, combining the per-dimension subscript strides with the
/// array's layout strides. Any indirect subscript dominates; otherwise any
/// irregular subscript does.
fn byte_stride(program: &Program, r: &Reference, var: reuselens_ir::VarId) -> Stride {
    let arr = program.array(r.array());
    let mut total: i64 = 0;
    let mut worst = 0u8; // 0 = constant, 1 = irregular, 2 = indirect
    for (d, idx) in r.indices().iter().enumerate() {
        match stride_wrt(idx, var) {
            Stride::Constant(c) => {
                total += c * arr.byte_stride_of_dim(d) as i64;
            }
            Stride::Irregular => worst = worst.max(1),
            Stride::Indirect => worst = worst.max(2),
        }
    }
    match worst {
        0 => Stride::Constant(total),
        1 => Stride::Irregular,
        _ => Stride::Indirect,
    }
}

/// Derives [`RefFormulas`] for every reference in the program.
///
/// # Examples
///
/// ```
/// use reuselens_ir::{ProgramBuilder, Stride};
/// use reuselens_static::compute_formulas;
///
/// let mut p = ProgramBuilder::new("fig2");
/// let a = p.array("a", 8, &[64, 8]);
/// p.routine("main", |r| {
///     r.for_("j", 0, 7, |r, j| {
///         r.for_step("i", 0, 60, 4, |r, i| {
///             r.load(a, vec![i.into(), j.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let formulas = compute_formulas(&prog);
/// let i = prog.scope_by_name("i").unwrap();
/// // Unit element stride scaled by the loop's step of 4: the *per
/// // iteration* byte stride is 4 * 8 = 32 bytes.
/// assert_eq!(formulas[0].stride_at(i), Some(Stride::Constant(32)));
/// ```
pub fn compute_formulas(program: &Program) -> Vec<RefFormulas> {
    program
        .references()
        .iter()
        .map(|r| {
            let first_location = program.byte_offset_expr(r);
            let strides = program
                .enclosing_loops(r.scope())
                .into_iter()
                .filter_map(|loop_scope| {
                    // `enclosing_loops` only yields loop scopes, so the
                    // variable is always present; the guard satisfies
                    // the crate's no-unwrap wall.
                    let var = program.loop_var(loop_scope)?;
                    let per_unit = byte_stride(program, r, var);
                    // Scale by the loop's step so the stride is "bytes per
                    // iteration", matching the paper's formulas.
                    let step = loop_step(program, loop_scope);
                    let scaled = match per_unit {
                        Stride::Constant(c) => Stride::Constant(c * step),
                        other => other,
                    };
                    Some((loop_scope, scaled))
                })
                .collect();
            RefFormulas {
                r: r.id(),
                array: r.array(),
                first_location,
                strides,
                elem_size: program.array(r.array()).elem_size(),
            }
        })
        .collect()
}

/// Finds the step of a loop scope by walking the owning routine's body.
fn loop_step(program: &Program, scope: ScopeId) -> i64 {
    // Loop scopes always live in routines; the unit fallback satisfies
    // the crate's no-unwrap wall.
    let Some(rtn) = program.routine_of(scope) else {
        return 1;
    };
    let mut step = 1;
    reuselens_ir::walk_stmts(program.routine(rtn).body(), &mut |s| {
        if let reuselens_ir::Stmt::Loop(l) = s {
            if l.scope() == scope {
                step = l.step();
            }
        }
    });
    step
}

/// True when two references are *related* in the paper's sense: same array
/// and equal symbolic strides with respect to every enclosing loop. (Both
/// must also be in the same loop nest; callers group by innermost scope
/// chain.)
pub fn are_related(a: &RefFormulas, b: &RefFormulas) -> bool {
    a.array == b.array && a.strides == b.strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::{Expr, ProgramBuilder};

    #[test]
    fn column_major_strides_per_loop() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[100, 50]);
        p.routine("main", |r| {
            r.for_("i", 0, 99, |r, i| {
                r.for_("j", 0, 49, |r, j| {
                    r.load(a, vec![i.into(), j.into()]);
                });
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        let j = prog.scope_by_name("j").unwrap();
        // inner loop j walks the outer dimension: stride = 8 * 100
        assert_eq!(f.stride_at(j), Some(Stride::Constant(800)));
        assert_eq!(f.stride_at(i), Some(Stride::Constant(8)));
        assert_eq!(f.stride_at(prog.routine(prog.entry()).scope()), None);
        assert!(f.first_location.is_some());
        assert!(!f.has_indirect_stride());
    }

    #[test]
    fn negative_step_scales_stride() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[100]);
        p.routine("main", |r| {
            r.for_step("i", 99, 0, -1, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Constant(-8)));
    }

    #[test]
    fn indirect_subscript_gives_indirect_stride() {
        let mut p = ProgramBuilder::new("t");
        let ix = p.index_array("ix", &[64]);
        let a = p.array("a", 8, &[1000]);
        p.routine("main", |r| {
            r.for_("i", 0, 63, |r, i| {
                r.load(a, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        let formulas = compute_formulas(&prog);
        // ref 0 is the data access a(ix(i)); the builder creates no separate
        // reference for the index load inside the subscript.
        let f = &formulas[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Indirect));
        assert!(f.first_location.is_none());
        assert!(f.has_indirect_stride());
    }

    #[test]
    fn irregular_subscript_gives_irregular_stride() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[1000]);
        p.routine("main", |r| {
            r.for_("i", 0, 63, |r, i| {
                r.load(a, vec![Expr::var(i) * Expr::var(i)]);
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Irregular));
    }

    #[test]
    fn zero_trip_loop_still_yields_formulas() {
        // A DO loop whose bounds never admit an iteration (lo > hi with a
        // positive step) still declares its reference; the formulas must
        // come out well-defined rather than panicking or degenerating.
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[16]);
        p.routine("main", |r| {
            r.for_("i", 5, 4, |r, i| {
                r.load(a, vec![i.into()]);
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Constant(8)));
        let loc = f.first_location.as_ref().expect("affine subscript");
        // Offset formula is 8*i regardless of the empty iteration space.
        assert_eq!(loc.constant, 0);
        assert!(!f.has_indirect_stride());
    }

    #[test]
    fn single_iteration_scope_keeps_its_stride() {
        // trip == 1: the stride formula is still "bytes per iteration" even
        // though the loop never advances; downstream consumers (the reuse
        // estimator) rely on the formula being present, not on trip > 1.
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 4, &[32, 32]);
        p.routine("main", |r| {
            r.for_("t", 0, 0, |r, t| {
                r.for_("i", 0, 31, |r, i| {
                    r.load(a, vec![i.into(), t.into()]);
                });
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let t = prog.scope_by_name("t").unwrap();
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Constant(4)));
        assert_eq!(f.stride_at(t), Some(Stride::Constant(4 * 32)));
    }

    #[test]
    fn negative_subscript_coefficient_gives_negative_stride() {
        // a(63 - i): the address walks backwards while the loop counts up.
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.for_("i", 0, 63, |r, i| {
                r.load(a, vec![Expr::c(63) - Expr::var(i)]);
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Constant(-8)));
        assert!(!f.has_indirect_stride());
    }

    #[test]
    fn negative_step_and_negative_coefficient_cancel() {
        // DO i = 63, 0, -1 over a(63 - i): two reversals make a forward
        // walk; per-iteration stride is (-8) * (-1) = +8.
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[64]);
        p.routine("main", |r| {
            r.for_step("i", 63, 0, -1, |r, i| {
                r.load(a, vec![Expr::c(63) - Expr::var(i)]);
            });
        });
        let prog = p.finish();
        let f = &compute_formulas(&prog)[0];
        let i = prog.scope_by_name("i").unwrap();
        assert_eq!(f.stride_at(i), Some(Stride::Constant(8)));
    }

    #[test]
    fn has_indirect_stride_is_per_reference_not_per_nest() {
        // In a nest mixing an affine outer loop with an indirect inner
        // subscript, only the reference that loads through the index array
        // reports an indirect stride; its affine sibling stays clean.
        let mut p = ProgramBuilder::new("t");
        let ix = p.index_array("ix", &[64]);
        let a = p.array("a", 8, &[1000]);
        let b = p.array("b", 8, &[64, 4]);
        p.routine("main", |r| {
            r.for_("c", 0, 3, |r, c| {
                r.for_("i", 0, 63, |r, i| {
                    r.load(a, vec![Expr::load(ix, vec![i.into()])]);
                    r.load(b, vec![i.into(), c.into()]);
                });
            });
        });
        let prog = p.finish();
        let f = compute_formulas(&prog);
        let c = prog.scope_by_name("c").unwrap();
        let i = prog.scope_by_name("i").unwrap();
        // The gather: indirect in i, constant (0) in c — c does not appear
        // in the subscript, so the whole-ref classification must still be
        // indirect.
        assert_eq!(f[0].stride_at(i), Some(Stride::Indirect));
        assert_eq!(f[0].stride_at(c), Some(Stride::Constant(0)));
        assert!(f[0].has_indirect_stride());
        // The affine sibling in the same nest.
        assert_eq!(f[1].stride_at(i), Some(Stride::Constant(8)));
        assert_eq!(f[1].stride_at(c), Some(Stride::Constant(8 * 64)));
        assert!(!f[1].has_indirect_stride());
        assert!(!are_related(&f[0], &f[1]));
    }

    #[test]
    fn related_references_share_array_and_strides() {
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", 8, &[64, 8]);
        let b = p.array("b", 8, &[64, 8]);
        p.routine("main", |r| {
            r.for_("j", 0, 7, |r, j| {
                r.for_("i", 0, 63, |r, i| {
                    r.load(a, vec![i.into(), j.into()]);
                    r.load(a, vec![Expr::var(i) + 1, j.into()]);
                    r.load(b, vec![i.into(), j.into()]);
                    r.load(a, vec![j.into(), Expr::c(0)]); // different strides
                });
            });
        });
        let prog = p.finish();
        let f = compute_formulas(&prog);
        assert!(are_related(&f[0], &f[1]));
        assert!(!are_related(&f[0], &f[2])); // different array
        assert!(!are_related(&f[0], &f[3])); // different strides
    }
}
