//! # reuselens-static — static analysis of access patterns
//!
//! Implements §III of the reproduced paper: recovering symbolic
//! first-location and stride formulas for every memory reference,
//! grouping *related references* (same array, same strides), splitting
//! them into *reuse groups*, and computing **cache-line fragmentation
//! factors** — the fraction of each fetched block that a loop never
//! touches. It also classifies reuse patterns as *irregular* when the
//! carrying scope drives the destination reference with an irregular or
//! indirect stride.
//!
//! The headline use: arrays of records accessed one field at a time (the
//! paper's GTC `zion` array) show fragmentation `(fields-1)/fields`, which
//! flags the AoS→SoA transformation.
//!
//! ```
//! use reuselens_ir::{Expr, ProgramBuilder};
//! use reuselens_static::StaticAnalysis;
//! use reuselens_trace::{Executor, NullSink};
//!
//! // Read one field out of seven per particle.
//! let mut p = ProgramBuilder::new("aos");
//! let zion = p.array("zion", 8, &[7, 1024]);
//! p.routine("main", |r| {
//!     r.for_("i", 0, 1023, |r, i| {
//!         r.load(zion, vec![Expr::c(3), i.into()]);
//!     });
//! });
//! let prog = p.finish();
//! let exec = Executor::new(&prog).run(&mut NullSink)?;
//! let sa = StaticAnalysis::analyze(&prog, &exec);
//! let frag = sa.fragmentation_of(prog.references()[0].id()).unwrap();
//! assert!((frag - 6.0 / 7.0).abs() < 1e-9);
//! # Ok::<(), reuselens_trace::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod coverage;
mod estimate;
mod formulas;
mod groups;

pub use coverage::coverage;
pub use estimate::{estimate_profiles, StaticEstimate};
pub use formulas::{are_related, compute_formulas, RefFormulas};
pub use groups::{RelatedGroup, StaticAnalysis};
