//! Zero-trace symbolic estimation of reuse-distance profiles.
//!
//! The dynamic engine measures reuse by replaying every access in a
//! captured trace — `O(trace)` work. For affine loop nests the same
//! per-pattern reuse-distance histograms can be *predicted* from loop
//! structure alone in `O(loop nest)` time: iteration-space volumes give
//! access counts, per-loop byte strides decide which loop level resolves
//! a reference's reuse (temporal for stride 0, spatial for strides under
//! a block), and the footprint of one carrying-loop iteration gives the
//! reuse distance. References whose subscripts are indirect or otherwise
//! non-affine fall back to a uniform-scatter model over the target
//! array's blocks.
//!
//! The estimator walks the program body **symbolically** — loop bounds,
//! guards, and scalar assignments are evaluated by sampling the
//! iteration lattice (exactly, when it is small), but no access is ever
//! executed and no trace event is ever produced. The result is a
//! synthetic [`ReuseProfile`] per requested block granularity plus a
//! synthetic [`ExecReport`], shaped exactly like the dynamic engine's
//! output so the cache model, advisor, and scaling model consume it
//! unchanged. `tests/static_vs_dynamic.rs` at the workspace root holds
//! the differential contract that keeps the predictions honest.

use reuselens_core::{Histogram, PatternKey, ReusePattern, ReuseProfile};
use reuselens_ir::{
    affine_form, AccessKind, Affine, ArrayId, EvalCtx, Expr, Pred, Program, RefId, ScopeId, Stmt,
    VarId,
};
use reuselens_obs::{self as obs, Counter, Stage};
use reuselens_trace::{ExecReport, LoopStats};
use std::collections::{BTreeMap, HashMap};

/// Total sample-point budget for one bound/guard evaluation. Lattices
/// whose cross product fits the budget are enumerated exactly (the
/// common case for the workloads in this repo); larger ones are
/// stratified per variable.
const SAMPLE_BUDGET: usize = 20_000;

/// Recursion guard for `Call` chains, mirroring the executor's limit.
const MAX_CALL_DEPTH: usize = 64;

/// Result of one symbolic estimation pass: synthetic profiles shaped
/// like the dynamic engine's, plus coverage bookkeeping.
#[derive(Debug, Clone)]
pub struct StaticEstimate {
    /// One synthetic profile per requested block granularity.
    pub profiles: Vec<ReuseProfile>,
    /// Synthetic execution statistics (access counts and loop trips)
    /// derived from iteration-space volumes, not from a trace.
    pub exec: ExecReport,
    /// References whose subscripts were fully affine and were modeled
    /// symbolically.
    pub covered: Vec<RefId>,
    /// References with indirect or non-affine subscripts, modeled with
    /// the uniform-scatter fallback.
    pub fallback: Vec<RefId>,
}

impl StaticEstimate {
    /// The synthetic profile at the given block size, if estimated.
    pub fn profile_at(&self, block_size: u64) -> Option<&ReuseProfile> {
        self.profiles.iter().find(|p| p.block_size == block_size)
    }

    /// Fraction of reached references covered symbolically (1.0 when
    /// nothing fell back, and also when nothing was reached at all).
    pub fn coverage_fraction(&self) -> f64 {
        let total = self.covered.len() + self.fallback.len();
        if total == 0 {
            1.0
        } else {
            self.covered.len() as f64 / total as f64
        }
    }
}

/// Symbolically estimates reuse profiles for `program` at each block
/// granularity in `block_sizes`, without executing a single access.
///
/// `index_arrays` supplies the *contents* of index arrays (the same
/// input data the executor would be seeded with); the estimator reads
/// them when loop bounds or guards load from them, which is input
/// inspection, not tracing. Emits a [`Stage::Estimate`] span and the
/// `static_refs_covered` / `static_refs_fallback` counters.
pub fn estimate_profiles(
    program: &Program,
    index_arrays: &[(ArrayId, Vec<i64>)],
    block_sizes: &[u64],
) -> StaticEstimate {
    let _span = obs::span(Stage::Estimate);
    let index: HashMap<ArrayId, &[i64]> = index_arrays
        .iter()
        .map(|(a, data)| (*a, data.as_slice()))
        .collect();
    let mut walker = Walker {
        program,
        index,
        env: HashMap::new(),
        frames: Vec::new(),
        mult: 1.0,
        sites: Vec::new(),
        loop_stats: vec![(0.0, 0.0); program.scopes().len()],
        accesses: 0.0,
        loads: 0.0,
        stores: 0.0,
    };
    let entry = program.routine(program.entry());
    walker.bump_entries(entry.scope());
    walker.walk_body(entry.body(), 0);

    let mut covered = Vec::new();
    let mut fallback = Vec::new();
    for r in program.references() {
        let mut any = false;
        let mut all_affine = true;
        for s in walker.sites.iter().filter(|s| s.r == r.id()) {
            any = true;
            all_affine &= s.offset.is_some();
        }
        if any {
            if all_affine {
                covered.push(r.id());
            } else {
                fallback.push(r.id());
            }
        }
    }
    obs::add(Counter::StaticRefsCovered, covered.len() as u64);
    obs::add(Counter::StaticRefsFallback, fallback.len() as u64);

    let profiles = block_sizes
        .iter()
        .map(|&b| synthesize(program, &walker.sites, b))
        .collect();

    let loop_stats = walker
        .loop_stats
        .iter()
        .map(|&(e, i)| LoopStats {
            entries: e.round() as u64,
            iterations: i.round() as u64,
        })
        .collect();
    let exec = ExecReport {
        accesses: walker.accesses.round() as u64,
        loads: walker.loads.round() as u64,
        stores: walker.stores.round() as u64,
        loop_stats,
    };

    StaticEstimate {
        profiles,
        exec,
        covered,
        fallback,
    }
}

// ---------------------------------------------------------------------------
// Symbolic walk: iteration volumes, guard selectivities, per-site formulas.
// ---------------------------------------------------------------------------

/// One loop on the current symbolic path.
struct LiveFrame {
    scope: ScopeId,
    var: VarId,
    /// Average trip count per entry.
    trip: f64,
    /// Product of guard selectivities seen while this loop is innermost.
    guards: f64,
    step: i64,
    /// Average value of the loop variable at the first iteration.
    lo: f64,
}

/// A loop enclosing a captured site, innermost first.
#[derive(Debug, Clone)]
struct SiteFrame {
    scope: ScopeId,
    trip: f64,
    /// Guard selectivity folded into this loop's iterations.
    sel: f64,
}

impl SiteFrame {
    /// Expected number of iterations (per entry) that actually reach the
    /// site.
    fn eff_trip(&self) -> f64 {
        (self.trip * self.sel).max(0.0)
    }
}

/// One static occurrence of a reference on the symbolic path (a
/// reference called from two places yields two sites).
#[derive(Debug, Clone)]
struct Site {
    r: RefId,
    array: ArrayId,
    /// Expected dynamic execution count of this site.
    count: f64,
    /// Enclosing loops across routine boundaries, innermost first.
    frames: Vec<SiteFrame>,
    /// Byte-offset affine form over loop variables; `None` means the
    /// subscripts are indirect or non-affine (fallback model).
    offset: Option<Affine>,
    /// Per-frame byte stride (one entry per `frames` entry); empty for
    /// fallback sites.
    strides: Vec<f64>,
    /// Total size of the referenced array in bytes.
    array_bytes: u64,
}

struct Walker<'p> {
    program: &'p Program,
    index: HashMap<ArrayId, &'p [i64]>,
    /// Scalar bindings, already substituted down to loop variables.
    env: HashMap<VarId, Expr>,
    /// Live loop stack, outermost first.
    frames: Vec<LiveFrame>,
    /// Expected execution count of the current statement position.
    mult: f64,
    sites: Vec<Site>,
    /// Per-scope (entries, iterations), in expectation.
    loop_stats: Vec<(f64, f64)>,
    accesses: f64,
    loads: f64,
    stores: f64,
}

impl<'p> Walker<'p> {
    fn bump_entries(&mut self, scope: ScopeId) {
        self.loop_stats[scope.0 as usize].0 += self.mult;
    }

    fn subst(&self, e: &Expr) -> Expr {
        e.substitute_vars(&|v| self.env.get(&v).cloned())
    }

    fn walk_body(&mut self, body: &[Stmt], depth: usize) {
        for stmt in body {
            match stmt {
                Stmt::Access(rid) => self.record_site(*rid),
                Stmt::Assign { var, value } => {
                    let sub = self.subst(value);
                    self.env.insert(*var, sub);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let cond = cond.substitute_vars(&|v| self.env.get(&v).cloned());
                    let p = self.selectivity(&cond);
                    if p > 0.0 {
                        self.with_guard(p, |w| w.walk_body(then_body, depth));
                    }
                    if p < 1.0 && !else_body.is_empty() {
                        self.with_guard(1.0 - p, |w| w.walk_body(else_body, depth));
                    }
                }
                Stmt::Call(target) => {
                    if depth >= MAX_CALL_DEPTH {
                        continue;
                    }
                    let rtn = self.program.routine(*target);
                    self.bump_entries(rtn.scope());
                    self.walk_body(rtn.body(), depth + 1);
                }
                Stmt::Loop(l) => {
                    let scope = l.scope();
                    self.bump_entries(scope);
                    let lower = self.subst(l.lower());
                    let upper = self.subst(l.upper());
                    let step = l.step();
                    let (trip, lo) = self.avg_trip(&lower, &upper, step);
                    if trip <= 0.0 {
                        continue; // zero-trip: entered, never iterated
                    }
                    self.loop_stats[scope.0 as usize].1 += self.mult * trip;
                    let saved_mult = self.mult;
                    self.mult *= trip;
                    let shadowed = self.env.remove(&l.var());
                    self.frames.push(LiveFrame {
                        scope,
                        var: l.var(),
                        trip,
                        guards: 1.0,
                        step,
                        lo,
                    });
                    self.walk_body(l.body(), depth);
                    self.frames.pop();
                    if let Some(e) = shadowed {
                        self.env.insert(l.var(), e);
                    }
                    self.mult = saved_mult;
                }
            }
        }
    }

    fn with_guard(&mut self, p: f64, f: impl FnOnce(&mut Self)) {
        let saved_mult = self.mult;
        let saved_guard = self.frames.last().map(|fr| fr.guards);
        self.mult *= p;
        if let Some(fr) = self.frames.last_mut() {
            fr.guards *= p;
        }
        f(self);
        self.mult = saved_mult;
        if let (Some(fr), Some(g)) = (self.frames.last_mut(), saved_guard) {
            fr.guards = g;
        }
    }

    fn record_site(&mut self, rid: RefId) {
        let r = self.program.reference(rid);
        let decl = self.program.array(r.array());
        let count = self.mult;
        self.accesses += count;
        match r.kind() {
            AccessKind::Load => self.loads += count,
            AccessKind::Store => self.stores += count,
        }
        // Byte-offset affine over loop variables, if the subscripts allow.
        let mut offset = Some(Affine::constant(0));
        for (d, idx) in r.indices().iter().enumerate() {
            let sub = self.subst(idx);
            match (offset.take(), affine_form(&sub)) {
                (Some(acc), Some(a)) => {
                    let stride = decl.byte_stride_of_dim(d) as i64;
                    offset = Some(acc.add(&a.scale(stride)));
                }
                _ => {
                    offset = None;
                    break;
                }
            }
        }
        let frames: Vec<SiteFrame> = self
            .frames
            .iter()
            .rev()
            .map(|lf| SiteFrame {
                scope: lf.scope,
                trip: lf.trip,
                sel: lf.guards,
            })
            .collect();
        let strides = match &offset {
            Some(o) => self
                .frames
                .iter()
                .rev()
                .map(|lf| (o.coeff(lf.var) * lf.step) as f64)
                .collect(),
            None => Vec::new(),
        };
        self.sites.push(Site {
            r: rid,
            array: r.array(),
            count,
            frames,
            offset,
            strides,
            array_bytes: decl.size_bytes(),
        });
    }

    /// Average trip count and first-iteration value for a loop with the
    /// given (substituted) bounds, sampling outer-loop lattices.
    fn avg_trip(&self, lower: &Expr, upper: &Expr, step: i64) -> (f64, f64) {
        if step == 0 {
            return (0.0, 0.0);
        }
        let mut vars = Vec::new();
        lower.collect_vars(&mut vars);
        upper.collect_vars(&mut vars);
        let mut n = 0u64;
        let mut trip_sum = 0.0;
        let mut lo_sum = 0.0;
        self.sample_over(&vars, |ctx| {
            let l = lower.eval(ctx);
            let u = upper.eval(ctx);
            let t = if step > 0 {
                if u >= l {
                    (u - l) / step + 1
                } else {
                    0
                }
            } else if u <= l {
                (l - u) / (-step) + 1
            } else {
                0
            };
            trip_sum += t as f64;
            lo_sum += l as f64;
            n += 1;
        });
        if n == 0 {
            (0.0, 0.0)
        } else {
            (trip_sum / n as f64, lo_sum / n as f64)
        }
    }

    /// Fraction of the sampled enclosing-loop lattice on which the
    /// (already substituted) predicate holds.
    fn selectivity(&self, p: &Pred) -> f64 {
        let mut vars = Vec::new();
        collect_pred_vars(p, &mut vars);
        let mut n = 0u64;
        let mut yes = 0u64;
        self.sample_over(&vars, |ctx| {
            n += 1;
            if p.eval(ctx) {
                yes += 1;
            }
        });
        if n == 0 {
            1.0
        } else {
            yes as f64 / n as f64
        }
    }

    /// Invokes `f` once per sampled point of the lattice spanned by the
    /// live loop variables in `vars`. Exact enumeration when the lattice
    /// fits [`SAMPLE_BUDGET`]; stratified thinning otherwise. With no
    /// live variables, `f` runs once with an empty binding.
    fn sample_over(&self, vars: &[VarId], mut f: impl FnMut(&SampleCtx<'_>)) {
        let mut grids: Vec<(VarId, Vec<i64>)> = Vec::new();
        for fr in &self.frames {
            if vars.contains(&fr.var) {
                let trips = fr.trip.round().clamp(1.0, 1e12) as i64;
                let lo = fr.lo.round() as i64;
                // Never materialize more points than the whole budget;
                // per-var thinning below may cut further.
                let keep = (trips as usize).min(SAMPLE_BUDGET);
                let values: Vec<i64> = if keep as i64 == trips {
                    (0..trips).map(|k| lo + k * fr.step).collect()
                } else {
                    (0..keep)
                        .map(|j| lo + (j as i64 * (trips - 1) / (keep as i64 - 1)) * fr.step)
                        .collect()
                };
                grids.push((fr.var, values));
            }
        }
        let total: usize = grids
            .iter()
            .map(|(_, g)| g.len())
            .fold(1usize, |a, b| a.saturating_mul(b));
        if total > SAMPLE_BUDGET && !grids.is_empty() {
            let per_var = ((SAMPLE_BUDGET as f64).powf(1.0 / grids.len() as f64) as usize).max(2);
            for (_, g) in grids.iter_mut() {
                if g.len() > per_var {
                    let n = g.len();
                    *g = (0..per_var)
                        .map(|j| g[j * (n - 1) / (per_var - 1)])
                        .collect();
                }
            }
        }
        let mut values: HashMap<VarId, i64> = HashMap::new();
        let mut odometer = vec![0usize; grids.len()];
        loop {
            for (slot, (v, g)) in odometer.iter().zip(grids.iter()) {
                values.insert(*v, g[*slot]);
            }
            let ctx = SampleCtx {
                values: &values,
                index: &self.index,
                program: self.program,
            };
            f(&ctx);
            // Advance the odometer; an empty grid list runs exactly once.
            let mut pos = grids.len();
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                odometer[pos] += 1;
                if odometer[pos] < grids[pos].1.len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }
    }
}

/// Evaluation context over one sampled lattice point. Unbound variables
/// read as zero; index-array loads read the real input data.
struct SampleCtx<'a> {
    values: &'a HashMap<VarId, i64>,
    index: &'a HashMap<ArrayId, &'a [i64]>,
    program: &'a Program,
}

impl EvalCtx for SampleCtx<'_> {
    fn var(&self, v: VarId) -> i64 {
        *self.values.get(&v).unwrap_or(&0)
    }

    fn load_index(&self, array: ArrayId, indices: &[i64]) -> i64 {
        let decl = self.program.array(array);
        let Some(flat) = decl.flat_index(indices) else {
            return 0;
        };
        self.index
            .get(&array)
            .and_then(|d| d.get(flat as usize))
            .copied()
            .unwrap_or(0)
    }
}

fn collect_pred_vars(p: &Pred, out: &mut Vec<VarId>) {
    match p {
        Pred::True => {}
        Pred::Le(a, b)
        | Pred::Lt(a, b)
        | Pred::Ge(a, b)
        | Pred::Gt(a, b)
        | Pred::Eq(a, b)
        | Pred::Ne(a, b) => {
            a.collect_vars(out);
            b.collect_vars(out);
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred_vars(a, out);
            collect_pred_vars(b, out);
        }
        Pred::Not(a) => collect_pred_vars(a, out),
    }
}

// ---------------------------------------------------------------------------
// Reuse synthesis: strides + volumes + footprints -> per-pattern histograms.
// ---------------------------------------------------------------------------

/// One predicted slice of reuse mass, pre-rounding.
struct Emission {
    key: PatternKey,
    distance: u64,
    count: f64,
}

/// Expected number of distinct cells hit by `n` uniform draws over
/// `blocks` cells.
fn scatter_distinct(n: f64, blocks: f64) -> f64 {
    if blocks < 1.0 || n <= 0.0 {
        return n.clamp(0.0, 1.0);
    }
    blocks * (1.0 - (1.0 - 1.0 / blocks).powf(n))
}

/// Distinct blocks the site touches during one iteration of
/// `frames[depth]` (everything strictly deeper included); `depth ==
/// frames.len()` gives the site's whole-run coverage. `window`, if set,
/// replaces the trip count of frame `depth - 1` (the shallowest counted
/// frame) — used for partial-window footprints.
fn blocks_under(site: &Site, depth: usize, bf: f64, window: Option<f64>) -> f64 {
    let max_blocks = (site.array_bytes as f64 / bf).ceil().max(1.0);
    let mut cov = 1.0;
    for i in 0..depth {
        let f = &site.frames[i];
        let mut t = f.eff_trip();
        if let (Some(w), true) = (window, i + 1 == depth) {
            t = t.min(w); // partial window of the shallowest counted frame
        }
        if t <= 1.0 {
            continue;
        }
        let s = site.strides.get(i).copied().unwrap_or(0.0).abs();
        if s == 0.0 {
            continue;
        }
        if s < bf {
            cov *= (t * s / bf).max(1.0);
        } else {
            cov *= t;
        }
    }
    cov.min(max_blocks)
}

/// Distinct blocks a fallback (scatter) site touches per iteration of
/// its frame at `depth`, for footprint purposes.
fn scatter_blocks_under(site: &Site, depth: usize, bf: f64) -> f64 {
    let target_blocks = (site.array_bytes as f64 / bf).ceil().max(1.0);
    let mut n = 1.0;
    for f in site.frames.iter().take(depth) {
        n *= f.eff_trip().max(1.0);
    }
    scatter_distinct(n, target_blocks)
}

fn synthesize(program: &Program, sites: &[Site], block_size: u64) -> ReuseProfile {
    let bf = block_size as f64;

    // Group covered sites that differ only by a constant byte offset:
    // same array, same affine terms. Members keep site order.
    let mut group_of: HashMap<(ArrayId, Vec<(VarId, i64)>), usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut fallback_sites: Vec<usize> = Vec::new();
    for (i, s) in sites.iter().enumerate() {
        match &s.offset {
            Some(o) => {
                let key = (s.array, o.terms.clone());
                let g = *group_of.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
            None => fallback_sites.push(i),
        }
    }

    // Footprint of one iteration of each loop scope: what a reuse
    // carried by that loop must skip over. Groups are deduplicated by
    // their leader; scatter sites contribute their expected distinct
    // coverage.
    let mut f_iter: HashMap<ScopeId, f64> = HashMap::new();
    for members in &groups {
        let leader = &sites[members[0]];
        for (pos, fr) in leader.frames.iter().enumerate() {
            *f_iter.entry(fr.scope).or_insert(0.0) += blocks_under(leader, pos, bf, None);
        }
    }
    for &i in &fallback_sites {
        let s = &sites[i];
        for (pos, fr) in s.frames.iter().enumerate() {
            *f_iter.entry(fr.scope).or_insert(0.0) += scatter_blocks_under(s, pos, bf);
        }
    }
    let foot = |scope: ScopeId| f_iter.get(&scope).copied().unwrap_or(1.0);

    // Whole-run working set in blocks: what separates one program phase
    // from the next touch of the same data. Deduplicated per array (many
    // groups walk the same array; its blocks exist once).
    let mut ws_by_array: HashMap<ArrayId, f64> = HashMap::new();
    for m in &groups {
        let l = &sites[m[0]];
        let cov = blocks_under(l, l.frames.len(), bf, None);
        let e = ws_by_array.entry(l.array).or_insert(0.0);
        *e = e.max(cov);
    }
    for &i in &fallback_sites {
        let s = &sites[i];
        let cov = scatter_blocks_under(s, s.frames.len(), bf);
        let e = ws_by_array.entry(s.array).or_insert(0.0);
        *e = e.max(cov);
    }
    let total_ws: f64 = ws_by_array.values().sum();

    let mut emissions: Vec<Emission> = Vec::new();

    // Self-reuse cascade: push the site's access mass outward through
    // its loop nest; each level resolves the share its stride allows.
    // Returns the unresolved residue.
    let cascade = |site: &Site, mass: f64, emissions: &mut Vec<Emission>| -> f64 {
        let mut mass = mass;
        let source_scope = program.reference(site.r).scope();
        for (d, fr) in site.frames.iter().enumerate() {
            if mass <= 0.0 {
                break;
            }
            let t = fr.eff_trip();
            if t <= 1.0 {
                continue;
            }
            let s = site.strides[d].abs();
            let frac = if s == 0.0 {
                (t - 1.0) / t
            } else if s < bf {
                ((t - (t * s / bf).max(1.0)) / t).max(0.0)
            } else {
                0.0
            };
            let resolved = mass * frac;
            if resolved > 0.0 {
                let distance = (foot(fr.scope) - 1.0).max(0.0).round() as u64;
                emissions.push(Emission {
                    key: PatternKey {
                        sink: site.r,
                        source_scope,
                        carrier: fr.scope,
                    },
                    distance,
                    count: resolved,
                });
                mass -= resolved;
            }
        }
        mass
    };

    // Earlier groups on the same array, in program order: a later phase
    // touching an array a previous phase already covered does not miss
    // cold — it reuses at working-set distance (think GTC's charge and
    // push phases both walking the particle array with their own loop
    // variables, or Sweep3D's sweep sub-phases revisiting the fluxes).
    let mut seen_on_array: HashMap<ArrayId, Vec<(usize, f64)>> = HashMap::new();

    for members in &groups {
        // Leader: pure self reuse; the residue is the group's cold mass
        // (first touches of distinct blocks) unless an earlier phase
        // already covered this array.
        let leader = &sites[members[0]];
        let residue = cascade(leader, leader.count, &mut emissions);
        let cov = blocks_under(leader, leader.frames.len(), bf, None);
        if residue > 0.0 {
            let prior = seen_on_array
                .get(&leader.array)
                .and_then(|prev| {
                    prev.iter()
                        .rev()
                        .find(|&&(_, c)| c >= 0.5 * cov)
                        .map(|&(idx, c)| (idx, c))
                });
            if let Some((src_idx, src_cov)) = prior {
                let src = &sites[src_idx];
                let share = (src_cov / cov).min(1.0);
                let (carrier, _) = group_hit_distance(program, leader, src, bf);
                emissions.push(Emission {
                    key: PatternKey {
                        sink: leader.r,
                        source_scope: program.reference(src.r).scope(),
                        carrier,
                    },
                    distance: (0.5 * total_ws).round() as u64,
                    count: residue * share,
                });
            }
        }
        seen_on_array
            .entry(leader.array)
            .or_default()
            .push((members[0], cov));

        // Followers: reuse what an earlier member of the group touched.
        for (j, &mi) in members.iter().enumerate().skip(1) {
            let snk = &sites[mi];
            let snk_c = snk.offset.as_ref().map(|o| o.constant).unwrap_or(0);
            // `j >= 1`, so the slice is never empty; the guard only
            // satisfies the crate's no-unwrap wall.
            let Some((src_idx, delta)) = members[..j]
                .iter()
                .map(|&k| {
                    let c = sites[k].offset.as_ref().map(|o| o.constant).unwrap_or(0);
                    (k, (snk_c - c).unsigned_abs())
                })
                .min_by_key(|&(_, d)| d)
            else {
                continue;
            };
            let src = &sites[src_idx];
            let src_scope = program.reference(src.r).scope();
            let p_same = if (delta as f64) < bf {
                1.0 - delta as f64 / bf
            } else {
                0.0
            };
            if p_same > 0.0 {
                // Same block as the source's most recent touch.
                let (carrier, distance) = group_hit_distance(program, snk, src, bf);
                emissions.push(Emission {
                    key: PatternKey {
                        sink: snk.r,
                        source_scope: src_scope,
                        carrier,
                    },
                    distance,
                    count: snk.count * p_same,
                });
            }
            // The rest behaves like self reuse through the sink's own
            // nest; whatever escapes every level still lands on blocks
            // the group covered earlier, so the residue resolves at the
            // loop level whose stride sweep spans the offset delta
            // instead of going cold.
            let rest = cascade(snk, snk.count * (1.0 - p_same), &mut emissions);
            if rest > 0.0 {
                let mut placed = false;
                for (d, fr) in snk.frames.iter().enumerate() {
                    let s = snk.strides[d].abs();
                    let t = fr.eff_trip().max(1.0);
                    if s > 0.0 && delta as f64 <= s * t + 0.5 {
                        let iters = (delta as f64 / s).max(1.0);
                        let mut dist = iters * foot(fr.scope);
                        if let Some(up) = snk.frames.get(d + 1) {
                            dist = dist.min(foot(up.scope));
                        }
                        emissions.push(Emission {
                            key: PatternKey {
                                sink: snk.r,
                                source_scope: src_scope,
                                carrier: fr.scope,
                            },
                            distance: dist.max(0.0).round() as u64,
                            count: rest,
                        });
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    if let Some(outer) = snk.frames.last() {
                        emissions.push(Emission {
                            key: PatternKey {
                                sink: snk.r,
                                source_scope: src_scope,
                                carrier: outer.scope,
                            },
                            distance: (foot(outer.scope) - 1.0).max(0.0).round() as u64,
                            count: rest,
                        });
                    }
                    // With no enclosing loop the residue stays cold.
                }
            }
        }
    }

    // Fallback sites: uniform scatter over the target array's blocks.
    for &i in &fallback_sites {
        let site = &sites[i];
        let target_blocks = (site.array_bytes as f64 / bf).ceil().max(1.0);
        let source_scope = program.reference(site.r).scope();
        let mut mass = site.count;
        if let Some(f0) = site.frames.first() {
            let n_inner = f0.eff_trip().max(1.0);
            let distinct = scatter_distinct(n_inner, target_blocks);
            let resolved = (mass * (n_inner - distinct) / n_inner).max(0.0);
            if resolved > 0.0 {
                // Expected gap between revisits of a block is ~target_blocks
                // iterations of the scatter loop; the distance is what the
                // whole body covers in that window.
                let w = target_blocks.min(n_inner);
                let mut gap = scatter_distinct(w, target_blocks);
                for members in &groups {
                    let leader = &sites[members[0]];
                    if let Some(pos) = leader.frames.iter().position(|fr| fr.scope == f0.scope) {
                        gap += blocks_under(leader, pos + 1, bf, Some(w));
                    }
                }
                // Spread over half/mean/double to mimic the geometric tail.
                for (scale, share) in [(0.5, 0.25), (1.0, 0.5), (2.0, 0.25)] {
                    emissions.push(Emission {
                        key: PatternKey {
                            sink: site.r,
                            source_scope,
                            carrier: f0.scope,
                        },
                        distance: (gap * scale).round() as u64,
                        count: resolved * share,
                    });
                }
                mass -= resolved;
            }
            // Outer levels re-cover the same scatter region: temporal.
            for fr in site.frames.iter().skip(1) {
                let t = fr.eff_trip();
                if t <= 1.0 || mass <= 0.0 {
                    continue;
                }
                let resolved = mass * (t - 1.0) / t;
                emissions.push(Emission {
                    key: PatternKey {
                        sink: site.r,
                        source_scope,
                        carrier: fr.scope,
                    },
                    distance: (foot(fr.scope) - 1.0).max(0.0).round() as u64,
                    count: resolved,
                });
                mass -= resolved;
            }
        }
        let _ = mass; // residue stays cold
    }

    assemble_profile(program, sites, emissions, block_size)
}

/// Carrier scope and distance for a follower hitting the exact block its
/// group source touched most recently.
fn group_hit_distance(program: &Program, snk: &Site, src: &Site, bf: f64) -> (ScopeId, u64) {
    match (snk.frames.first(), src.frames.first()) {
        (Some(a), Some(b)) if a.scope == b.scope => (a.scope, 0),
        (None, _) | (_, None) => (program.reference(snk.r).scope(), 0),
        _ => {
            // Different innermost loops (e.g. two calls of the same
            // routine): the deepest shared frame carries the reuse, and
            // roughly half of each side's sub-nest sits in between.
            let mut common = None;
            for (pa, fa) in snk.frames.iter().enumerate().rev() {
                if let Some(pb) = src.frames.iter().rposition(|fb| fb.scope == fa.scope) {
                    common = Some((pa, pb, fa.scope));
                } else {
                    break;
                }
            }
            match common {
                Some((pa, pb, scope)) => {
                    let d = 0.5 * (blocks_under(snk, pa, bf, None) + blocks_under(src, pb, bf, None));
                    (scope, d.round() as u64)
                }
                None => {
                    let d = 0.5
                        * (blocks_under(snk, snk.frames.len(), bf, None)
                            + blocks_under(src, src.frames.len(), bf, None));
                    (ScopeId::ROOT, d.round() as u64)
                }
            }
        }
    }
}

/// Rounds emissions to integers per reference (cold = total - reuses, so
/// `accesses_balance` holds by construction) and builds the profile.
fn assemble_profile(
    program: &Program,
    sites: &[Site],
    emissions: Vec<Emission>,
    block_size: u64,
) -> ReuseProfile {
    let nrefs = program.references().len();
    let mut count_f = vec![0.0f64; nrefs];
    for s in sites {
        count_f[s.r.0 as usize] += s.count;
    }
    let mut by_ref: Vec<Vec<(PatternKey, u64, f64)>> = vec![Vec::new(); nrefs];
    for e in emissions {
        by_ref[e.key.sink.0 as usize].push((e.key, e.distance, e.count));
    }

    let mut cold = vec![0u64; nrefs];
    let mut total_accesses = 0u64;
    let mut patterns: BTreeMap<PatternKey, Histogram> = BTreeMap::new();
    for (rid, list) in by_ref.into_iter().enumerate() {
        let total = count_f[rid].round() as u64;
        total_accesses += total;
        let mut rounded: Vec<(PatternKey, u64, u64)> = list
            .into_iter()
            .map(|(k, d, c)| (k, d, c.round() as u64))
            .filter(|&(_, _, c)| c > 0)
            .collect();
        let mut reuse_sum: u64 = rounded.iter().map(|&(_, _, c)| c).sum();
        // Trim rounding overshoot from the largest slices so reuses
        // never exceed the access total.
        while reuse_sum > total {
            let over = reuse_sum - total;
            // Overshoot implies a nonempty emission list; the guard only
            // satisfies the crate's no-unwrap wall.
            let Some(largest) = rounded.iter_mut().max_by_key(|&&mut (_, _, c)| c) else {
                break;
            };
            let cut = over.min(largest.2);
            largest.2 -= cut;
            reuse_sum -= cut;
        }
        cold[rid] = total - reuse_sum;
        for (key, distance, c) in rounded {
            if c > 0 {
                patterns.entry(key).or_default().add_n(distance, c);
            }
        }
    }
    let distinct_blocks = cold.iter().sum();

    ReuseProfile {
        block_size,
        patterns: patterns
            .into_iter()
            .map(|(key, histogram)| ReusePattern { key, histogram })
            .collect(),
        cold,
        total_accesses,
        distinct_blocks,
        sampling: None,
    }
}
