//! Hot-footprint coverage via modular arithmetic (paper §III, step 3).
//!
//! Given a reuse group whose references walk memory with a common stride
//! `s`, all accesses of one reference land at the same phase `offset mod s`
//! of an `s`-byte window. The *coverage* of the group is the number of
//! distinct bytes its references touch inside that window; the rest of the
//! window is fetched into cache but never used.

/// Computes the number of distinct bytes covered in a window of `s` bytes
/// by accesses at the given `(byte offset, access width)` pairs, with each
/// offset reduced modulo `s` (wrapping accesses split across the window
/// boundary).
///
/// # Panics
///
/// Panics if `s` is zero.
///
/// # Examples
///
/// ```
/// use reuselens_static::coverage;
///
/// // Fig. 2 of the paper: A(I+2,J), A(I+3,J) with stride 32 B and 8-byte
/// // elements cover bytes [16,32) of each window: coverage 16 of 32.
/// assert_eq!(coverage(32, &[(16, 8), (24, 8)]), 16);
/// // All four B references cover the whole window.
/// assert_eq!(coverage(32, &[(8, 8), (24, 8), (0, 8), (16, 8)]), 32);
/// ```
pub fn coverage(s: u64, accesses: &[(i64, u32)]) -> u64 {
    assert!(s > 0, "window size must be positive");
    let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(accesses.len() + 1);
    for &(offset, width) in accesses {
        let width = width as u64;
        if width >= s {
            return s;
        }
        let phase = offset.rem_euclid(s as i64) as u64;
        if phase + width <= s {
            intervals.push((phase, phase + width));
        } else {
            // wraps around the window boundary
            intervals.push((phase, s));
            intervals.push((0, phase + width - s));
        }
    }
    intervals.sort_unstable();
    let mut covered = 0;
    let mut cur: Option<(u64, u64)> = None;
    for (lo, hi) in intervals {
        match cur {
            Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
            Some((clo, chi)) => {
                covered += chi - clo;
                cur = Some((lo, hi));
            }
            None => cur = Some((lo, hi)),
        }
    }
    if let Some((clo, chi)) = cur {
        covered += chi - clo;
    }
    covered.min(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_prng::SplitMix64;

    #[test]
    fn single_access_covers_its_width() {
        assert_eq!(coverage(32, &[(0, 8)]), 8);
        assert_eq!(coverage(32, &[(100, 4)]), 4); // 100 mod 32 = 4
    }

    #[test]
    fn overlapping_accesses_do_not_double_count() {
        assert_eq!(coverage(32, &[(0, 8), (4, 8)]), 12);
        assert_eq!(coverage(32, &[(0, 8), (0, 8)]), 8);
    }

    #[test]
    fn negative_offsets_reduce_correctly() {
        // -8 mod 32 = 24
        assert_eq!(coverage(32, &[(-8, 8)]), 8);
        assert_eq!(coverage(32, &[(-8, 8), (24, 8)]), 8);
    }

    #[test]
    fn wrapping_access_splits() {
        // phase 28, width 8 covers [28,32) and [0,4)
        assert_eq!(coverage(32, &[(28, 8)]), 8);
        assert_eq!(coverage(32, &[(28, 8), (0, 4)]), 8);
        assert_eq!(coverage(32, &[(28, 8), (4, 4)]), 12);
    }

    #[test]
    fn wide_access_saturates() {
        assert_eq!(coverage(8, &[(3, 64)]), 8);
    }

    #[test]
    fn empty_access_list_covers_nothing() {
        assert_eq!(coverage(32, &[]), 0);
    }

    /// Seeded randomized differential test against a byte-bitmap reference.
    #[test]
    fn matches_bitmap_reference() {
        let mut rng = SplitMix64::seed_from_u64(0xc0_0e4a6e);
        for _case in 0..256 {
            let s = rng.gen_range(1..128);
            let n = rng.gen_range(0..12);
            let accesses: Vec<(i64, u32)> = (0..n)
                .map(|_| (rng.gen_range_i64(-200..200), rng.gen_range(1..32) as u32))
                .collect();
            let fast = coverage(s, &accesses);
            let mut bytes = vec![false; s as usize];
            for &(off, w) in &accesses {
                for k in 0..w as u64 {
                    let pos = (off.rem_euclid(s as i64) as u64 + k) % s;
                    bytes[pos as usize] = true;
                }
            }
            let naive = bytes.iter().filter(|&&b| b).count() as u64;
            assert_eq!(fast, naive, "size {s}, accesses {accesses:?}");
        }
    }
}
