//! # reuselens-advisor — transformation recommendations
//!
//! Implements the paper's Table I: for each significant reuse pattern,
//! classify its shape — where the source `S` and destination `D` scopes sit
//! relative to the carrying scope `C` — and recommend the transformation
//! with the best chance of shortening the reuse distance:
//!
//! | scenario | recommendation |
//! |---|---|
//! | large fragmentation misses on one array | split the array (AoS → SoA) |
//! | many irregular misses, `S ≡ D` | data / computation reordering |
//! | `S ≡ D`, `C` an outer loop of the same nest | loop or dimension interchange; blocking when several arrays conflict |
//! | `S ≢ D`, `C` in the same routine | fuse `S` and `D` |
//! | `S` or `D` in a routine invoked from `C` | strip-mine both and promote the strip loop outside `C`, fusing |
//! | `C` is a time-step / main loop | time skewing, or accept the misses as intrinsic |
//!
//! The advisor never decides *legality* — as in the paper, that is left to
//! the application developer; recommendations carry a rationale string
//! explaining the pattern that triggered them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reuselens_core::PatternKey;
use reuselens_ir::{ArrayId, Program, ScopeId, ScopeKind};
use reuselens_metrics::{LevelMetrics, PatternRow};
use std::collections::HashSet;
use std::fmt;

/// A code or data transformation the advisor can recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transformation {
    /// Split an array of records into one array per field (AoS → SoA).
    SplitArray {
        /// The fragmented array.
        array: ArrayId,
    },
    /// Reorder data or computation to shorten irregular reuse.
    DataComputationReordering,
    /// Interchange the carrying loop inwards (or interchange the array's
    /// dimensions to match the traversal).
    LoopInterchange {
        /// The loop carrying the reuse.
        carrier: ScopeId,
    },
    /// Block (tile) inside the carrying loop and promote the block loop
    /// outside it — preferred when several arrays with different dimension
    /// orders conflict.
    LoopBlocking {
        /// The loop carrying the reuse.
        carrier: ScopeId,
    },
    /// Fuse the source and destination loops.
    Fuse {
        /// Scope where the data was last accessed.
        source: ScopeId,
        /// Scope reusing the data.
        dest: ScopeId,
    },
    /// Strip-mine source and destination with one strip size and promote
    /// the strip loops outside the carrier, fusing them.
    StripMineAndPromote {
        /// Scope where the data was last accessed.
        source: ScopeId,
        /// Scope reusing the data.
        dest: ScopeId,
        /// The carrying scope the strip loop must move outside of.
        carrier: ScopeId,
    },
    /// Apply time skewing if possible; otherwise these misses are intrinsic
    /// to the algorithm and not worth tuning effort.
    TimeSkewingOrAccept {
        /// The time-step / main loop carrying the reuse.
        carrier: ScopeId,
    },
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transformation::SplitArray { array } => {
                write!(f, "split array {array} into one array per field")
            }
            Transformation::DataComputationReordering => {
                write!(f, "apply data or computation reordering")
            }
            Transformation::LoopInterchange { carrier } => {
                write!(f, "interchange loop {carrier} inwards (or interchange array dimensions)")
            }
            Transformation::LoopBlocking { carrier } => {
                write!(f, "block inside loop {carrier} and promote the block loop outside it")
            }
            Transformation::Fuse { source, dest } => {
                write!(f, "fuse loops {source} and {dest}")
            }
            Transformation::StripMineAndPromote {
                source,
                dest,
                carrier,
            } => write!(
                f,
                "strip-mine {source} and {dest} with one stripe and promote the strip loop outside {carrier}"
            ),
            Transformation::TimeSkewingOrAccept { carrier } => write!(
                f,
                "time-skew across {carrier} if legal; otherwise accept these misses as intrinsic"
            ),
        }
    }
}

/// One recommendation: a pattern (or array), its miss weight, the suggested
/// transformation, and the reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The reuse pattern that triggered this (absent for whole-array
    /// fragmentation findings).
    pub pattern: Option<PatternKey>,
    /// Predicted misses this recommendation addresses.
    pub misses: f64,
    /// The suggested transformation.
    pub transformation: Transformation,
    /// Human-readable explanation of the classification.
    pub rationale: String,
}

/// Renders a transformation with human-readable scope paths instead of
/// raw scope ids.
pub fn describe(t: &Transformation, program: &Program) -> String {
    let path = |s: &ScopeId| program.scope_path(*s);
    match t {
        Transformation::SplitArray { array } => format!(
            "split array {} into one array per field",
            program.array(*array).name()
        ),
        Transformation::DataComputationReordering => {
            "apply data or computation reordering".to_string()
        }
        Transformation::LoopInterchange { carrier } => format!(
            "interchange loop '{}' inwards (or interchange array dimensions)",
            path(carrier)
        ),
        Transformation::LoopBlocking { carrier } => format!(
            "block inside loop '{}' and promote the block loop outside it",
            path(carrier)
        ),
        Transformation::Fuse { source, dest } => {
            format!("fuse loops '{}' and '{}'", path(source), path(dest))
        }
        Transformation::StripMineAndPromote {
            source,
            dest,
            carrier,
        } => format!(
            "strip-mine '{}' and '{}' with one stripe and promote the strip loop outside '{}'",
            path(source),
            path(dest),
            path(carrier)
        ),
        Transformation::TimeSkewingOrAccept { carrier } => format!(
            "time-skew across '{}' if legal; otherwise accept these misses as intrinsic",
            path(carrier)
        ),
    }
}

/// Returns the outermost loops of the entry routine — the usual
/// time-step / main loops of a simulation code — for
/// [`Advisor::with_time_loops`].
pub fn detect_time_loops(program: &Program) -> Vec<ScopeId> {
    let entry_scope = program.routine(program.entry()).scope();
    program
        .scopes()
        .iter()
        .filter(|s| s.is_loop() && s.parent() == Some(entry_scope))
        .map(|s| s.id())
        .collect()
}

/// The Table I classification engine.
#[derive(Debug, Clone)]
pub struct Advisor<'p> {
    program: &'p Program,
    time_loops: HashSet<ScopeId>,
    min_share: f64,
}

impl<'p> Advisor<'p> {
    /// Creates an advisor with no scopes marked as time-step / main loops
    /// and a 2% miss-share reporting threshold. Mark algorithmic
    /// time loops with [`with_time_loops`](Self::with_time_loops) —
    /// [`detect_time_loops`] provides the usual heuristic.
    pub fn new(program: &'p Program) -> Advisor<'p> {
        Advisor {
            program,
            time_loops: HashSet::new(),
            min_share: 0.02,
        }
    }

    /// Overrides the set of scopes treated as time-step / main loops.
    pub fn with_time_loops(mut self, loops: impl IntoIterator<Item = ScopeId>) -> Self {
        self.time_loops = loops.into_iter().collect();
        self
    }

    /// Sets the minimum share of a level's misses a pattern must reach to
    /// be reported (default 2%).
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `[0, 1]`.
    pub fn with_min_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0,1]");
        self.min_share = share;
        self
    }

    /// Produces ranked recommendations for one level's metrics, most
    /// misses first. Fragmentation findings (per array) come first when an
    /// array's fragmentation misses alone pass the threshold.
    pub fn advise(&self, metrics: &LevelMetrics) -> Vec<Recommendation> {
        let mut out = Vec::new();
        let threshold = metrics.total_misses * self.min_share;

        // Row 1: large fragmentation miss count due to one array.
        for (i, &frag) in metrics.frag_by_array.iter().enumerate() {
            if frag > threshold && frag > 0.0 {
                let array = ArrayId(i as u32);
                out.push(Recommendation {
                    pattern: None,
                    misses: frag,
                    transformation: Transformation::SplitArray { array },
                    rationale: format!(
                        "array {} wastes {:.0}% of its misses on unused bytes in fetched lines",
                        self.program.array(array).name(),
                        100.0 * frag / metrics.by_array[i].max(1.0)
                    ),
                });
            }
        }

        for row in &metrics.patterns {
            if row.misses < threshold {
                continue;
            }
            if let Some(rec) = self.classify(row) {
                out.push(rec);
            }
        }
        out.sort_by(|a, b| b.misses.total_cmp(&a.misses));
        out
    }

    /// Classifies a single pattern row per Table I.
    pub fn classify(&self, row: &PatternRow) -> Option<Recommendation> {
        let p = self.program;
        let key = row.key;
        let source = key.source_scope;
        let dest = p.reference(key.sink).scope();
        let carrier = key.carrier;
        let same_sd = source == dest;

        let (transformation, rationale) = if self.time_loops.contains(&carrier) {
            (
                Transformation::TimeSkewingOrAccept { carrier },
                format!(
                    "reuse carried by main/time-step loop '{}' — hard or impossible to remove",
                    p.scope_path(carrier)
                ),
            )
        } else if row.irregular && same_sd {
            (
                Transformation::DataComputationReordering,
                format!(
                    "irregular reuse within '{}' carried by '{}'",
                    p.scope_path(dest),
                    p.scope_path(carrier)
                ),
            )
        } else if same_sd && self.is_outer_loop_of_same_nest(carrier, dest) {
            if row.carrier_stride == Some(0) {
                // The sink touches the same locations every carrier
                // iteration: a pure re-traversal. Interchange moves nothing
                // closer; blocking inside the carrier does (Table I's
                // "loop blocking may work best" case).
                (
                    Transformation::LoopBlocking { carrier },
                    format!(
                        "'{}' re-reads identical data on every iteration of '{}'",
                        p.scope_path(dest),
                        p.scope_path(carrier)
                    ),
                )
            } else {
                (
                    Transformation::LoopInterchange { carrier },
                    format!(
                        "'{}' re-traverses data; carrying loop '{}' iterates the array's non-contiguous dimension",
                        p.scope_path(dest),
                        p.scope_path(carrier)
                    ),
                )
            }
        } else if !same_sd && self.same_routine(&[source, dest, carrier]) {
            (
                Transformation::Fuse { source, dest },
                format!(
                    "data produced in '{}' is reused in '{}' under common scope '{}'",
                    p.scope_path(source),
                    p.scope_path(dest),
                    p.scope_path(carrier)
                ),
            )
        } else if !same_sd || !self.same_routine(&[dest, carrier]) {
            (
                Transformation::StripMineAndPromote {
                    source,
                    dest,
                    carrier,
                },
                format!(
                    "reuse spans routines: source '{}', destination '{}', carried by '{}'",
                    p.scope_path(source),
                    p.scope_path(dest),
                    p.scope_path(carrier)
                ),
            )
        } else {
            // Same scope, carrier is the scope itself or a non-nest
            // ancestor: the reuse is already as short as its loop makes it.
            return None;
        };

        Some(Recommendation {
            pattern: Some(key),
            misses: row.misses,
            transformation,
            rationale,
        })
    }

    /// True when `carrier` is a loop, a strict ancestor of `dest`, in the
    /// same routine (an outer loop of the same nest).
    fn is_outer_loop_of_same_nest(&self, carrier: ScopeId, dest: ScopeId) -> bool {
        matches!(self.program.scope(carrier).kind(), ScopeKind::Loop(_))
            && carrier != dest
            && self.program.is_ancestor(carrier, dest)
            && self.same_routine(&[carrier, dest])
    }

    fn same_routine(&self, scopes: &[ScopeId]) -> bool {
        let mut routines = scopes
            .iter()
            .map(|&s| self.program.routine_of(s));
        let first = routines.next().flatten();
        first.is_some() && routines.all(|r| r == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_cache::MemoryHierarchy;
    use reuselens_ir::{Expr, ProgramBuilder};
    use reuselens_metrics::run_locality_analysis;

    fn advise_l2(prog: &Program) -> Vec<Recommendation> {
        let la =
            run_locality_analysis(prog, &MemoryHierarchy::itanium2_scaled(16), vec![]).unwrap();
        Advisor::new(prog).advise(la.level("L2").unwrap())
    }

    /// Paper Fig. 1(a): inner loop walks rows of a column-major array; the
    /// outer loop carries the spatial reuse => interchange.
    #[test]
    fn fig1_pattern_gets_loop_interchange() {
        let (n, m) = (256u64, 128u64);
        let mut p = ProgramBuilder::new("fig1a");
        let a = p.array("a", 8, &[n, m]);
        let b = p.array("b", 8, &[n, m]);
        p.routine("main", |r| {
            r.for_("i", 0, (n - 1) as i64, |r, i| {
                r.for_("j", 0, (m - 1) as i64, |r, j| {
                    r.load(b, vec![i.into(), j.into()]);
                    r.load(a, vec![i.into(), j.into()]);
                    r.store(a, vec![i.into(), j.into()]);
                });
            });
        });
        let prog = p.finish();
        let recs = advise_l2(&prog);
        assert!(
            recs.iter().any(|r| matches!(
                r.transformation,
                Transformation::LoopInterchange { carrier }
                    if carrier == prog.scope_by_name("i").unwrap()
            )),
            "expected interchange of loop i, got {recs:#?}"
        );
    }

    /// Two sibling loops under a parent: produce/consume => fuse.
    #[test]
    fn producer_consumer_gets_fusion() {
        let n = 8192u64;
        let mut p = ProgramBuilder::new("fuse");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("outer", 0, 0, |r, _| {
                r.for_("produce", 0, (n - 1) as i64, |r, i| {
                    r.store(a, vec![i.into()]);
                });
                r.for_("consume", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let recs = advise_l2(&prog);
        let produce = prog.scope_by_name("produce").unwrap();
        let consume = prog.scope_by_name("consume").unwrap();
        assert!(
            recs.iter().any(|r| r.transformation
                == Transformation::Fuse {
                    source: produce,
                    dest: consume
                }),
            "expected fusion, got {recs:#?}"
        );
    }

    /// Producer in a callee, consumer in the caller => strip-mine+promote.
    #[test]
    fn cross_routine_reuse_gets_strip_mine() {
        let n = 8192u64;
        let mut p = ProgramBuilder::new("xr");
        let a = p.array("a", 8, &[n]);
        let callee = p.declare_routine("gcmotion");
        let main = p.routine("pushi_driver", |r| {
            r.for_("outer", 0, 0, |r, _| {
                r.call(callee);
                r.for_("consume", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        p.define_routine(callee, |r| {
            r.for_("produce", 0, (n - 1) as i64, |r, i| {
                r.store(a, vec![i.into()]);
            });
        });
        p.set_entry(main);
        let prog = p.finish();
        let recs = advise_l2(&prog);
        assert!(
            recs.iter()
                .any(|r| matches!(r.transformation, Transformation::StripMineAndPromote { .. })),
            "expected strip-mine+promote, got {recs:#?}"
        );
    }

    /// Reuse carried by the entry routine's outermost loop => time skewing
    /// or accept.
    #[test]
    fn time_loop_reuse_is_flagged_intrinsic() {
        let n = 8192u64;
        let mut p = ProgramBuilder::new("ts");
        let a = p.array("a", 8, &[n]);
        p.routine("main", |r| {
            r.for_("istep", 0, 2, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        let prog = p.finish();
        let la =
            run_locality_analysis(&prog, &MemoryHierarchy::itanium2_scaled(16), vec![]).unwrap();
        let istep = prog.scope_by_name("istep").unwrap();
        assert_eq!(detect_time_loops(&prog), vec![istep]);
        let recs = Advisor::new(&prog)
            .with_time_loops(detect_time_loops(&prog))
            .advise(la.level("L2").unwrap());
        assert!(
            recs.iter().any(|r| r.transformation
                == Transformation::TimeSkewingOrAccept { carrier: istep }),
            "expected time-skew/accept, got {recs:#?}"
        );
    }

    /// AoS field access => split-array recommendation from fragmentation.
    #[test]
    fn fragmented_aos_gets_split_array() {
        let n = 16384u64;
        let mut p = ProgramBuilder::new("aos");
        let zion = p.array("zion", 8, &[7, n]);
        p.routine("main", |r| {
            r.for_("t", 0, 1, |r, _| {
                r.for_("i", 0, (n - 1) as i64, |r, i| {
                    r.load(zion, vec![Expr::c(2), i.into()]);
                });
            });
        });
        let prog = p.finish();
        let recs = advise_l2(&prog);
        let zion_id = prog.array_by_name("zion").unwrap();
        assert!(
            recs.iter()
                .any(|r| r.transformation == Transformation::SplitArray { array: zion_id }),
            "expected split-array, got {recs:#?}"
        );
    }

    /// Indirect gather reusing data within one loop => data/computation
    /// reordering.
    #[test]
    fn irregular_reuse_gets_reordering() {
        let n = 4096u64;
        let particles = 8192u64;
        let mut p = ProgramBuilder::new("irr");
        let ix = p.index_array("ix", &[particles]);
        let grid = p.array("grid", 8, &[n]);
        p.routine("main", |r| {
            r.for_("i", 0, (particles - 1) as i64, |r, i| {
                r.load(grid, vec![Expr::load(ix, vec![i.into()])]);
            });
        });
        let prog = p.finish();
        // Scattered particle->grid map: consecutive particles touch far
        // apart grid cells.
        let idx: Vec<i64> = (0..particles).map(|k| ((k * 2654435761) % n) as i64).collect();
        let la = run_locality_analysis(
            &prog,
            &MemoryHierarchy::itanium2_scaled(16),
            vec![(ix, idx)],
        )
        .unwrap();
        let recs = Advisor::new(&prog).advise(la.level("L2").unwrap());
        assert!(
            recs.iter()
                .any(|r| r.transformation == Transformation::DataComputationReordering),
            "expected reordering, got {recs:#?}"
        );
    }

    #[test]
    fn transformations_display_readably() {
        let t = Transformation::Fuse {
            source: ScopeId(1),
            dest: ScopeId(2),
        };
        assert!(t.to_string().contains("fuse"));
        let t = Transformation::TimeSkewingOrAccept { carrier: ScopeId(3) };
        assert!(t.to_string().contains("time-skew"));
    }

    #[test]
    #[should_panic(expected = "share must be in [0,1]")]
    fn bad_share_panics() {
        let mut p = ProgramBuilder::new("x");
        let a = p.array("a", 8, &[4]);
        p.routine("main", |r| {
            r.load(a, vec![Expr::c(0)]);
        });
        let prog = p.finish();
        let _ = Advisor::new(&prog).with_min_share(1.5);
    }
}
