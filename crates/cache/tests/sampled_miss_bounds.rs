//! Miss predictions from sampled histograms versus exact, on the two
//! committed paper workloads and the committed Itanium2-derived
//! hierarchies.
//!
//! The sampled analyzer's histograms are scaled estimates; this suite
//! pins down how far the *downstream* miss-model predictions can drift
//! because of that. For each workload (Sweep3D mesh 8, GTC 256x8), each
//! hierarchy (`itanium2_scaled(16)` and `(32)`), and each sampling rate
//! (0.1, 0.01), the same captured trace is replayed exactly and sampled,
//! both analyses run through [`report_from_analysis`], and every level's
//! prediction is compared.
//!
//! # Resolvability floor
//!
//! A level is only *resolvable* at inverse rate `inv` when its capacity
//! is at least [`RESOLVABLE_INVS`]` * inv` blocks — the same floor the
//! core accuracy suite applies per histogram octave. Below it the
//! sampled tree tracks under a handful of blocks per capacity-sized
//! interval, scaled distances quantize in steps of `inv`, and whether a
//! reuse lands above or below the capacity boundary is essentially a
//! coin flip (calibration shows the 8-entry scaled TLB off by 14x).
//! Such levels are outside the stated accuracy contract and are skipped;
//! with these hierarchies that leaves L2+L3 checked at rate 0.1 and the
//! larger L3 at rate 0.01.
//!
//! # Bands
//!
//! For every resolvable level:
//!
//! * the **miss rate** must agree within [`MISS_RATE_ABS_BAND`] absolute;
//! * when the level carries real traffic (exact miss rate at least
//!   [`MATERIAL_MISS_RATE`]), the total predicted **miss count** must
//!   also agree within [`MISS_REL_BAND`] relative error.
//!
//! The bands carry ~2.5x margin over the worst drift observed with
//! `calibrate_print_errors` (abs 0.0163, rel 0.231, both on the
//! factor-32 hierarchy). Everything here is deterministic — a failure
//! reproduces exactly.

use reuselens_cache::{report_from_analysis, CacheConfig, HierarchyReport, MemoryHierarchy};
use reuselens_core::{
    analyze_buffer_with, capture_program, AnalysisResult, AnalyzeOptions, SamplingConfig,
};
use reuselens_workloads::{gtc, sweep3d, BuiltWorkload};

/// Absolute miss-rate drift allowed at every resolvable level.
const MISS_RATE_ABS_BAND: f64 = 0.04;
/// Relative miss-count drift allowed at resolvable levels with material
/// traffic.
const MISS_REL_BAND: f64 = 0.50;
/// A level is material when the exact model predicts at least this miss
/// rate; below it, counts are too small for a relative band and only the
/// absolute miss-rate band applies.
const MATERIAL_MISS_RATE: f64 = 0.005;
/// A level must hold at least this many multiples of the sampling
/// interval to be resolvable (see the module doc).
const RESOLVABLE_INVS: u64 = 4;

const RATES: [f64; 2] = [0.1, 0.01];

fn workloads() -> Vec<(&'static str, BuiltWorkload)> {
    vec![
        (
            "sweep3d",
            sweep3d::build(&sweep3d::SweepConfig::new(8).with_timesteps(1)),
        ),
        ("gtc", gtc::build(&gtc::GtcConfig::new(256, 8).with_timesteps(1))),
    ]
}

fn hierarchies() -> Vec<MemoryHierarchy> {
    vec![
        MemoryHierarchy::itanium2_scaled(16),
        MemoryHierarchy::itanium2_scaled(32),
    ]
}

/// Captures once and produces the hierarchy report under the given
/// sampling config.
fn report_with(
    w: &BuiltWorkload,
    hierarchy: &MemoryHierarchy,
    sampling: SamplingConfig,
) -> HierarchyReport {
    let (buffer, exec) = capture_program(&w.program, w.index_arrays.clone()).expect("capture");
    let opts = AnalyzeOptions {
        sampling,
        ..AnalyzeOptions::default()
    };
    let grains = hierarchy.required_granularities();
    let (profiles, _timings) = analyze_buffer_with(&w.program, &buffer, &grains, &opts)
        .into_strict()
        .expect("replay");
    report_from_analysis(&AnalysisResult { profiles, exec }, hierarchy)
}

/// Per-level predictions of a report zipped with their configurations,
/// caches then TLB — prediction order matches hierarchy order.
fn levels<'a>(
    report: &'a HierarchyReport,
    hierarchy: &'a MemoryHierarchy,
) -> Vec<(&'a reuselens_cache::LevelPrediction, &'a CacheConfig)> {
    report
        .levels
        .iter()
        .chain(std::iter::once(&report.tlb))
        .zip(hierarchy.levels.iter().chain(std::iter::once(&hierarchy.tlb)))
        .collect()
}

fn inv_of(rate: f64) -> u64 {
    (1.0 / rate).round() as u64
}

#[test]
fn sampled_miss_predictions_stay_within_bands() {
    let mut resolvable_checked = 0u32;
    for (name, w) in workloads() {
        for hierarchy in hierarchies() {
            let exact = report_with(&w, &hierarchy, SamplingConfig::Exact);
            for rate in RATES {
                let inv = inv_of(rate);
                let sampled = report_with(&w, &hierarchy, SamplingConfig::fixed(rate));
                let pairs = levels(&exact, &hierarchy);
                for ((le, config), (ls, _)) in pairs.iter().zip(levels(&sampled, &hierarchy)) {
                    assert_eq!(le.level, ls.level);
                    // Sampling never scales the true access count, so the
                    // two predictions share a denominator.
                    assert_eq!(
                        le.accesses, ls.accesses,
                        "{name}/{}/{}: sampled access count diverged",
                        hierarchy.name, le.level
                    );
                    if config.blocks() < RESOLVABLE_INVS * inv {
                        continue;
                    }
                    resolvable_checked += 1;
                    let rate_err = (ls.miss_rate() - le.miss_rate()).abs();
                    assert!(
                        rate_err <= MISS_RATE_ABS_BAND,
                        "{name}/{}/{} at rate {rate}: miss rate {:.4} vs exact {:.4} \
                         (abs err {rate_err:.4} > band {MISS_RATE_ABS_BAND})",
                        hierarchy.name,
                        le.level,
                        ls.miss_rate(),
                        le.miss_rate()
                    );
                    if le.miss_rate() >= MATERIAL_MISS_RATE {
                        let rel = (ls.total - le.total).abs() / le.total;
                        assert!(
                            rel <= MISS_REL_BAND,
                            "{name}/{}/{} at rate {rate}: {:.0} predicted misses vs \
                             exact {:.0} (rel err {rel:.3} > band {MISS_REL_BAND})",
                            hierarchy.name,
                            le.level,
                            ls.total,
                            le.total
                        );
                    }
                }
            }
        }
    }
    // The floor must not quietly swallow the whole suite: both L2s and
    // both L3s at rate 0.1 plus the factor-16 L3 at rate 0.01, for each
    // of the two workloads.
    assert_eq!(resolvable_checked, 10, "resolvable level set changed");
}

/// The exact config through the sampled entry path must reproduce the
/// exact report bit for bit — the miss model sees identical profiles.
#[test]
fn exact_config_reproduces_exact_report() {
    for (_name, w) in workloads() {
        let hierarchy = MemoryHierarchy::itanium2_scaled(16);
        let a = report_with(&w, &hierarchy, SamplingConfig::Exact);
        let b = report_with(&w, &hierarchy, SamplingConfig::exact());
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.tlb, b.tlb);
        assert_eq!(a.accesses, b.accesses);
    }
}

/// Prints the actual per-level drift so the bands above can be audited;
/// run with `cargo test -p reuselens-cache --test sampled_miss_bounds \
/// calibrate -- --ignored --nocapture`.
#[test]
#[ignore]
fn calibrate_print_errors() {
    for (name, w) in workloads() {
        for hierarchy in hierarchies() {
            let exact = report_with(&w, &hierarchy, SamplingConfig::Exact);
            for rate in RATES {
                let inv = inv_of(rate);
                let sampled = report_with(&w, &hierarchy, SamplingConfig::fixed(rate));
                let pairs = levels(&exact, &hierarchy);
                for ((le, config), (ls, _)) in pairs.iter().zip(levels(&sampled, &hierarchy)) {
                    let rel = if le.total > 0.0 {
                        (ls.total - le.total).abs() / le.total
                    } else {
                        0.0
                    };
                    let resolvable = config.blocks() >= RESOLVABLE_INVS * inv;
                    println!(
                        "{name}/{}/{} rate {rate} ({} blocks, resolvable {resolvable}): \
                         exact rate {:.4} sampled rate {:.4} abs {:.4} rel {:.3}",
                        hierarchy.name,
                        le.level,
                        config.blocks(),
                        le.miss_rate(),
                        ls.miss_rate(),
                        (ls.miss_rate() - le.miss_rate()).abs(),
                        rel
                    );
                }
            }
        }
    }
}
