//! Differential suite: the histogram-based miss model versus the true
//! LRU simulator, over seeded random traces.
//!
//! Fully associative caches admit an exact statement — a reuse at stack
//! distance `d` misses iff `d >= blocks` — so for capacities below the
//! histogram's unit-bin range (256 blocks) the model's prediction must
//! equal [`CacheSim`]'s miss count *exactly*, and both must equal the
//! brute-force [`oracle::fully_associative_misses`]. Set-associative
//! caches use a binomial placement model that is only statistically
//! right, so those predictions are held to a stated tolerance band
//! rather than equality.
//!
//! Every trace derives from a printed seed; any failure message carries
//! enough to reproduce it exactly.

use reuselens_cache::{predict_level, Assoc, CacheConfig, CacheSim};
use reuselens_core::{oracle, ReuseAnalyzer, ReuseProfile};
use reuselens_ir::{AccessKind, Program, ProgramBuilder, RefId};
use reuselens_prng::SplitMix64;
use reuselens_trace::TraceSink;

const LINE: u64 = 64;
const BASE_SEED: u64 = 0xcac4_e5ee_d000;

/// One-reference program: the suites drive [`TraceSink`] directly.
fn one_ref_program() -> Program {
    let mut p = ProgramBuilder::new("model_vs_sim");
    let a = p.array("a", 8, &[1]);
    p.routine("main", |r| {
        r.for_("i", 0, 0, |r, i| {
            r.load(a, vec![i.into()]);
        });
    });
    p.finish()
}

/// A seeded trace mixing strided sweeps with random gathers, sized so
/// small capacities see real capacity misses and large ones mostly hit.
fn gen_trace(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let len = rng.gen_range(400..1600) as usize;
    let footprint = rng.gen_range(16..192) * LINE;
    let mut addrs = Vec::with_capacity(len);
    let mut cursor = 0u64;
    for _ in 0..len {
        if rng.gen_f64() < 0.3 {
            addrs.push(rng.gen_range(0..footprint));
        } else {
            cursor = (cursor + 8) % footprint;
            addrs.push(cursor);
        }
    }
    addrs
}

/// Measures a line-granularity reuse profile over the trace.
fn measure(program: &Program, addrs: &[u64]) -> ReuseProfile {
    let mut analyzer = ReuseAnalyzer::new(program, LINE);
    for &addr in addrs {
        analyzer.access(RefId(0), addr, 8, AccessKind::Load);
    }
    analyzer.finish()
}

/// Simulates the trace against a cache configuration.
fn simulate(config: &CacheConfig, addrs: &[u64]) -> u64 {
    let mut sim = CacheSim::new(config, 1);
    for &addr in addrs {
        sim.access(RefId(0), addr, 8, AccessKind::Load);
    }
    sim.misses()
}

/// Fully associative: model == simulator == brute-force oracle, exactly.
/// Capacities stay below the histogram's 256-block unit-bin range so
/// `count_ge` is exact, not interpolated.
#[test]
fn fully_associative_prediction_is_exact() {
    let program = one_ref_program();
    let caps: [u64; 7] = [1, 2, 3, 7, 16, 64, 255];
    for case in 0..24u64 {
        let seed = BASE_SEED ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let addrs = gen_trace(seed);
        let profile = measure(&program, &addrs);
        for cap in caps {
            let cfg = CacheConfig::new("FA", cap * LINE, LINE, Assoc::Full);
            let predicted = predict_level(&profile, &cfg).total;
            let simulated = simulate(&cfg, &addrs);
            let brute = oracle::fully_associative_misses(&addrs, LINE, cap as usize);
            assert_eq!(
                simulated, brute,
                "case {case} (seed {seed:#x}, cap {cap}): simulator disagrees \
                 with the brute-force oracle"
            );
            assert!(
                (predicted - simulated as f64).abs() < 1e-6,
                "case {case} (seed {seed:#x}, cap {cap} blocks): model predicts \
                 {predicted}, simulator measured {simulated}"
            );
        }
    }
}

/// Set-associative: the binomial placement model must land within a
/// stated band of the simulator. The band is loose — the model is
/// probabilistic and the simulator sees one concrete placement — but it
/// catches sign errors, off-by-one way counts, and swapped set math.
#[test]
fn set_associative_prediction_within_band() {
    let program = one_ref_program();
    let configs = [
        ("8KB-2way", 8 * 1024, Assoc::Ways(2)),
        ("8KB-4way", 8 * 1024, Assoc::Ways(4)),
        ("32KB-8way", 32 * 1024, Assoc::Ways(8)),
    ];
    for case in 0..24u64 {
        let seed = BASE_SEED ^ 0xa55a ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let addrs = gen_trace(seed);
        let profile = measure(&program, &addrs);
        for (name, capacity, assoc) in configs {
            let cfg = CacheConfig::new(name, capacity, LINE, assoc);
            let predicted = predict_level(&profile, &cfg).total;
            let simulated = simulate(&cfg, &addrs) as f64;
            let lo = 0.5 * simulated - 16.0;
            let hi = 2.0 * simulated + 16.0;
            assert!(
                (lo..=hi).contains(&predicted),
                "case {case} (seed {seed:#x}, {name}): predicted {predicted:.1} \
                 outside [{lo:.1}, {hi:.1}] around simulated {simulated}"
            );
        }
    }
}
