//! Memory-hierarchy descriptions and presets.

use crate::error::ConfigError;
use std::fmt;

/// Cache associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assoc {
    /// Fully associative: one set holds every block.
    Full,
    /// Set-associative with this many ways.
    Ways(u32),
}

impl fmt::Display for Assoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assoc::Full => write!(f, "fully-assoc"),
            Assoc::Ways(w) => write!(f, "{w}-way"),
        }
    }
}

/// One cache level (or a TLB, which is a cache of page translations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Display name, e.g. `"L2"`.
    pub name: String,
    /// Total capacity in bytes. For a TLB this is `entries * page_size`.
    pub capacity: u64,
    /// Line size in bytes (page size for a TLB). Must be a power of two.
    pub line_size: u64,
    /// Associativity.
    pub assoc: Assoc,
}

impl CacheConfig {
    /// Creates a cache level description, validating its geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `line_size` is a power of two,
    /// `capacity` is a positive multiple of `line_size`, and the way count
    /// (if any) is nonzero and divides the block count.
    ///
    /// # Examples
    ///
    /// ```
    /// use reuselens_cache::{Assoc, CacheConfig, ConfigError};
    ///
    /// assert!(CacheConfig::try_new("L2", 256 * 1024, 128, Assoc::Ways(8)).is_ok());
    /// assert!(matches!(
    ///     CacheConfig::try_new("bad", 1024, 48, Assoc::Full),
    ///     Err(ConfigError::LineSizeNotPowerOfTwo { line_size: 48 })
    /// ));
    /// ```
    pub fn try_new(
        name: &str,
        capacity: u64,
        line_size: u64,
        assoc: Assoc,
    ) -> Result<CacheConfig, ConfigError> {
        let config = CacheConfig {
            name: name.to_string(),
            capacity,
            line_size,
            assoc,
        };
        config.validate()?;
        Ok(config)
    }

    /// Creates a cache level description.
    ///
    /// # Panics
    ///
    /// Panics where [`CacheConfig::try_new`] would return an error.
    pub fn new(name: &str, capacity: u64, line_size: u64, assoc: Assoc) -> CacheConfig {
        CacheConfig::try_new(name, capacity, line_size, assoc).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Describes a TLB with `entries` translations over pages of
    /// `page_size` bytes, validating the geometry (including overflow of
    /// `entries * page_size`).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on overflow or invalid geometry.
    pub fn try_tlb(
        name: &str,
        entries: u64,
        page_size: u64,
        assoc: Assoc,
    ) -> Result<CacheConfig, ConfigError> {
        let capacity = entries
            .checked_mul(page_size)
            .ok_or(ConfigError::TlbOverflow { entries, page_size })?;
        CacheConfig::try_new(name, capacity, page_size, assoc)
    }

    /// Describes a TLB with `entries` translations over pages of
    /// `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics where [`CacheConfig::try_tlb`] would return an error.
    pub fn tlb(name: &str, entries: u64, page_size: u64, assoc: Assoc) -> CacheConfig {
        CacheConfig::try_tlb(name, entries, page_size, assoc).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Re-checks the geometry invariants. Useful for configurations built
    /// or mutated field-by-field (the fields are public).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line_size.is_power_of_two() {
            return Err(ConfigError::LineSizeNotPowerOfTwo {
                line_size: self.line_size,
            });
        }
        if self.capacity == 0 || !self.capacity.is_multiple_of(self.line_size) {
            return Err(ConfigError::CapacityNotMultiple {
                capacity: self.capacity,
                line_size: self.line_size,
            });
        }
        let blocks = self.capacity / self.line_size;
        if let Assoc::Ways(w) = self.assoc {
            if w == 0 || !blocks.is_multiple_of(w as u64) {
                return Err(ConfigError::WaysDontDivideBlocks { ways: w, blocks });
            }
        }
        Ok(())
    }

    /// Total number of blocks (lines / TLB entries).
    pub fn blocks(&self) -> u64 {
        self.capacity / self.line_size
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        match self.assoc {
            Assoc::Full => 1,
            Assoc::Ways(w) => self.blocks() / w as u64,
        }
    }

    /// Ways per set.
    pub fn ways(&self) -> u64 {
        match self.assoc {
            Assoc::Full => self.blocks(),
            Assoc::Ways(w) => w as u64,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {} B lines, {}",
            self.name,
            self.capacity / 1024,
            self.line_size,
            self.assoc
        )
    }
}

/// A full memory hierarchy: cache levels (outermost last) plus a TLB and
/// the latency parameters of the cycle model ([`crate::predict_cycles`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryHierarchy {
    /// Display name, e.g. `"Itanium2"`.
    pub name: String,
    /// Cache levels, nearest first (L2 before L3 — the paper models the
    /// Itanium2 levels that hold data; its tiny L1 does not cache FP data).
    pub levels: Vec<CacheConfig>,
    /// The data TLB.
    pub tlb: CacheConfig,
    /// Cycles per access when everything hits (the non-stall component).
    pub base_cpa: f64,
    /// Added miss penalty in cycles per miss, one per cache level.
    pub miss_penalty: Vec<f64>,
    /// Added penalty per TLB miss.
    pub tlb_penalty: f64,
}

impl MemoryHierarchy {
    /// The Itanium2 configuration used throughout the paper's evaluation:
    /// 256 KB 8-way L2 and 1.5 MB 6-way L3 with 128-byte lines, and a
    /// 128-entry fully associative data TLB with 16 KB pages.
    ///
    /// Floating-point data on Itanium2 bypasses L1, so L2 is the first
    /// level — exactly the levels the paper predicts (L2, L3, TLB).
    pub fn itanium2() -> MemoryHierarchy {
        MemoryHierarchy {
            name: "Itanium2".to_string(),
            levels: vec![
                CacheConfig::new("L2", 256 * 1024, 128, Assoc::Ways(8)),
                CacheConfig::new("L3", 1536 * 1024, 128, Assoc::Ways(6)),
            ],
            tlb: CacheConfig::tlb("TLB", 128, 16 * 1024, Assoc::Full),
            base_cpa: 1.0,
            miss_penalty: vec![6.0, 110.0],
            tlb_penalty: 30.0,
        }
    }

    /// The Itanium2 hierarchy with every capacity divided by `factor`
    /// (line and page sizes kept). The reproduction runs meshes scaled down
    /// from the paper's 50³–200³ to CI-friendly sizes; shrinking the caches
    /// by the same factor preserves the *ratio* of working-set to cache
    /// size, which is what determines every crossover in the figures.
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not divide the capacities down to whole
    /// sets.
    pub fn itanium2_scaled(factor: u64) -> MemoryHierarchy {
        let mut h = MemoryHierarchy::itanium2();
        h.name = format!("Itanium2/{factor}");
        for level in &mut h.levels {
            *level = CacheConfig::new(
                &level.name,
                level.capacity / factor,
                level.line_size,
                level.assoc,
            );
        }
        h.tlb = CacheConfig::tlb(
            "TLB",
            h.tlb.blocks() / factor,
            h.tlb.line_size,
            Assoc::Full,
        );
        h
    }

    /// Block sizes an analysis pass must measure at to feed every level of
    /// this hierarchy: the distinct cache line sizes plus the page size.
    pub fn required_granularities(&self) -> Vec<u64> {
        let mut g: Vec<u64> = self.levels.iter().map(|l| l.line_size).collect();
        g.push(self.tlb.line_size);
        g.sort_unstable();
        g.dedup();
        g
    }

    /// Finds a level by name.
    pub fn level(&self, name: &str) -> Option<&CacheConfig> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Validates the hierarchy as a whole: at least one cache level, every
    /// level and the TLB geometrically valid, all names (TLB included)
    /// distinct, and one miss penalty per level. Called by
    /// [`evaluate_sweep`](crate::evaluate_sweep) before scoring, so a
    /// hand-built candidate cannot poison a sweep with a panic deep in the
    /// model.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.levels.is_empty() {
            return Err(ConfigError::NoLevels {
                hierarchy: self.name.clone(),
            });
        }
        let mut names = Vec::with_capacity(self.levels.len() + 1);
        for level in self.levels.iter().chain(std::iter::once(&self.tlb)) {
            level.validate()?;
            if names.contains(&level.name.as_str()) {
                return Err(ConfigError::DuplicateLevel {
                    hierarchy: self.name.clone(),
                    name: level.name.clone(),
                });
            }
            names.push(level.name.as_str());
        }
        if self.miss_penalty.len() != self.levels.len() {
            return Err(ConfigError::PenaltyMismatch {
                hierarchy: self.name.clone(),
                levels: self.levels.len(),
                penalties: self.miss_penalty.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for MemoryHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "; {}]", self.tlb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itanium2_matches_paper_parameters() {
        let h = MemoryHierarchy::itanium2();
        let l2 = h.level("L2").unwrap();
        assert_eq!(l2.capacity, 256 * 1024);
        assert_eq!(l2.assoc, Assoc::Ways(8));
        assert_eq!(l2.blocks(), 2048);
        assert_eq!(l2.sets(), 256);
        assert_eq!(l2.ways(), 8);
        let l3 = h.level("L3").unwrap();
        assert_eq!(l3.capacity, 1536 * 1024);
        assert_eq!(l3.assoc, Assoc::Ways(6));
        assert_eq!(h.tlb.blocks(), 128);
        assert_eq!(h.tlb.ways(), 128);
        assert_eq!(h.tlb.sets(), 1);
        assert_eq!(h.required_granularities(), vec![128, 16 * 1024]);
    }

    #[test]
    fn scaled_hierarchy_divides_capacities() {
        let h = MemoryHierarchy::itanium2_scaled(8);
        assert_eq!(h.level("L2").unwrap().capacity, 32 * 1024);
        assert_eq!(h.level("L2").unwrap().line_size, 128);
        assert_eq!(h.tlb.blocks(), 16);
    }

    #[test]
    #[should_panic(expected = "ways must divide blocks")]
    fn bad_ways_panics() {
        CacheConfig::new("x", 1024, 128, Assoc::Ways(3));
    }

    #[test]
    fn try_new_reports_each_violation() {
        assert!(matches!(
            CacheConfig::try_new("x", 1024, 48, Assoc::Full),
            Err(ConfigError::LineSizeNotPowerOfTwo { line_size: 48 })
        ));
        assert!(matches!(
            CacheConfig::try_new("x", 0, 64, Assoc::Full),
            Err(ConfigError::CapacityNotMultiple { capacity: 0, .. })
        ));
        assert!(matches!(
            CacheConfig::try_new("x", 100, 64, Assoc::Full),
            Err(ConfigError::CapacityNotMultiple { capacity: 100, .. })
        ));
        assert!(matches!(
            CacheConfig::try_new("x", 1024, 128, Assoc::Ways(0)),
            Err(ConfigError::WaysDontDivideBlocks { ways: 0, .. })
        ));
        assert!(matches!(
            CacheConfig::try_tlb("t", u64::MAX, 16 * 1024, Assoc::Full),
            Err(ConfigError::TlbOverflow { .. })
        ));
        assert!(CacheConfig::try_tlb("t", 128, 16 * 1024, Assoc::Full).is_ok());
    }

    #[test]
    fn hierarchy_validate_catches_structural_problems() {
        assert!(MemoryHierarchy::itanium2().validate().is_ok());

        let mut h = MemoryHierarchy::itanium2();
        h.levels.clear();
        assert!(matches!(h.validate(), Err(ConfigError::NoLevels { .. })));

        let mut h = MemoryHierarchy::itanium2();
        h.levels[1].name = "L2".to_string();
        assert!(matches!(
            h.validate(),
            Err(ConfigError::DuplicateLevel { ref name, .. }) if name == "L2"
        ));

        let mut h = MemoryHierarchy::itanium2();
        h.tlb.name = "L3".to_string();
        assert!(matches!(h.validate(), Err(ConfigError::DuplicateLevel { .. })));

        let mut h = MemoryHierarchy::itanium2();
        h.miss_penalty.pop();
        assert!(matches!(
            h.validate(),
            Err(ConfigError::PenaltyMismatch { levels: 2, penalties: 1, .. })
        ));

        // A level mutated into invalidity after construction is caught too.
        let mut h = MemoryHierarchy::itanium2();
        h.levels[0].capacity = 100;
        assert!(matches!(
            h.validate(),
            Err(ConfigError::CapacityNotMultiple { .. })
        ));
    }

    #[test]
    fn display_is_informative() {
        let h = MemoryHierarchy::itanium2();
        let s = h.to_string();
        assert!(s.contains("Itanium2"));
        assert!(s.contains("L2: 256 KB"));
        assert!(s.contains("fully-assoc"));
    }
}
