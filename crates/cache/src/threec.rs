//! Three-C miss classification: cold / capacity / conflict.
//!
//! The reuse-distance methodology reasons about *fully associative*
//! behaviour (cold + capacity); what is left when a real set-associative
//! cache misses more is *conflict*. This module measures all three in one
//! pass by running the set-associative simulator next to a fully
//! associative twin of the same capacity — the standard Hill & Smith
//! decomposition, and a useful cross-check on the probabilistic model.

use crate::config::{Assoc, CacheConfig};
use crate::simulator::CacheSim;
use reuselens_ir::{AccessKind, RefId, ScopeId};
use reuselens_trace::TraceSink;
use std::collections::HashSet;

/// The cold / capacity / conflict decomposition of a cache's misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissBreakdown {
    /// First-touch misses (would miss in an infinite cache).
    pub cold: u64,
    /// Extra misses of a fully associative LRU cache of the same capacity.
    pub capacity: u64,
    /// Extra misses of the real set-associative cache beyond the fully
    /// associative one. (True LRU anomalies can make this negative; it is
    /// clamped at zero and the raw difference is preserved in
    /// [`MissBreakdown::raw_conflict`].)
    pub conflict: u64,
    /// Signed set-associative minus fully-associative miss difference.
    pub raw_conflict: i64,
}

impl MissBreakdown {
    /// Total misses of the set-associative cache.
    pub fn total(&self) -> u64 {
        (self.cold + self.capacity) + self.conflict
    }
}

/// A sink that simulates a cache and classifies every miss.
///
/// # Examples
///
/// ```
/// use reuselens_cache::{Assoc, CacheConfig, ThreeCSim};
/// use reuselens_ir::{AccessKind, RefId};
/// use reuselens_trace::TraceSink;
///
/// // Direct-mapped, 2 lines: blocks 0 and 2 conflict.
/// let cfg = CacheConfig::new("dm", 2 * 64, 64, Assoc::Ways(1));
/// let mut sim = ThreeCSim::new(&cfg, 1);
/// for addr in [0u64, 128, 0, 128] {
///     sim.access(RefId(0), addr, 8, AccessKind::Load);
/// }
/// let b = sim.finish();
/// assert_eq!(b.cold, 2);
/// assert_eq!(b.capacity, 0);  // both fit a fully associative cache
/// assert_eq!(b.conflict, 2);  // but evict each other in one set
/// ```
#[derive(Debug, Clone)]
pub struct ThreeCSim {
    sa: CacheSim,
    fa: CacheSim,
    seen: HashSet<u64>,
    line_shift: u32,
    cold: u64,
}

impl ThreeCSim {
    /// Creates the classifying simulator for a configuration.
    pub fn new(config: &CacheConfig, nrefs: usize) -> ThreeCSim {
        let fa_cfg = CacheConfig::new(
            &format!("{}-fa", config.name),
            config.capacity,
            config.line_size,
            Assoc::Full,
        );
        ThreeCSim {
            sa: CacheSim::new(config, nrefs),
            fa: CacheSim::new(&fa_cfg, nrefs),
            seen: HashSet::new(),
            line_shift: config.line_size.trailing_zeros(),
            cold: 0,
        }
    }

    /// Finishes the run and returns the decomposition.
    pub fn finish(self) -> MissBreakdown {
        let fa_misses = self.fa.misses();
        let sa_misses = self.sa.misses();
        let raw = sa_misses as i64 - fa_misses as i64;
        MissBreakdown {
            cold: self.cold,
            capacity: fa_misses - self.cold,
            conflict: raw.max(0) as u64,
            raw_conflict: raw,
        }
    }

    /// The underlying set-associative simulator (for per-ref counts).
    pub fn set_associative(&self) -> &CacheSim {
        &self.sa
    }
}

impl TraceSink for ThreeCSim {
    fn access(&mut self, r: RefId, addr: u64, size: u32, kind: AccessKind) {
        if self.seen.insert(addr >> self.line_shift) {
            self.cold += 1;
        }
        self.sa.access(r, addr, size, kind);
        self.fa.access(r, addr, size, kind);
    }
    fn enter(&mut self, _scope: ScopeId) {}
    fn exit(&mut self, _scope: ScopeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sim: &mut ThreeCSim, addrs: &[u64]) {
        for &a in addrs {
            sim.access(RefId(0), a, 8, AccessKind::Load);
        }
    }

    #[test]
    fn pure_cold_misses() {
        let cfg = CacheConfig::new("c", 8 * 64, 64, Assoc::Ways(2));
        let mut sim = ThreeCSim::new(&cfg, 1);
        feed(&mut sim, &[0, 64, 128, 192]);
        let b = sim.finish();
        assert_eq!((b.cold, b.capacity, b.conflict), (4, 0, 0));
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn capacity_misses_without_conflicts() {
        // Fully associative config: conflicts are impossible.
        let cfg = CacheConfig::new("c", 2 * 64, 64, Assoc::Full);
        let mut sim = ThreeCSim::new(&cfg, 1);
        // 3 blocks cycled twice through a 2-block cache.
        feed(&mut sim, &[0, 64, 128, 0, 64, 128]);
        let b = sim.finish();
        assert_eq!(b.cold, 3);
        assert_eq!(b.capacity, 3);
        assert_eq!(b.conflict, 0);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        // 4 lines direct-mapped; blocks 0 and 4 share set 0.
        let cfg = CacheConfig::new("c", 4 * 64, 64, Assoc::Ways(1));
        let mut sim = ThreeCSim::new(&cfg, 1);
        feed(&mut sim, &[0, 256, 0, 256, 0, 256]);
        let b = sim.finish();
        assert_eq!(b.cold, 2);
        assert_eq!(b.capacity, 0); // both fit in a 4-line FA cache
        assert_eq!(b.conflict, 4);
        assert_eq!(b.raw_conflict, 4);
    }

    #[test]
    fn gtc_smooth_conflicts_are_classified() {
        // The power-of-two-stride pathology from the GTC smooth nest: at
        // this scale the simulator attributes it to conflicts, which is
        // exactly the component the reuse-distance model cannot see.
        use reuselens_trace::Executor;
        let mut p = reuselens_ir::ProgramBuilder::new("strided");
        // Columns are 256*8 = 2048 B = 16 lines apart: with 16 sets every
        // column's head lands in the same set.
        let a = p.array("a", 8, &[256, 16]);
        p.routine("main", |r| {
            r.for_("t", 0, 4, |r, _| {
                r.for_("k", 0, 15, |r, k| {
                    r.load(a, vec![reuselens_ir::Expr::c(0), k.into()]);
                });
            });
        });
        let prog = p.finish();
        // 32 lines, 2-way => 16 sets. The 16-line walk fits the cache
        // (no capacity misses) but thrashes one 2-way set.
        let cfg = CacheConfig::new("c", 32 * 128, 128, Assoc::Ways(2));
        let mut sim = ThreeCSim::new(&cfg, prog.references().len());
        Executor::new(&prog).run(&mut sim).unwrap();
        let b = sim.finish();
        assert_eq!(b.cold, 16);
        assert_eq!(b.capacity, 0, "footprint fits the FA twin: {b:?}");
        assert!(b.conflict >= 48, "expected heavy conflicts, got {b:?}");
    }
}
