//! One-call evaluation: run a program, predict misses at every hierarchy
//! level, and model run time.
//!
//! Because predictions are pure functions of immutable reuse profiles, a
//! whole design-space sweep ([`evaluate_sweep`]) can score every candidate
//! hierarchy concurrently from one measured analysis — the payoff of the
//! capture-once / replay-many pipeline.

use crate::config::MemoryHierarchy;
use crate::error::ReuseLensError;
use crate::model::{predict_level, LevelPrediction};
use crate::timing::{predict_cycles, TimingBreakdown};
use reuselens_core::{analyze_program, analyze_program_parallel, AnalysisResult};
use reuselens_ir::{ArrayId, Program};
use reuselens_obs as obs;
use reuselens_trace::ExecError;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Predicted behaviour of one program run on one memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyReport {
    /// Hierarchy name the report was computed for.
    pub hierarchy: String,
    /// Per-cache-level predictions, nearest level first.
    pub levels: Vec<LevelPrediction>,
    /// TLB prediction.
    pub tlb: LevelPrediction,
    /// Modeled cycles.
    pub timing: TimingBreakdown,
    /// Total memory accesses executed.
    pub accesses: u64,
}

impl HierarchyReport {
    /// Predicted total misses at a named level (`"L2"`, `"TLB"`, ...).
    pub fn misses_at(&self, name: &str) -> Option<f64> {
        if self.tlb.level == name {
            return Some(self.tlb.total);
        }
        self.levels
            .iter()
            .find(|l| l.level == name)
            .map(|l| l.total)
    }
}

/// Runs `program` once, measures reuse at every granularity the hierarchy
/// needs, and returns per-level predictions plus the underlying analysis
/// (for deeper attribution).
///
/// # Errors
///
/// Propagates executor errors (out-of-bounds access, missing index-array
/// contents).
///
/// # Examples
///
/// ```
/// use reuselens_cache::{evaluate_program, MemoryHierarchy};
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[1 << 16]); // 512 KB > L2
/// p.routine("main", |r| {
///     r.for_("t", 0, 1, |r, _| {
///         r.for_("i", 0, (1 << 16) - 1, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let (report, _) = evaluate_program(&prog, &MemoryHierarchy::itanium2(), vec![])?;
/// // The second sweep misses L2 (footprint 2x capacity) but fits in L3.
/// assert!(report.misses_at("L2").unwrap() > report.misses_at("L3").unwrap());
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn evaluate_program(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(HierarchyReport, AnalysisResult), ExecError> {
    let granularities = hierarchy.required_granularities();
    let analysis = analyze_program(program, &granularities, index_arrays)?;
    Ok((report_from_analysis(&analysis, hierarchy), analysis))
}

/// Builds a [`HierarchyReport`] from an existing analysis, first checking
/// that the hierarchy description is valid
/// ([`MemoryHierarchy::validate`]) and that a profile was measured at
/// every granularity it requires.
///
/// # Errors
///
/// Returns [`ReuseLensError::Config`] for an invalid hierarchy and
/// [`ReuseLensError::MissingProfile`] for an unmeasured granularity.
pub fn try_report_from_analysis(
    analysis: &AnalysisResult,
    hierarchy: &MemoryHierarchy,
) -> Result<HierarchyReport, ReuseLensError> {
    let _span = obs::span_with(obs::Stage::Sweep, || obs::TimelineArgs {
        hierarchy: Some(hierarchy.name.clone()),
        ..obs::TimelineArgs::default()
    });
    let result = build_report(analysis, hierarchy);
    match &result {
        Ok(_) => obs::add(obs::Counter::SweepConfigsScored, 1),
        Err(_) => obs::add(obs::Counter::SweepConfigsFailed, 1),
    }
    result
}

/// The uninstrumented body of [`try_report_from_analysis`].
fn build_report(
    analysis: &AnalysisResult,
    hierarchy: &MemoryHierarchy,
) -> Result<HierarchyReport, ReuseLensError> {
    hierarchy.validate()?;
    let profile_at = |granularity: u64| {
        analysis
            .profile_at(granularity)
            .ok_or_else(|| ReuseLensError::MissingProfile {
                hierarchy: hierarchy.name.clone(),
                granularity,
            })
    };
    let levels: Vec<LevelPrediction> = hierarchy
        .levels
        .iter()
        .map(|cfg| Ok(predict_level(profile_at(cfg.line_size)?, cfg)))
        .collect::<Result<_, ReuseLensError>>()?;
    let tlb = predict_level(profile_at(hierarchy.tlb.line_size)?, &hierarchy.tlb);
    let accesses = analysis.exec.accesses;
    let level_misses: Vec<f64> = levels.iter().map(|l| l.total).collect();
    let timing = predict_cycles(hierarchy, accesses, &level_misses, tlb.total);
    Ok(HierarchyReport {
        hierarchy: hierarchy.name.clone(),
        levels,
        tlb,
        timing,
        accesses,
    })
}

/// Builds a [`HierarchyReport`] from an existing analysis (must contain
/// profiles at every granularity the hierarchy requires).
///
/// # Panics
///
/// Panics where [`try_report_from_analysis`] would return an error.
pub fn report_from_analysis(
    analysis: &AnalysisResult,
    hierarchy: &MemoryHierarchy,
) -> HierarchyReport {
    try_report_from_analysis(analysis, hierarchy).unwrap_or_else(|e| panic!("{e}"))
}

/// Wall time one hierarchy's prediction thread took in a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepTiming {
    /// Name of the hierarchy this thread scored.
    pub hierarchy: String,
    /// Time spent computing its per-level predictions.
    pub wall: Duration,
}

/// One hierarchy's failure inside a degraded sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Name of the hierarchy that could not be scored.
    pub hierarchy: String,
    /// Why scoring it failed.
    pub error: ReuseLensError,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.hierarchy, self.error)
    }
}

/// The degraded result of [`evaluate_sweep_degraded`]: reports for every
/// hierarchy that scored cleanly, and a [`SweepFailure`] for every one
/// that did not. Each requested hierarchy appears exactly once, in either
/// `reports` or `failures`, keeping request order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Reports of the hierarchies that scored, in request order.
    pub reports: Vec<HierarchyReport>,
    /// Per-thread timings, index-aligned with `reports`.
    pub timings: Vec<SweepTiming>,
    /// One entry per failed hierarchy, in request order.
    pub failures: Vec<SweepFailure>,
}

impl SweepOutcome {
    /// True when every requested hierarchy was scored.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// One hierarchy's scoring, panic-isolated and validated.
fn score_hierarchy(
    analysis: &AnalysisResult,
    h: &MemoryHierarchy,
) -> Result<(HierarchyReport, SweepTiming), SweepFailure> {
    let start = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| try_report_from_analysis(analysis, h)));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(error)) => {
            return Err(SweepFailure {
                hierarchy: h.name.clone(),
                error,
            })
        }
        Err(payload) => {
            // A panic unwound past the instrumented scoring path, so the
            // per-config failure counter never ticked; count it here.
            obs::add(obs::Counter::SweepConfigsFailed, 1);
            return Err(SweepFailure {
                hierarchy: h.name.clone(),
                error: ReuseLensError::SweepPanicked {
                    hierarchy: h.name.clone(),
                    message: panic_message(payload.as_ref()),
                },
            })
        }
    };
    Ok((
        report,
        SweepTiming {
            hierarchy: h.name.clone(),
            wall: start.elapsed(),
        },
    ))
}

/// Fans one analysis out over candidate hierarchies, one scoring thread
/// per candidate, under panic isolation. Returns each candidate's outcome
/// in request order.
fn sweep_outcomes(
    analysis: &AnalysisResult,
    hierarchies: &[MemoryHierarchy],
) -> Vec<Result<(HierarchyReport, SweepTiming), SweepFailure>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = hierarchies
            .iter()
            .map(|h| s.spawn(move || score_hierarchy(analysis, h)))
            .collect();
        handles
            .into_iter()
            .zip(hierarchies)
            .map(|(handle, h)| match handle.join() {
                Ok(outcome) => outcome,
                // `score_hierarchy` catches panics itself; backstop only.
                Err(payload) => Err(SweepFailure {
                    hierarchy: h.name.clone(),
                    error: ReuseLensError::SweepPanicked {
                        hierarchy: h.name.clone(),
                        message: panic_message(payload.as_ref()),
                    },
                }),
            })
            .collect()
    })
}

/// Scores one measured analysis against many candidate hierarchies, one
/// thread per hierarchy. The profiles are shared immutably, so the
/// predictions are independent and the reports come back in request order
/// together with per-thread timings.
///
/// Every candidate is validated ([`MemoryHierarchy::validate`]) and every
/// scoring thread runs under panic isolation, so an invalid or
/// pathological candidate surfaces as an error rather than aborting the
/// sweep. Use [`evaluate_sweep_degraded`] to keep the healthy candidates'
/// reports when some fail.
///
/// # Errors
///
/// Returns the first failure — an invalid hierarchy description, a
/// missing granularity (measure the union of
/// [`required_granularities`](MemoryHierarchy::required_granularities)
/// up front), or an isolated scoring panic — as a [`ReuseLensError`].
pub fn evaluate_sweep(
    analysis: &AnalysisResult,
    hierarchies: &[MemoryHierarchy],
) -> Result<(Vec<HierarchyReport>, Vec<SweepTiming>), ReuseLensError> {
    let mut reports = Vec::with_capacity(hierarchies.len());
    let mut timings = Vec::with_capacity(hierarchies.len());
    for outcome in sweep_outcomes(analysis, hierarchies) {
        let (report, timing) = outcome.map_err(|f| f.error)?;
        reports.push(report);
        timings.push(timing);
    }
    Ok((reports, timings))
}

/// The degrading form of [`evaluate_sweep`]: scores every candidate under
/// panic isolation and reports per-candidate failures in the returned
/// [`SweepOutcome`] instead of failing the whole sweep. A design-space
/// search over hundreds of generated candidates keeps every healthy data
/// point even when a few candidates are malformed.
pub fn evaluate_sweep_degraded(
    analysis: &AnalysisResult,
    hierarchies: &[MemoryHierarchy],
) -> SweepOutcome {
    let mut out = SweepOutcome {
        reports: Vec::new(),
        timings: Vec::new(),
        failures: Vec::new(),
    };
    for outcome in sweep_outcomes(analysis, hierarchies) {
        match outcome {
            Ok((report, timing)) => {
                out.reports.push(report);
                out.timings.push(timing);
            }
            Err(failure) => out.failures.push(failure),
        }
    }
    out
}

/// The full capture-once pipeline: interprets `program` a single time,
/// replays the captured trace concurrently at the union of granularities
/// the candidate hierarchies need, then scores every hierarchy on its own
/// thread. Reports come back in hierarchy order.
///
/// # Errors
///
/// Returns any failure along the pipeline — capture, replay, or sweep —
/// as a [`ReuseLensError`].
pub fn evaluate_program_sweep(
    program: &Program,
    hierarchies: &[MemoryHierarchy],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(Vec<HierarchyReport>, AnalysisResult), ReuseLensError> {
    let mut grains: Vec<u64> = hierarchies
        .iter()
        .flat_map(MemoryHierarchy::required_granularities)
        .collect();
    grains.sort_unstable();
    grains.dedup();
    let (analysis, _stats) = analyze_program_parallel(program, &grains, index_arrays)?;
    let (reports, _timings) = evaluate_sweep(&analysis, hierarchies)?;
    Ok((reports, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::ProgramBuilder;

    fn streaming_program(elems: u64, sweeps: i64) -> reuselens_ir::Program {
        let mut p = ProgramBuilder::new("stream");
        let a = p.array("a", 8, &[elems]);
        p.routine("main", |r| {
            r.for_("t", 0, sweeps - 1, |r, _| {
                r.for_("i", 0, (elems - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        p.finish()
    }

    #[test]
    fn small_footprint_only_misses_cold() {
        // 8 KB fits everywhere.
        let prog = streaming_program(1024, 3);
        let h = MemoryHierarchy::itanium2();
        let (report, _) = evaluate_program(&prog, &h, vec![]).unwrap();
        let lines = 1024 * 8 / 128;
        assert!((report.misses_at("L2").unwrap() - lines as f64).abs() < 1.0);
        assert!((report.misses_at("L3").unwrap() - lines as f64).abs() < 1.0);
        assert_eq!(report.accesses, 3 * 1024);
    }

    #[test]
    fn footprint_between_l2_and_l3_splits_levels() {
        // 512 KB: misses L2 on every resweep, fits L3.
        let prog = streaming_program(1 << 16, 3);
        let h = MemoryHierarchy::itanium2();
        let (report, analysis) = evaluate_program(&prog, &h, vec![]).unwrap();
        let lines = (1u64 << 16) * 8 / 128;
        let l2 = report.misses_at("L2").unwrap();
        let l3 = report.misses_at("L3").unwrap();
        // L2: cold + ~2 resweeps of all lines; L3: cold only.
        assert!(l2 > 2.5 * lines as f64, "l2={l2}");
        assert!(l3 < 1.2 * lines as f64, "l3={l3}");
        // Timing reflects the stalls.
        assert!(report.timing.total() > report.timing.non_stall);
        assert!(analysis.profile_at(128).is_some());
    }

    /// A parallel sweep over scaled hierarchies matches evaluating each
    /// hierarchy sequentially, report for report.
    #[test]
    fn sweep_matches_sequential_evaluation() {
        let prog = streaming_program(1 << 14, 3);
        let hierarchies: Vec<MemoryHierarchy> =
            [1u64, 2, 4, 8].map(MemoryHierarchy::itanium2_scaled).into();
        let (reports, analysis) =
            evaluate_program_sweep(&prog, &hierarchies, vec![]).unwrap();
        assert_eq!(reports.len(), hierarchies.len());
        for (got, h) in reports.iter().zip(&hierarchies) {
            let want = report_from_analysis(&analysis, h);
            assert_eq!(got, &want);
        }
        // Timings are observable and labeled in request order.
        let (again, timings) = evaluate_sweep(&analysis, &hierarchies).unwrap();
        assert_eq!(again, reports);
        let names: Vec<&str> = timings.iter().map(|t| t.hierarchy.as_str()).collect();
        let want_names: Vec<&str> =
            hierarchies.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, want_names);
    }
}
