//! One-call evaluation: run a program, predict misses at every hierarchy
//! level, and model run time.
//!
//! Because predictions are pure functions of immutable reuse profiles, a
//! whole design-space sweep ([`evaluate_sweep`]) can score every candidate
//! hierarchy concurrently from one measured analysis — the payoff of the
//! capture-once / replay-many pipeline.

use crate::config::MemoryHierarchy;
use crate::model::{predict_level, LevelPrediction};
use crate::timing::{predict_cycles, TimingBreakdown};
use reuselens_core::{analyze_program, analyze_program_parallel, AnalysisResult};
use reuselens_ir::{ArrayId, Program};
use reuselens_trace::ExecError;
use std::time::{Duration, Instant};

/// Predicted behaviour of one program run on one memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyReport {
    /// Hierarchy name the report was computed for.
    pub hierarchy: String,
    /// Per-cache-level predictions, nearest level first.
    pub levels: Vec<LevelPrediction>,
    /// TLB prediction.
    pub tlb: LevelPrediction,
    /// Modeled cycles.
    pub timing: TimingBreakdown,
    /// Total memory accesses executed.
    pub accesses: u64,
}

impl HierarchyReport {
    /// Predicted total misses at a named level (`"L2"`, `"TLB"`, ...).
    pub fn misses_at(&self, name: &str) -> Option<f64> {
        if self.tlb.level == name {
            return Some(self.tlb.total);
        }
        self.levels
            .iter()
            .find(|l| l.level == name)
            .map(|l| l.total)
    }
}

/// Runs `program` once, measures reuse at every granularity the hierarchy
/// needs, and returns per-level predictions plus the underlying analysis
/// (for deeper attribution).
///
/// # Errors
///
/// Propagates executor errors (out-of-bounds access, missing index-array
/// contents).
///
/// # Examples
///
/// ```
/// use reuselens_cache::{evaluate_program, MemoryHierarchy};
/// use reuselens_ir::ProgramBuilder;
///
/// let mut p = ProgramBuilder::new("demo");
/// let a = p.array("a", 8, &[1 << 16]); // 512 KB > L2
/// p.routine("main", |r| {
///     r.for_("t", 0, 1, |r, _| {
///         r.for_("i", 0, (1 << 16) - 1, |r, i| {
///             r.load(a, vec![i.into()]);
///         });
///     });
/// });
/// let prog = p.finish();
/// let (report, _) = evaluate_program(&prog, &MemoryHierarchy::itanium2(), vec![])?;
/// // The second sweep misses L2 (footprint 2x capacity) but fits in L3.
/// assert!(report.misses_at("L2").unwrap() > report.misses_at("L3").unwrap());
/// # Ok::<(), reuselens_trace::ExecError>(())
/// ```
pub fn evaluate_program(
    program: &Program,
    hierarchy: &MemoryHierarchy,
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(HierarchyReport, AnalysisResult), ExecError> {
    let granularities = hierarchy.required_granularities();
    let analysis = analyze_program(program, &granularities, index_arrays)?;
    Ok((report_from_analysis(&analysis, hierarchy), analysis))
}

/// Builds a [`HierarchyReport`] from an existing analysis (must contain
/// profiles at every granularity the hierarchy requires).
///
/// # Panics
///
/// Panics if a required granularity was not measured.
pub fn report_from_analysis(
    analysis: &AnalysisResult,
    hierarchy: &MemoryHierarchy,
) -> HierarchyReport {
    let levels: Vec<LevelPrediction> = hierarchy
        .levels
        .iter()
        .map(|cfg| {
            let profile = analysis
                .profile_at(cfg.line_size)
                .unwrap_or_else(|| panic!("no profile at granularity {}", cfg.line_size));
            predict_level(profile, cfg)
        })
        .collect();
    let tlb_profile = analysis
        .profile_at(hierarchy.tlb.line_size)
        .expect("no profile at page granularity");
    let tlb = predict_level(tlb_profile, &hierarchy.tlb);
    let accesses = analysis.exec.accesses;
    let level_misses: Vec<f64> = levels.iter().map(|l| l.total).collect();
    let timing = predict_cycles(hierarchy, accesses, &level_misses, tlb.total);
    HierarchyReport {
        hierarchy: hierarchy.name.clone(),
        levels,
        tlb,
        timing,
        accesses,
    }
}

/// Wall time one hierarchy's prediction thread took in a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepTiming {
    /// Name of the hierarchy this thread scored.
    pub hierarchy: String,
    /// Time spent computing its per-level predictions.
    pub wall: Duration,
}

/// Scores one measured analysis against many candidate hierarchies, one
/// thread per hierarchy. The profiles are shared immutably, so the
/// predictions are independent and the reports come back in request order
/// together with per-thread timings.
///
/// # Panics
///
/// Panics if the analysis lacks a profile at a granularity some hierarchy
/// requires (measure the union of
/// [`required_granularities`](MemoryHierarchy::required_granularities)
/// up front).
pub fn evaluate_sweep(
    analysis: &AnalysisResult,
    hierarchies: &[MemoryHierarchy],
) -> (Vec<HierarchyReport>, Vec<SweepTiming>) {
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = hierarchies
            .iter()
            .map(|h| {
                s.spawn(move || {
                    let start = Instant::now();
                    let report = report_from_analysis(analysis, h);
                    let timing = SweepTiming {
                        hierarchy: h.name.clone(),
                        wall: start.elapsed(),
                    };
                    (report, timing)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect::<Vec<_>>()
    });
    outcomes.into_iter().unzip()
}

/// The full capture-once pipeline: interprets `program` a single time,
/// replays the captured trace concurrently at the union of granularities
/// the candidate hierarchies need, then scores every hierarchy on its own
/// thread. Reports come back in hierarchy order.
///
/// # Errors
///
/// Propagates executor errors from the capture run.
pub fn evaluate_program_sweep(
    program: &Program,
    hierarchies: &[MemoryHierarchy],
    index_arrays: Vec<(ArrayId, Vec<i64>)>,
) -> Result<(Vec<HierarchyReport>, AnalysisResult), ExecError> {
    let mut grains: Vec<u64> = hierarchies
        .iter()
        .flat_map(MemoryHierarchy::required_granularities)
        .collect();
    grains.sort_unstable();
    grains.dedup();
    let (analysis, _stats) = analyze_program_parallel(program, &grains, index_arrays)?;
    let (reports, _timings) = evaluate_sweep(&analysis, hierarchies);
    Ok((reports, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuselens_ir::ProgramBuilder;

    fn streaming_program(elems: u64, sweeps: i64) -> reuselens_ir::Program {
        let mut p = ProgramBuilder::new("stream");
        let a = p.array("a", 8, &[elems]);
        p.routine("main", |r| {
            r.for_("t", 0, sweeps - 1, |r, _| {
                r.for_("i", 0, (elems - 1) as i64, |r, i| {
                    r.load(a, vec![i.into()]);
                });
            });
        });
        p.finish()
    }

    #[test]
    fn small_footprint_only_misses_cold() {
        // 8 KB fits everywhere.
        let prog = streaming_program(1024, 3);
        let h = MemoryHierarchy::itanium2();
        let (report, _) = evaluate_program(&prog, &h, vec![]).unwrap();
        let lines = 1024 * 8 / 128;
        assert!((report.misses_at("L2").unwrap() - lines as f64).abs() < 1.0);
        assert!((report.misses_at("L3").unwrap() - lines as f64).abs() < 1.0);
        assert_eq!(report.accesses, 3 * 1024);
    }

    #[test]
    fn footprint_between_l2_and_l3_splits_levels() {
        // 512 KB: misses L2 on every resweep, fits L3.
        let prog = streaming_program(1 << 16, 3);
        let h = MemoryHierarchy::itanium2();
        let (report, analysis) = evaluate_program(&prog, &h, vec![]).unwrap();
        let lines = (1u64 << 16) * 8 / 128;
        let l2 = report.misses_at("L2").unwrap();
        let l3 = report.misses_at("L3").unwrap();
        // L2: cold + ~2 resweeps of all lines; L3: cold only.
        assert!(l2 > 2.5 * lines as f64, "l2={l2}");
        assert!(l3 < 1.2 * lines as f64, "l3={l3}");
        // Timing reflects the stalls.
        assert!(report.timing.total() > report.timing.non_stall);
        assert!(analysis.profile_at(128).is_some());
    }

    /// A parallel sweep over scaled hierarchies matches evaluating each
    /// hierarchy sequentially, report for report.
    #[test]
    fn sweep_matches_sequential_evaluation() {
        let prog = streaming_program(1 << 14, 3);
        let hierarchies: Vec<MemoryHierarchy> =
            [1u64, 2, 4, 8].map(MemoryHierarchy::itanium2_scaled).into();
        let (reports, analysis) =
            evaluate_program_sweep(&prog, &hierarchies, vec![]).unwrap();
        assert_eq!(reports.len(), hierarchies.len());
        for (got, h) in reports.iter().zip(&hierarchies) {
            let want = report_from_analysis(&analysis, h);
            assert_eq!(got, &want);
        }
        // Timings are observable and labeled in request order.
        let (again, timings) = evaluate_sweep(&analysis, &hierarchies);
        assert_eq!(again, reports);
        let names: Vec<&str> = timings.iter().map(|t| t.hierarchy.as_str()).collect();
        let want_names: Vec<&str> =
            hierarchies.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, want_names);
    }
}
